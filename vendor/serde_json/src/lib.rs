//! Offline stand-in for `serde_json`: serializes the vendored
//! [`serde::Content`] tree to canonical JSON and parses JSON back with
//! a small recursive-descent parser. API mirrors the real crate's
//! [`to_string`]/[`from_str`]/[`Error`] so call sites are unchanged.

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

/// JSON error: syntax errors from parsing or shape mismatches from
/// deserialization.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_content(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::UInt(u) => out.push_str(&u.to_string()),
        Content::Int(i) => out.push_str(&i.to_string()),
        Content::Float(f) => {
            if f.is_finite() {
                // Ensure round-trippable floats keep a decimal point.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => escape_into(s, out),
        Content::Seq(xs) => {
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(x, out);
            }
            out.push(']');
        }
        Content::Map(m) => {
            out.push('{');
            for (i, (k, v)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_content(v, out);
            }
            out.push('}');
        }
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(&e) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at this byte.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xc0 == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>().map(Content::Float).map_err(|_| self.err("bad number"))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Content::Int).map_err(|_| self.err("bad number"))
        } else {
            text.parse::<u64>().map(Content::UInt).map_err(|_| self.err("bad number"))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'{') => {
                self.pos += 1;
                let mut map = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    map.push((key, self.value()?));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(map));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut seq = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(seq));
                }
                loop {
                    seq.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(seq));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'"') => self.string().map(Content::Str),
            Some(b't') if self.literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Content::Bool(false)),
            Some(b'n') if self.literal("null") => Ok(Content::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }
}

/// Parses a JSON document into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_content(&v)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v: Vec<(Vec<(u32, u32)>, u32)> = vec![(vec![(1, 2), (3, 4)], 0), (vec![], 7)];
        let s = to_string(&v).unwrap();
        let back: Vec<(Vec<(u32, u32)>, u32)> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn strings_escape() {
        let s = to_string(&"a\"b\\c\nd".to_string()).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, "a\"b\\c\nd");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("not json").is_err());
        assert!(from_str::<u32>("1 trailing").is_err());
    }

    #[test]
    fn negative_and_float() {
        let x: i64 = from_str("-42").unwrap();
        assert_eq!(x, -42);
        let f: f64 = from_str("2.5e1").unwrap();
        assert_eq!(f, 25.0);
    }
}
