//! Offline stand-in for the `rand` crate (0.9 API surface used by this
//! workspace): [`rngs::StdRng`] (xoshiro256++ seeded via splitmix64),
//! the [`Rng`]/[`SeedableRng`] traits with `random_range`/`random_bool`,
//! and [`seq::SliceRandom::shuffle`]. Deterministic for a given seed,
//! which is all the tests and simulators rely on; the exact streams
//! differ from upstream rand.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let b = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types uniformly samplable from a half-open range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample in `[low, high)`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// The successor of `v`, for inclusive-range support (saturating).
    fn successor(v: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift bounds the modulo bias far below test noise.
                let r = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                ((low as i128) + r as i128) as $t
            }
            fn successor(v: Self) -> Self { v.saturating_add(1) }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + (high - low) * unit
    }
    fn successor(v: Self) -> Self {
        v
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_in(rng, low as f64, high as f64) as f32
    }
    fn successor(v: Self) -> Self {
        v
    }
}

/// Range forms accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in(rng, lo, T::successor(hi))
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer or float range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_in(self, 0.0, 1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ with
    /// splitmix64 seed expansion.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{RngCore, SampleUniform};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Uniformly permutes the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = <usize as SampleUniform>::sample_in(rng, 0, i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}
