//! Derive macros for the vendored `serde` stand-in.
//!
//! Supports the one shape this workspace serializes: non-generic
//! structs with named fields. The macro hand-parses the token stream
//! (no `syn`/`quote` available offline) and emits `Serialize`/
//! `Deserialize` impls over `serde::Content`.

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

/// Extracts `(struct_name, field_names)` from a struct definition, or
/// panics with a readable message for unsupported shapes.
fn parse_struct(input: TokenStream) -> (String, Vec<String>) {
    let mut iter = input.into_iter().peekable();
    let mut name = None;
    while let Some(tt) = iter.next() {
        match tt {
            // Skip outer attributes `#[...]`.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("expected struct name, found {other:?}"),
                }
                break;
            }
            // Skip visibility and anything else before `struct`.
            _ => {}
        }
    }
    let name = name.expect("derive target must be a struct");
    // Find the brace-delimited field body (skipping generics would go
    // here; generic structs are unsupported and fail loudly below).
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("derive(Serialize/Deserialize) stub does not support generic structs")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("derive(Serialize/Deserialize) stub does not support tuple/unit structs")
            }
            Some(_) => {}
            None => panic!("struct body not found"),
        }
    };

    // Field names: an ident at angle-depth 0 immediately followed by a
    // lone `:` (a path separator `::` has Joint spacing), not preceded
    // by `:` (which would make it a path segment).
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut prev_was_colon = false;
    let mut toks = body.into_iter().peekable();
    while let Some(tt) = toks.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Ident(id) if angle_depth == 0 && !prev_was_colon => {
                if let Some(TokenTree::Punct(p)) = toks.peek() {
                    if p.as_char() == ':' && p.spacing() == Spacing::Alone {
                        fields.push(id.to_string());
                    }
                }
            }
            _ => {}
        }
        prev_was_colon = matches!(&tt, TokenTree::Punct(p) if p.as_char() == ':');
    }
    (name, fields)
}

/// Derives `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_struct(input);
    let pushes: String = fields
        .iter()
        .map(|f| format!("map.push(({f:?}.to_string(), serde::Serialize::to_content(&self.{f})));"))
        .collect();
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_content(&self) -> serde::Content {{\n\
                 let mut map = Vec::new();\n\
                 {pushes}\n\
                 serde::Content::Map(map)\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` for a named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_struct(input);
    let inits: String = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: match map.iter().find(|(k, _)| k == {f:?}) {{\n\
                     Some((_, v)) => serde::Deserialize::from_content(v)?,\n\
                     None => return Err(serde::DeError(format!(\"missing field `{{}}`\", {f:?}))),\n\
                 }},"
            )
        })
        .collect();
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_content(c: &serde::Content) -> Result<Self, serde::DeError> {{\n\
                 let map = match c {{\n\
                     serde::Content::Map(m) => m,\n\
                     other => return Err(serde::DeError(format!(\"expected map, found {{other:?}}\"))),\n\
                 }};\n\
                 Ok({name} {{ {inits} }})\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
