//! Offline stand-in for the `criterion` crate: same macro/builder API
//! (`criterion_group!`, `criterion_main!`, `Criterion`, groups,
//! `BenchmarkId`, `Throughput`), backed by a simple wall-clock
//! median-of-samples harness that prints one line per benchmark. No
//! statistics engine, plots, or CLI — just honest timings, so
//! `cargo bench` runs offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark throughput annotation; reported as elements or bytes
/// per second next to the timing.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Parameter-only form (the group name supplies the prefix).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples after warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut iters_done = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            iters_done += 1;
        }
        let per_iter = warm_start.elapsed().checked_div(iters_done as u32).unwrap_or_default();
        // Choose iterations per sample so all samples fit the
        // measurement budget.
        let budget = self.measurement_time.as_nanos().max(1) / self.sample_size.max(1) as u128;
        let iters_per_sample = (budget / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed().checked_div(iters_per_sample as u32).unwrap_or_default());
        }
    }
}

/// Top-level benchmark harness configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_one(
    cfg: &Criterion,
    name: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size: cfg.sample_size,
        measurement_time: cfg.measurement_time,
        warm_up_time: cfg.warm_up_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 / median.as_secs_f64())
        }
        None => String::new(),
    };
    println!("{name:<50} time: {:>12}{rate}", fmt_duration(median));
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(self, &id.to_string(), None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            cfg: self.clone(),
            name: name.into(),
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Prints the trailing summary (no-op in the stand-in).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix, throughput,
/// and config overrides. Overrides are group-local (a copy of the
/// parent config), matching real criterion: they end at `finish()`.
pub struct BenchmarkGroup<'a> {
    cfg: Criterion,
    name: String,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&self.cfg, &name, self.throughput, &mut f);
        self
    }

    /// Runs a benchmark with an explicit input reference.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&self.cfg, &name, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Finishes the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
