//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the minimal subset of serde's API it actually
//! uses: the [`Serialize`]/[`Deserialize`] traits, derive macros for
//! structs with named fields, and a self-describing [`Content`] tree
//! that `serde_json` serializes. The trait signatures are simplified
//! (no generic `Serializer`/`Deserializer`), but call sites —
//! `#[derive(Serialize, Deserialize)]`, `serde_json::to_string`,
//! `serde_json::from_str` — match the real crate, so swapping the real
//! serde back in requires no source changes outside `vendor/`.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree, the intermediate form between typed
/// Rust data and a concrete format such as JSON.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered map with string keys (struct fields / JSON objects).
    Map(Vec<(String, Content)>),
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error from any displayable message.
    pub fn msg(m: impl fmt::Display) -> Self {
        DeError(m.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into the self-describing form.
    fn to_content(&self) -> Content;
}

/// Types that can be reconstructed from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value, reporting shape/type mismatches as [`DeError`].
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

fn uint_from(c: &Content, what: &str) -> Result<u64, DeError> {
    match *c {
        Content::UInt(u) => Ok(u),
        Content::Int(i) if i >= 0 => Ok(i as u64),
        Content::Float(f) if f >= 0.0 && f.fract() == 0.0 => Ok(f as u64),
        ref other => Err(DeError(format!("expected {what}, found {other:?}"))),
    }
}

fn int_from(c: &Content, what: &str) -> Result<i64, DeError> {
    match *c {
        Content::Int(i) => Ok(i),
        Content::UInt(u) if u <= i64::MAX as u64 => Ok(u as i64),
        Content::Float(f) if f.fract() == 0.0 => Ok(f as i64),
        ref other => Err(DeError(format!("expected {what}, found {other:?}"))),
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let u = uint_from(c, stringify!($t))?;
                <$t>::try_from(u).map_err(|_| DeError(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::UInt(v as u64) } else { Content::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let i = int_from(c, stringify!($t))?;
                <$t>::try_from(i).map_err(|_| DeError(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match *c {
            Content::Float(f) => Ok(f),
            Content::UInt(u) => Ok(u as f64),
            Content::Int(i) => Ok(i as f64),
            ref other => Err(DeError(format!("expected f64, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(xs) => xs.iter().map(T::from_content).collect(),
            other => Err(DeError(format!("expected sequence, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($len:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Seq(xs) if xs.len() == $len => {
                        Ok(($($t::from_content(&xs[$idx])?,)+))
                    }
                    other => Err(DeError(format!(
                        "expected {}-tuple, found {other:?}", $len
                    ))),
                }
            }
        }
    };
}

impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);
