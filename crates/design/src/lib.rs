//! # pdl-design
//!
//! Balanced incomplete block designs for parity declustering, implementing
//! Section 2 of Schwabe & Sutherland: ring-based block designs (Theorem 1),
//! the exact existence characterization `k ≤ M(v)` (Theorem 2), redundancy
//! reduction (Section 2.2), the symmetric-generator constructions
//! (Theorems 4 & 5), the optimally small subfield-generator designs
//! (Theorem 6), and the universal size lower bound (Theorem 7).
//!
//! ```
//! use pdl_design::{RingDesign, theorem6_design, bibd_min_blocks};
//!
//! // Full ring design on GF(9) with k = 3: b = v(v-1) = 72 blocks.
//! let d = RingDesign::for_v_k(9, 3);
//! assert_eq!(d.b(), 72);
//!
//! // Theorem 6 collapses it to the optimally small λ=1 design: b = 12.
//! let c = theorem6_design(9, 3);
//! assert_eq!(c.params.b as u64, bibd_min_blocks(9, 3));
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod complete;
pub mod difference;
pub mod reduce;
pub mod ring_design;
pub mod steiner;
pub mod subfield;
pub mod symmetric;

pub use block::{BibdParams, BibdViolation, BlockDesign};
pub use complete::{binomial, complete_design, complete_design_params, Combinations};
pub use difference::{develop, is_difference_family, ring_initial_blocks};
pub use reduce::{reduce_by_factor, reduce_redundancy};
pub use ring_design::{ring_design_exists, RingDesign};
pub use steiner::{bose_sts, skolem_sts, steiner_triple_system, sts_exists};
pub use subfield::{bibd_min_blocks, log_exact, theorem6_design};
pub use symmetric::{theorem4_design, theorem5_design, ConstructedBibd};
