//! Steiner triple systems: `λ = 1` BIBDs with `k = 3`, existing for every
//! `v ≡ 1 or 3 (mod 6)` — the classic Bose (6t+3) and Skolem (6t+1)
//! constructions.
//!
//! The paper closes noting that "much room for improvement remains in
//! the construction of BIBDs"; STSs fill the `k = 3` column of the
//! `(v, k)` plane completely, including the many composite `v` (e.g.
//! `v = 15, 21, 33, …`) that the ring-based constructions cannot reach
//! with `λ = 1`, and give layouts of size `r = (v−1)/2` after Section 4
//! parity balancing.

use crate::block::BlockDesign;
use crate::symmetric::ConstructedBibd;

/// True iff a Steiner triple system on `v` points exists
/// (`v ≡ 1, 3 (mod 6)`, `v ≥ 3`).
pub fn sts_exists(v: usize) -> bool {
    v >= 3 && (v % 6 == 1 || v % 6 == 3)
}

/// The idempotent commutative quasigroup on `Z_n` for odd `n`:
/// `x∘y = (x+y)·(n+1)/2 mod n` (i.e. the "average" of x and y).
fn idempotent_quasigroup(n: usize) -> impl Fn(usize, usize) -> usize {
    debug_assert!(n % 2 == 1);
    let half = n.div_ceil(2);
    move |x: usize, y: usize| (x + y) * half % n
}

/// A half-idempotent commutative quasigroup on `Z_n` for even `n`:
/// relabel the addition table by σ(2i) = i, σ(2i+1) = n/2 + i, so that
/// `x∘x = x` for `x < n/2`.
fn half_idempotent_quasigroup(n: usize) -> impl Fn(usize, usize) -> usize {
    debug_assert!(n.is_multiple_of(2));
    move |x: usize, y: usize| {
        let z = (x + y) % n;
        if z.is_multiple_of(2) {
            z / 2
        } else {
            n / 2 + z / 2
        }
    }
}

/// Bose construction: an STS on `v = 6t+3` points.
///
/// Points are `Z_{2t+1} × {0,1,2}` (encoded `x + (2t+1)·level`); triples
/// are the `(x,0),(x,1),(x,2)` columns plus `{(x,j),(y,j),(x∘y,j+1)}`
/// for `x < y` under the idempotent quasigroup.
pub fn bose_sts(v: usize) -> BlockDesign {
    assert!(v >= 3 && v % 6 == 3, "Bose construction needs v ≡ 3 (mod 6), got {v}");
    let n = v / 3; // 2t+1, odd
    let op = idempotent_quasigroup(n);
    let pt = |x: usize, level: usize| x + n * level;
    let mut blocks = Vec::with_capacity(v * (v - 1) / 6);
    for x in 0..n {
        blocks.push(vec![pt(x, 0), pt(x, 1), pt(x, 2)]);
    }
    for j in 0..3 {
        for x in 0..n {
            for y in x + 1..n {
                blocks.push(vec![pt(x, j), pt(y, j), pt(op(x, y), (j + 1) % 3)]);
            }
        }
    }
    BlockDesign::new(v, blocks)
}

/// Skolem construction: an STS on `v = 6t+1` points.
///
/// Points are `{∞} ∪ Z_{2t} × {0,1,2}` (∞ encoded as `v−1`); triples are
/// the idempotent columns for `i < t`, the ∞-triples
/// `{∞, (t+i, j), (i, j+1)}`, and `{(x,j),(y,j),(x∘y,j+1)}` for `x < y`
/// under the half-idempotent quasigroup.
pub fn skolem_sts(v: usize) -> BlockDesign {
    assert!(v >= 7 && v % 6 == 1, "Skolem construction needs v ≡ 1 (mod 6), got {v}");
    let t = v / 6;
    let n = 2 * t;
    let op = half_idempotent_quasigroup(n);
    let pt = |x: usize, level: usize| x + n * level;
    let inf = v - 1;
    let mut blocks = Vec::with_capacity(v * (v - 1) / 6);
    for i in 0..t {
        blocks.push(vec![pt(i, 0), pt(i, 1), pt(i, 2)]);
    }
    for j in 0..3 {
        for i in 0..t {
            blocks.push(vec![inf, pt(t + i, j), pt(i, (j + 1) % 3)]);
        }
    }
    for j in 0..3 {
        for x in 0..n {
            for y in x + 1..n {
                blocks.push(vec![pt(x, j), pt(y, j), pt(op(x, y), (j + 1) % 3)]);
            }
        }
    }
    BlockDesign::new(v, blocks)
}

/// A Steiner triple system on `v` points (Bose or Skolem as appropriate),
/// verified, with the standard parameters `b = v(v−1)/6`, `r = (v−1)/2`,
/// `λ = 1`. Panics if `v` is not admissible.
pub fn steiner_triple_system(v: usize) -> ConstructedBibd {
    assert!(sts_exists(v), "no STS exists for v = {v} (need v ≡ 1, 3 mod 6)");
    let design = if v % 6 == 3 { bose_sts(v) } else { skolem_sts(v) };
    let params =
        design.verify_bibd().unwrap_or_else(|e| panic!("STS({v}) failed verification: {e}"));
    assert_eq!(params.b, v * (v - 1) / 6);
    assert_eq!(params.r, (v - 1) / 2);
    assert_eq!(params.lambda, 1);
    ConstructedBibd { design, params, reduction_factor: 1 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admissibility() {
        assert!(sts_exists(3));
        assert!(sts_exists(7));
        assert!(sts_exists(9));
        assert!(sts_exists(13));
        assert!(sts_exists(15));
        assert!(!sts_exists(5));
        assert!(!sts_exists(6));
        assert!(!sts_exists(11));
        assert!(!sts_exists(2));
    }

    #[test]
    fn quasigroup_properties() {
        for n in [3usize, 5, 7, 9, 11] {
            let op = idempotent_quasigroup(n);
            for x in 0..n {
                assert_eq!(op(x, x), x, "idempotent");
                for y in 0..n {
                    assert_eq!(op(x, y), op(y, x), "commutative");
                }
                let mut seen: Vec<usize> = (0..n).map(|y| op(x, y)).collect();
                seen.sort_unstable();
                assert_eq!(seen, (0..n).collect::<Vec<_>>(), "latin row");
            }
        }
        for n in [2usize, 4, 6, 8, 10] {
            let op = half_idempotent_quasigroup(n);
            for x in 0..n / 2 {
                assert_eq!(op(x, x), x, "half-idempotent lower diagonal");
            }
            for x in 0..n {
                for y in 0..n {
                    assert_eq!(op(x, y), op(y, x));
                }
                let mut seen: Vec<usize> = (0..n).map(|y| op(x, y)).collect();
                seen.sort_unstable();
                assert_eq!(seen, (0..n).collect::<Vec<_>>(), "latin row n={n}");
            }
        }
    }

    #[test]
    fn bose_small_cases() {
        for v in [3usize, 9, 15, 21, 27, 33, 39] {
            let c = steiner_triple_system(v);
            assert_eq!(c.params.lambda, 1, "v={v}");
            assert_eq!(c.params.b, v * (v - 1) / 6);
        }
    }

    #[test]
    fn skolem_small_cases() {
        for v in [7usize, 13, 19, 25, 31, 37, 43] {
            let c = steiner_triple_system(v);
            assert_eq!(c.params.lambda, 1, "v={v}");
            assert_eq!(c.params.r, (v - 1) / 2);
        }
    }

    #[test]
    fn fano_plane_is_skolem_sts_7() {
        let c = steiner_triple_system(7);
        assert_eq!(c.params.b, 7);
        assert_eq!(c.params.r, 3);
    }

    #[test]
    fn sts_meets_theorem7_bound() {
        use crate::subfield::bibd_min_blocks;
        for v in [9usize, 13, 15, 21, 25] {
            let c = steiner_triple_system(v);
            assert_eq!(c.params.b as u64, bibd_min_blocks(v as u64, 3), "λ=1 ⇒ optimally small");
        }
    }

    #[test]
    fn sts_covers_composite_v_ring_designs_cannot() {
        // v = 15 = 3·5 → M(v) = 3, ring designs give λ = 6 at best size
        // b = 210/6 = 35 after reduction; the STS gives b = 35 with λ=1…
        // the real win is v = 33 = 3·11: M(v) = 3 but λ=1 needs STS.
        let c = steiner_triple_system(33);
        assert_eq!(c.params.b, 33 * 32 / 6);
        // and v = 55 = 5·11 ≡ 1 (mod 6): M(55) = 5 but no λ=1 ring design.
        let c = steiner_triple_system(55);
        assert_eq!(c.params.lambda, 1);
    }

    #[test]
    #[should_panic(expected = "no STS")]
    fn rejects_inadmissible_v() {
        steiner_triple_system(11);
    }

    #[test]
    fn larger_systems_verify() {
        for v in [49usize, 51, 57, 63, 61, 67] {
            if sts_exists(v) {
                let c = steiner_triple_system(v);
                assert_eq!(c.params.lambda, 1, "v={v}");
            }
        }
    }
}
