//! Redundancy removal (Section 2.2).
//!
//! A ring-based design may contain the same tuple many times. If every
//! distinct tuple's multiplicity is a multiple of `f`, keeping `1/f` of
//! each yields a BIBD with `b`, `r`, `λ` all divided by `f`.

use crate::block::BlockDesign;
use pdl_algebra::nt::gcd;

/// Maximal redundancy reduction: divides every block multiplicity by
/// their collective gcd `f`. Returns the reduced design and `f`.
pub fn reduce_redundancy(design: &BlockDesign) -> (BlockDesign, usize) {
    let mult = design.block_multiplicities();
    let f = mult.values().fold(0u64, |acc, &m| gcd(acc, m as u64)) as usize;
    if f <= 1 {
        return (design.clone(), 1);
    }
    let blocks =
        mult.into_iter().flat_map(|(block, m)| std::iter::repeat_n(block, m / f)).collect();
    (BlockDesign::new(design.v(), blocks), f)
}

/// Reduces by exactly the factor `f`, if every multiplicity allows it.
///
/// The Theorem 4/5/6 constructions guarantee specific factors; using this
/// instead of [`reduce_redundancy`] reproduces the paper's exact designs
/// even when more reduction happens to be possible.
pub fn reduce_by_factor(design: &BlockDesign, f: usize) -> Option<BlockDesign> {
    assert!(f >= 1);
    if f == 1 {
        return Some(design.clone());
    }
    let mult = design.block_multiplicities();
    if mult.values().any(|&m| m % f != 0) {
        return None;
    }
    let blocks =
        mult.into_iter().flat_map(|(block, m)| std::iter::repeat_n(block, m / f)).collect();
    Some(BlockDesign::new(design.v(), blocks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring_design::RingDesign;

    #[test]
    fn reduce_triple_copies() {
        let base = BlockDesign::new(4, vec![vec![0, 1], vec![2, 3], vec![0, 2], vec![1, 3]]);
        let tripled = base.replicate(3);
        let (reduced, f) = reduce_redundancy(&tripled);
        assert_eq!(f, 3);
        assert_eq!(reduced.b(), 4);
        assert_eq!(reduced.block_multiplicities(), base.block_multiplicities());
    }

    #[test]
    fn reduce_is_idempotent() {
        let base = BlockDesign::new(4, vec![vec![0, 1], vec![2, 3]]);
        let (r1, f1) = reduce_redundancy(&base);
        assert_eq!(f1, 1);
        assert_eq!(r1.b(), base.b());
    }

    #[test]
    fn reduce_preserves_bibd() {
        // Full ring design on GF(5), k=3 has λ=6; reduction keeps balance.
        let d = RingDesign::for_v_k(5, 3).to_block_design();
        let before = d.verify_bibd().unwrap();
        let (red, f) = reduce_redundancy(&d);
        let after = red.verify_bibd().unwrap();
        assert!(f >= 1);
        assert_eq!(before.b, after.b * f);
        assert_eq!(before.r, after.r * f);
        assert_eq!(before.lambda, after.lambda * f);
    }

    #[test]
    fn reduce_by_factor_exact() {
        let base = BlockDesign::new(3, vec![vec![0, 1], vec![1, 2]]);
        let x6 = base.replicate(6);
        let r2 = reduce_by_factor(&x6, 2).unwrap();
        assert_eq!(r2.b(), 6);
        let r3 = reduce_by_factor(&x6, 3).unwrap();
        assert_eq!(r3.b(), 4);
        assert!(reduce_by_factor(&x6, 4).is_none());
        assert_eq!(reduce_by_factor(&x6, 1).unwrap().b(), 12);
    }

    #[test]
    fn mixed_multiplicity_gcd() {
        // multiplicities 2 and 4 → f = 2
        let mut blocks = vec![vec![0usize, 1]; 2];
        blocks.extend(vec![vec![1usize, 2]; 4]);
        let d = BlockDesign::new(3, blocks);
        let (r, f) = reduce_redundancy(&d);
        assert_eq!(f, 2);
        assert_eq!(r.b(), 3);
    }
}
