//! Subfield-generator BIBDs (Section 2.2.2, Theorem 6) and the Theorem 7
//! size lower bound.
//!
//! When `k` is a prime power and `v = k^m`, taking the generators to be
//! the subfield `GF(k) ⊂ GF(v)` gives a redundancy factor of exactly
//! `k(k−1)`; removing it yields a `λ = 1` BIBD with
//! `b = v(v−1)/(k(k−1))`, `r = (v−1)/(k−1)` — optimally small by
//! Theorem 7.

use crate::reduce::reduce_by_factor;
use crate::ring_design::RingDesign;
use crate::symmetric::ConstructedBibd;
use pdl_algebra::nt::{gcd, prime_power};
use pdl_algebra::{FiniteField, FiniteRing};

/// Theorem 7: any BIBD on `v` elements with block size `k` has
/// `b ≥ v(v−1) / gcd(v(v−1), k(k−1))`.
pub fn bibd_min_blocks(v: u64, k: u64) -> u64 {
    assert!(v >= 2 && k >= 2);
    v * (v - 1) / gcd(v * (v - 1), k * (k - 1))
}

/// Returns `Some(m)` if `v = k^m` for some `m ≥ 1`.
pub fn log_exact(v: u64, k: u64) -> Option<u32> {
    if k < 2 {
        return None;
    }
    let mut acc = 1u64;
    let mut m = 0u32;
    while acc < v {
        acc = acc.checked_mul(k)?;
        m += 1;
    }
    (acc == v && m >= 1).then_some(m)
}

/// Theorem 6: for prime-power `k` and `v = k^m`, the λ=1 BIBD with
/// `b = v(v−1)/(k(k−1))` and `r = (v−1)/(k−1)`, built by taking the
/// generators to be the subfield `GF(k)` of `GF(v)`.
pub fn theorem6_design(v: usize, k: usize) -> ConstructedBibd {
    assert!(prime_power(k as u64).is_some(), "k = {k} must be a prime power");
    let m = log_exact(v as u64, k as u64)
        .unwrap_or_else(|| panic!("v = {v} must be a power of k = {k}"));
    let _ = m;
    let field = FiniteField::new(v as u64);
    let gens = field.subfield(k); // sorted ⇒ gens[0] = 0
    debug_assert_eq!(gens[0], 0);
    let full = RingDesign::new(FiniteRing::Field(field), gens).to_block_design();
    let factor = k * (k - 1);
    let design = reduce_by_factor(&full, factor)
        .unwrap_or_else(|| panic!("v={v}, k={k}: expected redundancy factor {factor}"));
    let params = design
        .verify_bibd()
        .unwrap_or_else(|e| panic!("v={v}, k={k}: reduced design not a BIBD: {e}"));
    assert_eq!(params.b, v * (v - 1) / factor, "Theorem 6 b");
    assert_eq!(params.r, (v - 1) / (k - 1), "Theorem 6 r");
    assert_eq!(params.lambda, 1, "Theorem 6 λ");
    ConstructedBibd { design, params, reduction_factor: factor }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_bound_examples() {
        // v=7, k=3: 42/gcd(42,6) = 7 (the Fano plane meets it).
        assert_eq!(bibd_min_blocks(7, 3), 7);
        // v=9, k=3: 72/gcd(72,6) = 12 (affine plane of order 3).
        assert_eq!(bibd_min_blocks(9, 3), 12);
        // v=16, k=4: 240/gcd(240,12) = 20.
        assert_eq!(bibd_min_blocks(16, 4), 20);
    }

    #[test]
    fn log_exact_works() {
        assert_eq!(log_exact(16, 4), Some(2));
        assert_eq!(log_exact(64, 4), Some(3));
        assert_eq!(log_exact(8, 2), Some(3));
        assert_eq!(log_exact(12, 4), None);
        assert_eq!(log_exact(4, 4), Some(1));
        assert_eq!(log_exact(10, 1), None);
    }

    #[test]
    fn theorem6_examples_meet_lower_bound() {
        for (v, k) in [
            (4usize, 2usize),
            (8, 2),
            (16, 2),
            (9, 3),
            (27, 3),
            (16, 4),
            (64, 4),
            (25, 5),
            (64, 8),
            (81, 9),
        ] {
            let c = theorem6_design(v, k);
            assert_eq!(c.params.lambda, 1, "v={v} k={k}");
            assert_eq!(
                c.params.b as u64,
                bibd_min_blocks(v as u64, k as u64),
                "v={v} k={k}: must be optimally small"
            );
            assert_eq!(c.reduction_factor, k * (k - 1));
        }
    }

    #[test]
    fn theorem6_generalizes_prime_k() {
        // Pietracaprina–Preparata covered prime k; Theorem 6 allows prime
        // powers: k = 4 (= 2²), k = 9 (= 3²), k = 8 (= 2³).
        for (v, k) in [(16usize, 4usize), (81, 9), (64, 8)] {
            let c = theorem6_design(v, k);
            assert_eq!(c.params.r, (v - 1) / (k - 1));
        }
    }

    #[test]
    fn theorem6_v_equals_k() {
        // m = 1: a single block containing the whole field.
        let c = theorem6_design(5, 5);
        assert_eq!(c.params.b, 1);
        assert_eq!(c.params.r, 1);
    }

    #[test]
    #[should_panic(expected = "power of k")]
    fn theorem6_rejects_bad_v() {
        theorem6_design(12, 4);
    }

    #[test]
    #[should_panic(expected = "prime power")]
    fn theorem6_rejects_composite_k() {
        theorem6_design(36, 6);
    }

    #[test]
    fn every_construction_respects_theorem7() {
        use crate::symmetric::{theorem4_design, theorem5_design};
        for q in [5usize, 7, 8, 9, 13] {
            for k in 2..q {
                let lb = bibd_min_blocks(q as u64, k as u64) as usize;
                assert!(theorem4_design(q, k).params.b >= lb, "thm4 q={q} k={k}");
                assert!(theorem5_design(q, k).params.b >= lb, "thm5 q={q} k={k}");
            }
        }
    }
}
