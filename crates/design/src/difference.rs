//! Difference families and block development (Wallis \[16\]).
//!
//! Section 2.1 closes by noting that "the ring-based block design
//! construction is a special case of the construction of block designs
//! from supplementary difference sets, where the initial blocks are the
//! tuples corresponding to the pairs (0, y) for y ≠ 0". This module
//! implements the general mechanism — develop base blocks through the
//! additive group of a ring — and the tests verify the paper's remark
//! literally.

use crate::block::BlockDesign;
use pdl_algebra::{FiniteRing, Ring};

/// True iff `base_blocks` form a `(v, k, λ)` *difference family* over
/// the additive group of `ring`: every nonzero element arises exactly
/// `λ` times as a difference `a − b` of two elements within one base
/// block.
pub fn is_difference_family(ring: &FiniteRing, base_blocks: &[Vec<usize>], lambda: usize) -> bool {
    let v = ring.order();
    let mut counts = vec![0usize; v];
    for block in base_blocks {
        for (i, &a) in block.iter().enumerate() {
            for (j, &b) in block.iter().enumerate() {
                if i != j {
                    counts[ring.sub(a, b)] += 1;
                }
            }
        }
    }
    counts[0] == 0 && counts[1..].iter().all(|&c| c == lambda)
}

/// Develops base blocks through the additive group: the design whose
/// blocks are `{x + e : e ∈ B}` for every base block `B` and every ring
/// element `x`. If the base blocks form a `(v, k, λ)` difference family,
/// the result is a BIBD with `b = v·|base|`, `r = k·|base|`, and `λ`.
pub fn develop(ring: &FiniteRing, base_blocks: &[Vec<usize>]) -> BlockDesign {
    let v = ring.order();
    let mut blocks = Vec::with_capacity(v * base_blocks.len());
    for base in base_blocks {
        for x in 0..v {
            blocks.push(base.iter().map(|&e| ring.add(x, e)).collect());
        }
    }
    BlockDesign::new(v, blocks)
}

/// The ring design's *initial blocks* in the paper's sense: the tuples
/// for the pairs `(0, y)`, `y ≠ 0` — i.e. `{y·(g_i − g_0)}`.
pub fn ring_initial_blocks(design: &crate::ring_design::RingDesign) -> Vec<Vec<usize>> {
    (1..design.v()).map(|y| design.block(0, y).to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring_design::RingDesign;
    use pdl_algebra::Zn;

    #[test]
    fn fano_difference_set() {
        // {0, 1, 3} is the classic (7, 3, 1) planar difference set.
        let ring = FiniteRing::Zn(Zn::new(7));
        let base = vec![vec![0usize, 1, 3]];
        assert!(is_difference_family(&ring, &base, 1));
        let d = develop(&ring, &base);
        let p = d.verify_bibd().unwrap();
        assert_eq!((p.v, p.b, p.r, p.k, p.lambda), (7, 7, 3, 3, 1));
    }

    #[test]
    fn biplane_difference_set() {
        // {0, 1, 3, 9} in Z_13 is a (13, 4, 1) difference set.
        let ring = FiniteRing::Zn(Zn::new(13));
        let base = vec![vec![0usize, 1, 3, 9]];
        assert!(is_difference_family(&ring, &base, 1));
        let p = develop(&ring, &base).verify_bibd().unwrap();
        assert_eq!((p.b, p.r, p.lambda), (13, 4, 1));
    }

    #[test]
    fn non_difference_set_rejected() {
        let ring = FiniteRing::Zn(Zn::new(7));
        assert!(!is_difference_family(&ring, &[vec![0, 1, 2]], 1));
    }

    #[test]
    fn paper_remark_ring_design_is_developed_initial_blocks() {
        // The paper's Section 2.1 remark, verified literally: developing
        // the (0, y) tuples through the ring reproduces the full
        // ring-based design (as a multiset of blocks).
        for (v, k) in [(5usize, 3usize), (7, 3), (8, 4), (9, 3), (12, 3)] {
            let rd = RingDesign::for_v_k(v, k);
            let initial = ring_initial_blocks(&rd);
            let developed = develop(rd.ring(), &initial);
            let original = rd.to_block_design();
            assert_eq!(
                developed.block_multiplicities(),
                original.block_multiplicities(),
                "v={v} k={k}: development must reproduce the ring design"
            );
        }
    }

    #[test]
    fn ring_initial_blocks_form_difference_family() {
        // The initial blocks of a ring design are a (v, k, k(k−1))
        // difference family (λ matches Theorem 1).
        for (v, k) in [(7usize, 3usize), (9, 4), (13, 4)] {
            let rd = RingDesign::for_v_k(v, k);
            let initial = ring_initial_blocks(&rd);
            assert!(is_difference_family(rd.ring(), &initial, k * (k - 1)), "v={v} k={k}");
        }
    }

    #[test]
    fn multiple_base_blocks() {
        // Two base blocks in Z_13 forming a (13, 3, 1) difference family:
        // {0,1,4} and {0,2,7} — differences ±{1,3,4} and ±{2,5,7}… check
        // programmatically rather than by hand.
        let ring = FiniteRing::Zn(Zn::new(13));
        let base = vec![vec![0usize, 1, 4], vec![0usize, 2, 7]];
        if is_difference_family(&ring, &base, 1) {
            let p = develop(&ring, &base).verify_bibd().unwrap();
            assert_eq!((p.b, p.lambda), (26, 1));
        } else {
            // fall back to a known-good family for (13, 3, 1)
            let base = vec![vec![0usize, 1, 4], vec![0usize, 2, 8]];
            assert!(is_difference_family(&ring, &base, 1));
            let p = develop(&ring, &base).verify_bibd().unwrap();
            assert_eq!((p.b, p.lambda), (26, 1));
        }
    }
}
