//! Ring-based block designs (Section 2.1, Theorems 1 and 2).
//!
//! Given a finite commutative ring `R` with unit and a generator set
//! `g_0, …, g_{k-1}` (pairwise differences invertible), the design's
//! tuples are `{x + y·(g_i − g_0) : i}` over all pairs `(x, y)` with
//! `y ≠ 0`. Theorem 1: this is a BIBD with `b = v(v−1)`, `r = k(v−1)`,
//! `λ = k(k−1)`, where `v = |R|`.

use crate::block::BlockDesign;
use pdl_algebra::nt::min_prime_power_factor;
use pdl_algebra::{FiniteRing, Ring};

/// A ring-based block design, retaining the `(x, y)` tuple indexing that
/// the layout constructions of Section 3 rely on.
#[derive(Clone, Debug)]
pub struct RingDesign {
    ring: FiniteRing,
    generators: Vec<usize>,
    /// `blocks[pair_index(x, y)][i]` = the `g_i`-th element of tuple `(x, y)`.
    blocks: Vec<Vec<usize>>,
}

impl RingDesign {
    /// Builds the design for `ring` and `generators`.
    ///
    /// Panics if `generators` is not a valid generator set. The first
    /// generator is `g_0`; the Section 3 layouts additionally want
    /// `g_0 = 0`, which [`FiniteRing::lemma3_generators`] guarantees.
    pub fn new(ring: FiniteRing, generators: Vec<usize>) -> Self {
        assert!(generators.len() >= 2, "need at least two generators");
        assert!(ring.is_generator_set(&generators), "pairwise generator differences must be units");
        let v = ring.order();
        let g0 = generators[0];
        let diffs: Vec<usize> = generators.iter().map(|&g| ring.sub(g, g0)).collect();
        let mut blocks = Vec::with_capacity(v * (v - 1));
        for x in 0..v {
            for y in 1..v {
                blocks.push(diffs.iter().map(|&d| ring.add(x, ring.mul(y, d))).collect());
            }
        }
        RingDesign { ring, generators, blocks }
    }

    /// Convenience: the design on the Lemma 3 ring for `v` with the
    /// canonical size-`k` generator set. Panics if `k > M(v)` (Theorem 2).
    pub fn for_v_k(v: usize, k: usize) -> Self {
        let ring = FiniteRing::lemma3_ring(v as u64);
        let gens = ring.lemma3_generators(k);
        RingDesign::new(ring, gens)
    }

    /// The underlying ring.
    pub fn ring(&self) -> &FiniteRing {
        &self.ring
    }

    /// The generator set.
    pub fn generators(&self) -> &[usize] {
        &self.generators
    }

    /// Ground-set size `v` (= ring order = number of disks).
    pub fn v(&self) -> usize {
        self.ring.order()
    }

    /// Tuple size `k`.
    pub fn k(&self) -> usize {
        self.generators.len()
    }

    /// Number of tuples `b = v(v−1)`.
    pub fn b(&self) -> usize {
        self.blocks.len()
    }

    /// Flat index of the tuple for pair `(x, y)`, `y ∈ 1..v`.
    pub fn pair_index(&self, x: usize, y: usize) -> usize {
        let v = self.v();
        debug_assert!(x < v && y >= 1 && y < v);
        x * (v - 1) + (y - 1)
    }

    /// Inverse of [`pair_index`](Self::pair_index).
    pub fn index_pair(&self, idx: usize) -> (usize, usize) {
        let v = self.v();
        (idx / (v - 1), idx % (v - 1) + 1)
    }

    /// The tuple for pair `(x, y)`; element `i` is the `g_i`-th element.
    pub fn block(&self, x: usize, y: usize) -> &[usize] {
        &self.blocks[self.pair_index(x, y)]
    }

    /// All tuples in `(x, y)` order.
    pub fn blocks(&self) -> &[Vec<usize>] {
        &self.blocks
    }

    /// Forgets the ring structure, yielding a plain [`BlockDesign`].
    pub fn to_block_design(&self) -> BlockDesign {
        BlockDesign::new(self.v(), self.blocks.clone())
    }
}

/// Theorem 2: a ring-based design on a `v`-set with tuples of size `k`
/// exists iff `k ≤ M(v)`, the minimum prime-power factor of `v`.
pub fn ring_design_exists(v: u64, k: u64) -> bool {
    v >= 2 && k >= 2 && k <= min_prime_power_factor(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_algebra::FiniteField;

    #[test]
    fn theorem1_parameters_field() {
        for (q, k) in [(4usize, 3usize), (5, 3), (7, 4), (8, 5), (9, 4), (13, 6)] {
            let d = RingDesign::for_v_k(q, k);
            let p = d.to_block_design().verify_bibd().unwrap();
            assert_eq!(p.v, q);
            assert_eq!(p.b, q * (q - 1), "b=v(v-1) for q={q}");
            assert_eq!(p.r, k * (q - 1), "r=k(v-1) for q={q}");
            assert_eq!(p.k, k);
            assert_eq!(p.lambda, k * (k - 1), "λ=k(k-1) for q={q}");
        }
    }

    #[test]
    fn theorem1_parameters_product_ring() {
        // v = 12 = 4·3, M(v) = 3: k up to 3 works.
        let d = RingDesign::for_v_k(12, 3);
        let p = d.to_block_design().verify_bibd().unwrap();
        assert_eq!((p.v, p.b, p.r, p.k, p.lambda), (12, 132, 33, 3, 6));

        // v = 15 = 3·5, M(v) = 3.
        let d = RingDesign::for_v_k(15, 3);
        let p = d.to_block_design().verify_bibd().unwrap();
        assert_eq!((p.v, p.b, p.r, p.k, p.lambda), (15, 210, 42, 3, 6));
    }

    #[test]
    fn theorem1_parameters_zn() {
        // Z_7 is a field, {0,1,2} a generator set.
        use pdl_algebra::Zn;
        let ring = FiniteRing::Zn(Zn::new(7));
        let d = RingDesign::new(ring, vec![0, 1, 2]);
        let p = d.to_block_design().verify_bibd().unwrap();
        assert_eq!((p.b, p.r, p.lambda), (42, 18, 6));
    }

    #[test]
    fn tuple_indexing_roundtrip() {
        let d = RingDesign::for_v_k(8, 3);
        for idx in 0..d.b() {
            let (x, y) = d.index_pair(idx);
            assert_eq!(d.pair_index(x, y), idx);
        }
    }

    #[test]
    fn gi_th_element_structure() {
        // The i-th position of tuple (x,y) is x + y(g_i - g_0); position 0
        // is always x when g_0 = 0.
        let d = RingDesign::for_v_k(9, 4);
        for x in 0..9 {
            for y in 1..9 {
                assert_eq!(d.block(x, y)[0], x, "g0-th element must be x");
            }
        }
    }

    #[test]
    fn tuples_have_distinct_elements() {
        // Theorem 1's first claim: each tuple has exactly k elements.
        let d = RingDesign::for_v_k(25, 6);
        for block in d.blocks() {
            let mut s = block.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), d.k());
        }
    }

    #[test]
    fn theorem2_characterization_small() {
        // Constructive direction for v up to 60: k ≤ M(v) always builds a
        // verified BIBD, k = M(v)+1 panics.
        for v in 4u64..=60 {
            let m = min_prime_power_factor(v);
            for k in 2..=m.min(6) {
                assert!(ring_design_exists(v, k));
                let d = RingDesign::for_v_k(v as usize, k as usize);
                d.to_block_design().verify_bibd().unwrap();
            }
            assert!(!ring_design_exists(v, m + 1), "v={v}");
        }
    }

    #[test]
    #[should_panic]
    fn oversized_k_panics() {
        RingDesign::for_v_k(12, 4); // M(12) = 3
    }

    #[test]
    #[should_panic(expected = "units")]
    fn invalid_generator_set_rejected() {
        use pdl_algebra::Zn;
        let ring = FiniteRing::Zn(Zn::new(6));
        RingDesign::new(ring, vec![0, 2]); // 2 is not a unit in Z_6
    }

    #[test]
    fn field_ring_matches_direct_field() {
        // for_v_k on a prime power uses GF(q) directly.
        let d = RingDesign::for_v_k(9, 3);
        match d.ring() {
            FiniteRing::Field(f) => assert_eq!(FiniteField::order(f), 9),
            other => panic!("expected field, got {other:?}"),
        }
    }
}
