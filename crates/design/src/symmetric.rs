//! Symmetric-generator BIBD constructions (Section 2.2.1, Theorems 4 & 5).
//!
//! For prime-power `v = q` and any `k ≤ q`, choosing the generators as a
//! union of cycles of a suitable field permutation makes the ring-based
//! design redundant by a known factor, which can then be removed:
//!
//! * Theorem 4 (`π(x) = a·x`, `ord(a) = gcd(q−1, k−1)`): factor
//!   `gcd(q−1, k−1)` — reproduces Hanani's designs.
//! * Theorem 5 (`π(x) = z + a(x−z)`, `ord(a) = gcd(q−1, k)`): factor
//!   `gcd(q−1, k)` — apparently new in the paper.

use crate::block::{BibdParams, BlockDesign};
use crate::reduce::reduce_by_factor;
use crate::ring_design::RingDesign;
use pdl_algebra::nt::gcd;
use pdl_algebra::{FiniteField, FiniteRing};

/// A BIBD produced by one of the paper's explicit constructions, with its
/// verified parameters and the redundancy factor that was removed.
#[derive(Clone, Debug)]
pub struct ConstructedBibd {
    /// The reduced design.
    pub design: BlockDesign,
    /// Verified `(v, b, r, k, λ)`.
    pub params: BibdParams,
    /// Redundancy factor removed from the full `b = v(v−1)` ring design.
    pub reduction_factor: usize,
}

fn finish(
    q: usize,
    k: usize,
    gens: Vec<usize>,
    field: FiniteField,
    factor: usize,
) -> ConstructedBibd {
    debug_assert_eq!(gens.len(), k);
    debug_assert_eq!(gens[0], 0, "layout constructions require g0 = 0");
    let full = RingDesign::new(FiniteRing::Field(field), gens).to_block_design();
    let design = reduce_by_factor(&full, factor)
        .unwrap_or_else(|| panic!("q={q}, k={k}: multiplicities not divisible by {factor}"));
    let params = design
        .verify_bibd()
        .unwrap_or_else(|e| panic!("q={q}, k={k}: reduced design is not a BIBD: {e}"));
    ConstructedBibd { design, params, reduction_factor: factor }
}

/// Theorem 4: for prime-power `q` and `2 ≤ k ≤ q`, a BIBD with
/// `b = q(q−1)/g`, `r = k(q−1)/g`, `λ = k(k−1)/g` where `g = gcd(q−1, k−1)`.
///
/// Generators: `{0}` plus `(k−1)/g` multiplicative cosets of `⟨a⟩`,
/// `a` of multiplicative order `g`.
pub fn theorem4_design(q: usize, k: usize) -> ConstructedBibd {
    assert!(k >= 2 && k <= q, "need 2 <= k <= q (got k={k}, q={q})");
    let field = FiniteField::new(q as u64);
    let g = gcd(q as u64 - 1, k as u64 - 1) as usize;
    let a = field.element_of_order(g as u64);
    // Orbits of x → a·x on nonzero elements all have size exactly g.
    let mut gens = vec![0usize];
    let mut used = vec![false; q];
    used[0] = true;
    let mut w = 1usize;
    while gens.len() < k {
        while used[w] {
            w += 1;
        }
        let mut cur = w;
        loop {
            used[cur] = true;
            gens.push(cur);
            cur = field.mul(a, cur);
            if cur == w {
                break;
            }
        }
    }
    debug_assert_eq!(gens.len(), k, "orbit sizes must divide k-1");
    let out = finish(q, k, gens, field, g);
    assert_eq!(out.params.b, q * (q - 1) / g);
    assert_eq!(out.params.r, k * (q - 1) / g);
    assert_eq!(out.params.lambda, k * (k - 1) / g);
    out
}

/// Theorem 5: for prime-power `q` and `2 ≤ k ≤ q`, a BIBD with
/// `b = q(q−1)/g`, `r = k(q−1)/g`, `λ = k(k−1)/g` where `g = gcd(q−1, k)`.
///
/// Generators: `k/g` cycles (each of size `g`) of `π(x) = z + a(x−z)`,
/// including the cycle through 0; `a` of multiplicative order `g`, `z ≠ 0`
/// the fixed point of `π`.
pub fn theorem5_design(q: usize, k: usize) -> ConstructedBibd {
    assert!(k >= 2 && k <= q, "need 2 <= k <= q (got k={k}, q={q})");
    let field = FiniteField::new(q as u64);
    let g = gcd(q as u64 - 1, k as u64) as usize;
    let a = field.element_of_order(g as u64);
    let z = 1usize; // any nonzero element; π fixes z, so z never enters a cycle we pick
    assert!(k < q || g == 1 || z != 0, "unreachable");
    let orbit = |w: usize| -> Vec<usize> {
        let mut cyc = vec![w];
        let mut cur = w;
        loop {
            // π(x) = z + a(x − z)
            cur = field.add(z, field.mul(a, field.sub(cur, z)));
            if cur == w {
                break;
            }
            cyc.push(cur);
        }
        cyc
    };
    // The cycle through 0 comes first so that g0 = 0.
    let mut gens = orbit(0);
    debug_assert_eq!(gens.len(), g);
    let mut used = vec![false; q];
    used[z] = true;
    for &e in &gens {
        used[e] = true;
    }
    let mut w = 0usize;
    while gens.len() < k {
        while used[w] {
            w += 1;
        }
        let cyc = orbit(w);
        debug_assert_eq!(cyc.len(), g);
        for &e in &cyc {
            used[e] = true;
        }
        gens.extend(cyc);
    }
    // When k = q there may not be enough non-fixed cycles: k/g cycles of
    // size g need k elements avoiding z, i.e. k ≤ q − 1 unless g = 1 and
    // z can be used… the theorem presumes k generators distinct from z.
    assert_eq!(gens.len(), k, "cycle sizes must divide k");
    let out = finish(q, k, gens, field, g);
    assert_eq!(out.params.b, q * (q - 1) / g);
    assert_eq!(out.params.r, k * (q - 1) / g);
    assert_eq!(out.params.lambda, k * (k - 1) / g);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem4_parameter_sweep() {
        for q in [4usize, 5, 7, 8, 9, 11, 13, 16, 17, 25, 27] {
            for k in 2..=q.min(9) {
                let g = gcd(q as u64 - 1, k as u64 - 1) as usize;
                let c = theorem4_design(q, k);
                assert_eq!(c.reduction_factor, g, "q={q} k={k}");
                assert_eq!(c.params.b, q * (q - 1) / g, "q={q} k={k}");
            }
        }
    }

    #[test]
    fn theorem5_parameter_sweep() {
        for q in [4usize, 5, 7, 8, 9, 11, 13, 16, 17, 25, 27] {
            for k in 2..q.min(10) {
                let g = gcd(q as u64 - 1, k as u64) as usize;
                let c = theorem5_design(q, k);
                assert_eq!(c.reduction_factor, g, "q={q} k={k}");
                assert_eq!(c.params.b, q * (q - 1) / g, "q={q} k={k}");
            }
        }
    }

    #[test]
    fn theorem4_beats_full_design_when_gcd_nontrivial() {
        // q=13, k=5: g = gcd(12,4) = 4 → b = 39 vs full 156.
        let c = theorem4_design(13, 5);
        assert_eq!(c.params.b, 39);
        assert_eq!(c.params.lambda, 5);
    }

    #[test]
    fn theorem5_differs_from_theorem4() {
        // q=13, k=4: Thm 4 g=gcd(12,3)=3 → b=52; Thm 5 g=gcd(12,4)=4 → b=39.
        let c4 = theorem4_design(13, 4);
        let c5 = theorem5_design(13, 4);
        assert_eq!(c4.params.b, 52);
        assert_eq!(c5.params.b, 39);
    }

    #[test]
    fn both_constructions_bibd_verified_deeply() {
        for (q, k) in [(9usize, 5usize), (16, 6), (11, 6), (8, 7)] {
            let c4 = theorem4_design(q, k);
            let c5 = theorem5_design(q, k);
            // verify_bibd already ran in finish(); re-check identities
            for p in [c4.params, c5.params] {
                assert_eq!(p.b * p.k, p.v * p.r);
                assert_eq!(p.lambda * (p.v - 1), p.r * (p.k - 1));
            }
        }
    }

    #[test]
    fn trivial_gcd_means_no_reduction() {
        // q=8, k=4: gcd(7,3)=1 → Thm 4 leaves the full design.
        let c = theorem4_design(8, 4);
        assert_eq!(c.reduction_factor, 1);
        assert_eq!(c.params.b, 56);
    }

    #[test]
    #[should_panic(expected = "2 <= k <= q")]
    fn k_too_large_rejected() {
        theorem4_design(5, 6);
    }
}
