//! Block designs over a `v`-element ground set, and BIBD verification.
//!
//! A *balanced incomplete block design* (BIBD) is a multiset of `b`
//! `k`-element blocks from a `v`-set such that every element lies in
//! exactly `r` blocks and every unordered pair in exactly `λ` blocks.

use std::collections::BTreeMap;
use std::fmt;

/// A block design: `b` blocks (subsets, possibly repeated) of `{0..v}`.
///
/// Blocks keep their construction order — ring-based designs use the
/// position of an element within its block (the "g_i-th element"), so
/// blocks are *sequences of distinct elements*, not sorted sets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockDesign {
    v: usize,
    blocks: Vec<Vec<usize>>,
}

/// The parameters `(v, b, r, k, λ)` of a verified BIBD.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BibdParams {
    /// Ground-set size (number of disks).
    pub v: usize,
    /// Number of blocks (parity stripes per layout copy).
    pub b: usize,
    /// Replication: blocks containing any fixed element.
    pub r: usize,
    /// Block size (parity stripe size).
    pub k: usize,
    /// Pair balance: blocks containing any fixed pair.
    pub lambda: usize,
}

impl fmt::Display for BibdParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BIBD(v={}, b={}, r={}, k={}, λ={})", self.v, self.b, self.r, self.k, self.lambda)
    }
}

/// Why a block design failed BIBD verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BibdViolation {
    /// The design has no blocks.
    Empty,
    /// Two blocks have different sizes.
    NonUniformBlockSize {
        /// Size of the first block.
        expected: usize,
        /// Index of the offending block.
        block: usize,
        /// Its size.
        got: usize,
    },
    /// Some element appears in a different number of blocks than another.
    UnevenReplication {
        /// The element with deviating replication.
        element: usize,
        /// Its replication count.
        got: usize,
        /// Replication of element 0.
        expected: usize,
    },
    /// Some pair appears in a different number of blocks than another.
    UnevenPairCount {
        /// The deviating pair.
        pair: (usize, usize),
        /// Its count.
        got: usize,
        /// Count of the first pair.
        expected: usize,
    },
}

impl fmt::Display for BibdViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BibdViolation::Empty => write!(f, "design has no blocks"),
            BibdViolation::NonUniformBlockSize { expected, block, got } => {
                write!(f, "block {block} has size {got}, expected {expected}")
            }
            BibdViolation::UnevenReplication { element, got, expected } => {
                write!(f, "element {element} appears in {got} blocks, expected {expected}")
            }
            BibdViolation::UnevenPairCount { pair, got, expected } => {
                write!(f, "pair {pair:?} appears in {got} blocks, expected {expected}")
            }
        }
    }
}

impl std::error::Error for BibdViolation {}

impl BlockDesign {
    /// Creates a design, checking every block draws distinct elements
    /// from `0..v`.
    pub fn new(v: usize, blocks: Vec<Vec<usize>>) -> Self {
        assert!(v >= 1, "ground set must be nonempty");
        let mut seen = vec![usize::MAX; v];
        for (bi, block) in blocks.iter().enumerate() {
            for &e in block {
                assert!(e < v, "block {bi} references element {e} >= v = {v}");
                assert_ne!(seen[e], bi, "block {bi} repeats element {e}");
                seen[e] = bi;
            }
        }
        BlockDesign { v, blocks }
    }

    /// Ground-set size.
    pub fn v(&self) -> usize {
        self.v
    }

    /// Number of blocks `b`.
    pub fn b(&self) -> usize {
        self.blocks.len()
    }

    /// The blocks.
    pub fn blocks(&self) -> &[Vec<usize>] {
        &self.blocks
    }

    /// Uniform block size `k`, if all blocks agree.
    pub fn block_size(&self) -> Option<usize> {
        let k = self.blocks.first()?.len();
        self.blocks.iter().all(|b| b.len() == k).then_some(k)
    }

    /// Number of blocks containing each element.
    pub fn replication_counts(&self) -> Vec<usize> {
        let mut r = vec![0usize; self.v];
        for block in &self.blocks {
            for &e in block {
                r[e] += 1;
            }
        }
        r
    }

    /// `counts[i][j]` (i < j): number of blocks containing both i and j.
    pub fn pair_counts(&self) -> Vec<Vec<usize>> {
        let mut counts = vec![vec![0usize; self.v]; self.v];
        for block in &self.blocks {
            for (ai, &a) in block.iter().enumerate() {
                for &b in block.iter().skip(ai + 1) {
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    counts[lo][hi] += 1;
                }
            }
        }
        counts
    }

    /// Verifies the BIBD conditions, returning the parameters on success.
    #[allow(clippy::needless_range_loop)]
    pub fn verify_bibd(&self) -> Result<BibdParams, BibdViolation> {
        if self.blocks.is_empty() {
            return Err(BibdViolation::Empty);
        }
        let k = self.blocks[0].len();
        for (bi, block) in self.blocks.iter().enumerate() {
            if block.len() != k {
                return Err(BibdViolation::NonUniformBlockSize {
                    expected: k,
                    block: bi,
                    got: block.len(),
                });
            }
        }
        let reps = self.replication_counts();
        let r = reps[0];
        for (e, &c) in reps.iter().enumerate() {
            if c != r {
                return Err(BibdViolation::UnevenReplication { element: e, got: c, expected: r });
            }
        }
        let pairs = self.pair_counts();
        let lambda = if self.v >= 2 { pairs[0][1] } else { 0 };
        for i in 0..self.v {
            for j in i + 1..self.v {
                if pairs[i][j] != lambda {
                    return Err(BibdViolation::UnevenPairCount {
                        pair: (i, j),
                        got: pairs[i][j],
                        expected: lambda,
                    });
                }
            }
        }
        Ok(BibdParams { v: self.v, b: self.blocks.len(), r, k, lambda })
    }

    /// Multiplicity of each *distinct* block (order-insensitive): map from
    /// the sorted block to how many times it occurs.
    pub fn block_multiplicities(&self) -> BTreeMap<Vec<usize>, usize> {
        let mut m = BTreeMap::new();
        for block in &self.blocks {
            let mut key = block.clone();
            key.sort_unstable();
            *m.entry(key).or_insert(0) += 1;
        }
        m
    }

    /// Concatenates `copies` copies of the design.
    pub fn replicate(&self, copies: usize) -> BlockDesign {
        assert!(copies >= 1, "need at least one copy");
        let mut blocks = Vec::with_capacity(self.blocks.len() * copies);
        for _ in 0..copies {
            blocks.extend(self.blocks.iter().cloned());
        }
        BlockDesign { v: self.v, blocks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fano plane: the classic (7, 7, 3, 3, 1) design.
    pub fn fano() -> BlockDesign {
        BlockDesign::new(
            7,
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![0, 5, 6],
                vec![1, 3, 5],
                vec![1, 4, 6],
                vec![2, 3, 6],
                vec![2, 4, 5],
            ],
        )
    }

    #[test]
    fn fano_is_bibd() {
        let p = fano().verify_bibd().unwrap();
        assert_eq!(p, BibdParams { v: 7, b: 7, r: 3, k: 3, lambda: 1 });
    }

    #[test]
    fn bibd_counting_identities() {
        // bk = vr and λ(v-1) = r(k-1) for any verified design.
        let p = fano().verify_bibd().unwrap();
        assert_eq!(p.b * p.k, p.v * p.r);
        assert_eq!(p.lambda * (p.v - 1), p.r * (p.k - 1));
    }

    #[test]
    fn detects_uneven_replication() {
        let d = BlockDesign::new(4, vec![vec![0, 1], vec![0, 2], vec![0, 3]]);
        match d.verify_bibd() {
            Err(BibdViolation::UnevenReplication { .. }) => {}
            other => panic!("expected replication violation, got {other:?}"),
        }
    }

    #[test]
    fn detects_uneven_pairs() {
        // every element twice, but pair (0,1) twice vs (0,2) zero
        let d = BlockDesign::new(4, vec![vec![0, 1], vec![0, 1], vec![2, 3], vec![2, 3]]);
        match d.verify_bibd() {
            Err(BibdViolation::UnevenPairCount { .. }) => {}
            other => panic!("expected pair violation, got {other:?}"),
        }
    }

    #[test]
    fn detects_nonuniform_blocks() {
        let d = BlockDesign::new(4, vec![vec![0, 1, 2], vec![0, 3]]);
        assert!(matches!(d.verify_bibd(), Err(BibdViolation::NonUniformBlockSize { .. })));
    }

    #[test]
    fn empty_design_rejected() {
        let d = BlockDesign::new(3, vec![]);
        assert_eq!(d.verify_bibd(), Err(BibdViolation::Empty));
    }

    #[test]
    #[should_panic(expected = "repeats element")]
    fn duplicate_element_in_block_panics() {
        BlockDesign::new(4, vec![vec![1, 1]]);
    }

    #[test]
    #[should_panic(expected = ">= v")]
    fn out_of_range_element_panics() {
        BlockDesign::new(4, vec![vec![0, 4]]);
    }

    #[test]
    fn multiplicities() {
        let d = BlockDesign::new(3, vec![vec![0, 1], vec![1, 0], vec![1, 2]]);
        let m = d.block_multiplicities();
        assert_eq!(m[&vec![0, 1]], 2);
        assert_eq!(m[&vec![1, 2]], 1);
    }

    #[test]
    fn replicate_multiplies_counts() {
        let d = fano().replicate(3);
        let p = d.verify_bibd().unwrap();
        assert_eq!(p.b, 21);
        assert_eq!(p.r, 9);
        assert_eq!(p.lambda, 3);
    }
}
