//! The complete block design: all `C(v, k)` k-subsets of the ground set.
//!
//! This is the design implicitly used by classic full-array parity
//! declustering; the paper notes it becomes infeasible quickly as `v`
//! grows (its layout has size `k · C(v-1, k-1)` units per disk).

use crate::block::BlockDesign;

/// Binomial coefficient `C(n, k)` in u128 to avoid overflow during
/// feasibility sweeps; saturates at `u128::MAX`.
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128) / (i + 1) as u128;
    }
    acc
}

/// Iterator over all k-subsets of `{0..v}` in lexicographic order.
pub struct Combinations {
    v: usize,
    k: usize,
    cur: Vec<usize>,
    done: bool,
}

impl Combinations {
    /// Creates the iterator (requires `1 ≤ k ≤ v`).
    pub fn new(v: usize, k: usize) -> Self {
        assert!(k >= 1 && k <= v, "need 1 <= k <= v (got k={k}, v={v})");
        Combinations { v, k, cur: (0..k).collect(), done: false }
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let out = self.cur.clone();
        // Advance: find rightmost index that can be incremented.
        let (v, k) = (self.v, self.k);
        let mut i = k;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.cur[i] < v - (k - i) {
                self.cur[i] += 1;
                for j in i + 1..k {
                    self.cur[j] = self.cur[j - 1] + 1;
                }
                break;
            }
        }
        Some(out)
    }
}

/// Builds the complete block design for `v` and `k`.
///
/// Panics if the design would exceed `max_blocks` (guard against
/// accidentally materializing astronomically many blocks during sweeps).
pub fn complete_design(v: usize, k: usize, max_blocks: usize) -> BlockDesign {
    let b = binomial(v as u64, k as u64);
    assert!(
        b <= max_blocks as u128,
        "complete design for v={v}, k={k} has {b} blocks > cap {max_blocks}"
    );
    BlockDesign::new(v, Combinations::new(v, k).collect())
}

/// Parameters of the complete design without materializing it:
/// `(b, r, λ) = (C(v,k), C(v-1,k-1), C(v-2,k-2))`.
pub fn complete_design_params(v: u64, k: u64) -> (u128, u128, u128) {
    (binomial(v, k), binomial(v - 1, k - 1), if k >= 2 { binomial(v - 2, k - 2) } else { 0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_table() {
        assert_eq!(binomial(4, 2), 6);
        assert_eq!(binomial(10, 3), 120);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(3, 4), 0);
        assert_eq!(binomial(50, 25), 126_410_606_437_752);
    }

    #[test]
    fn combinations_count_and_order() {
        let all: Vec<_> = Combinations::new(5, 3).collect();
        assert_eq!(all.len(), 10);
        assert_eq!(all[0], vec![0, 1, 2]);
        assert_eq!(all[9], vec![2, 3, 4]);
        for w in all.windows(2) {
            assert!(w[0] < w[1], "not lexicographic: {w:?}");
        }
    }

    #[test]
    fn complete_design_is_bibd() {
        for (v, k) in [(4usize, 3usize), (5, 2), (6, 3), (7, 4), (8, 2)] {
            let d = complete_design(v, k, 1_000_000);
            let p = d.verify_bibd().unwrap();
            let (b, r, l) = complete_design_params(v as u64, k as u64);
            assert_eq!(p.b as u128, b);
            assert_eq!(p.r as u128, r);
            assert_eq!(p.lambda as u128, l);
        }
    }

    #[test]
    fn fig2_complete_design_v4_k3() {
        // The paper's Fig. 2 example: v=4, k=3 uses the 4 blocks of the
        // complete design.
        let d = complete_design(4, 3, 100);
        let p = d.verify_bibd().unwrap();
        assert_eq!((p.b, p.r, p.k, p.lambda), (4, 3, 3, 2));
    }

    #[test]
    #[should_panic(expected = "blocks > cap")]
    fn cap_guard() {
        complete_design(30, 15, 1000);
    }

    #[test]
    fn k_equals_v_single_block() {
        let d = complete_design(5, 5, 10);
        assert_eq!(d.b(), 1);
        assert_eq!(d.blocks()[0], vec![0, 1, 2, 3, 4]);
    }
}
