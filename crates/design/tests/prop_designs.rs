//! Property-style tests for the design crate: BIBD identities across
//! all constructions, redundancy-reduction soundness, and verifier
//! completeness against mutated designs. Uses seeded random sampling
//! (the offline environment has no `proptest`) with 48 cases per
//! property.

use pdl_algebra::nt::gcd;
use pdl_design::{
    bibd_min_blocks, reduce_by_factor, reduce_redundancy, steiner_triple_system, sts_exists,
    theorem4_design, theorem5_design, BlockDesign, RingDesign,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PRIME_POWERS: &[usize] = &[4, 5, 7, 8, 9, 11, 13, 16, 17, 19, 23, 25];

const CASES: usize = 48;

/// Fisher-type identities hold for every verified construction:
/// bk = vr and λ(v−1) = r(k−1).
#[test]
fn counting_identities() {
    let mut rng = StdRng::seed_from_u64(0xc0de);
    for _ in 0..CASES {
        let v = PRIME_POWERS[rng.random_range(0..PRIME_POWERS.len())];
        let k = (2 + rng.random_range(0usize..4)).min(v - 1);
        for c in [theorem4_design(v, k), theorem5_design(v, k)] {
            let p = c.params;
            assert_eq!(p.b * p.k, p.v * p.r);
            assert_eq!(p.lambda * (p.v - 1), p.r * (p.k - 1));
            assert!(p.b as u64 >= bibd_min_blocks(v as u64, k as u64));
        }
    }
}

/// Reduction by the theorem factor, then re-replication, recovers the
/// original multiset of blocks.
#[test]
fn reduction_replication_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x4edc);
    for _ in 0..CASES {
        let v = PRIME_POWERS[rng.random_range(0..PRIME_POWERS.len())];
        let k = (2 + rng.random_range(0usize..3)).min(v - 1);
        let full = RingDesign::for_v_k(v, k).to_block_design();
        let g = gcd(v as u64 - 1, k as u64 - 1) as usize;
        if g > 1 {
            // The theorem-4 generators admit reduction by g; the default
            // lemma-3 generators may not, so test maximal reduction.
            let (reduced, f) = reduce_redundancy(&full);
            assert_eq!(reduced.replicate(f).block_multiplicities(), full.block_multiplicities());
        }
    }
}

/// Maximal reduction leaves no common factor behind.
#[test]
fn maximal_reduction_is_maximal() {
    for &v in PRIME_POWERS {
        let full = RingDesign::for_v_k(v, 3.min(v - 1)).to_block_design();
        let (reduced, _) = reduce_redundancy(&full);
        let (again, f2) = reduce_redundancy(&reduced);
        assert_eq!(f2, 1);
        assert_eq!(again.b(), reduced.b());
    }
}

/// reduce_by_factor respects exactly the divisibility structure.
#[test]
fn reduce_by_factor_divisibility() {
    for copies in 1usize..7 {
        for f in 1usize..9 {
            let base = BlockDesign::new(4, vec![vec![0, 1], vec![2, 3], vec![0, 2]]);
            let rep = base.replicate(copies);
            let out = reduce_by_factor(&rep, f);
            assert_eq!(out.is_some(), copies % f == 0);
            if let Some(d) = out {
                assert_eq!(d.b(), rep.b() / f);
            }
        }
    }
}

/// The BIBD verifier rejects any single-element corruption of a
/// Steiner triple system.
#[test]
fn verifier_catches_mutations() {
    let mut rng = StdRng::seed_from_u64(0x5757);
    for _ in 0..CASES {
        let vs = [7usize, 9, 13, 15];
        let v = vs[rng.random_range(0..vs.len())];
        let block = rng.random_range(0usize..10);
        let seed: u64 = rng.random_range(0..u64::MAX);
        if !sts_exists(v) {
            continue;
        }
        let design = steiner_triple_system(v).design;
        let mut blocks: Vec<Vec<usize>> = design.blocks().to_vec();
        let bi = block % blocks.len();
        // replace one element with a different one not already in the block
        let old = blocks[bi][seed as usize % 3];
        let replacement = (0..v).find(|e| !blocks[bi].contains(e) && *e != old).unwrap();
        blocks[bi][seed as usize % 3] = replacement;
        let mutated = BlockDesign::new(v, blocks);
        assert!(mutated.verify_bibd().is_err(), "mutation must break balance");
    }
}

/// Steiner systems pair-cover exactly once.
#[test]
#[allow(clippy::needless_range_loop)]
fn sts_pair_coverage() {
    for v in [7usize, 9, 13, 15, 19, 21] {
        let design = steiner_triple_system(v).design;
        let counts = design.pair_counts();
        for i in 0..v {
            for j in i + 1..v {
                assert_eq!(counts[i][j], 1, "pair ({i},{j})");
            }
        }
    }
}

/// Every block of a ring design indexes back to its (x, y) pair.
#[test]
fn ring_design_block_structure() {
    let mut rng = StdRng::seed_from_u64(0xb10c);
    for _ in 0..CASES {
        let v = PRIME_POWERS[rng.random_range(0..PRIME_POWERS.len())];
        let seed: u64 = rng.random_range(0..u64::MAX);
        let k = 3.min(v - 1);
        let d = RingDesign::for_v_k(v, k);
        let idx = (seed % d.b() as u64) as usize;
        let (x, y) = d.index_pair(idx);
        assert!(y >= 1 && y < v);
        let block = d.block(x, y);
        assert_eq!(block.len(), k);
        assert_eq!(block[0], x, "g0-th element is x");
    }
}
