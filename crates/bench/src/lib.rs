//! # pdl-bench
//!
//! Experiment binaries and criterion benches that regenerate every
//! figure and table of the paper (see `DESIGN.md` §5 for the index and
//! `EXPERIMENTS.md` for recorded results). The library portion holds
//! shared table-formatting helpers used by the binaries.

#![warn(missing_docs)]

use std::fmt::Display;

/// Prints a fixed-width table row.
pub fn row(cells: &[&dyn Display], widths: &[usize]) -> String {
    let mut out = String::new();
    for (cell, w) in cells.iter().zip(widths) {
        out.push_str(&format!("{:>w$}  ", cell.to_string(), w = w));
    }
    out.trim_end().to_string()
}

/// Prints a header row followed by a separator line.
pub fn header(names: &[&str], widths: &[usize]) -> String {
    let cells: Vec<&dyn Display> = names.iter().map(|n| n as &dyn Display).collect();
    let line = row(&cells, widths);
    let sep = "-".repeat(line.len());
    format!("{line}\n{sep}")
}

/// Formats an `f64` to 4 decimal places (common in the metric tables).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Checks a measured value against inclusive bounds with tolerance,
/// returning "ok" or a deviation note (used in paper-vs-measured tables).
pub fn bound_check(measured: (f64, f64), expected: (f64, f64)) -> &'static str {
    let eps = 1e-9;
    if measured.0 >= expected.0 - eps && measured.1 <= expected.1 + eps {
        "ok"
    } else {
        "VIOLATED"
    }
}

/// One `results` row of a `BENCH_store.json` artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRow {
    /// Backend label (`mem`, `mem_raw`, `file`, …).
    pub backend: String,
    /// Workload label (`seq_read_vectored`, `concurrent_read`, …).
    pub workload: String,
    /// Measured throughput.
    pub mb_per_s: f64,
    /// Client threads, when the row came from the thread-scaling
    /// section (`None` for the single-thread results array).
    pub threads: Option<usize>,
}

/// Extracts one `"key": value` field from a JSON result line. The
/// BENCH artifacts are machine-written one-object-per-line, so this
/// stays a deliberate line-oriented parser (the vendored serde_json
/// stand-in has no dynamic `Value` to lean on).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\": ");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// Parses every result row (main results *and* thread-scaling) out of
/// a `BENCH_store.json` artifact.
pub fn parse_bench_rows(json: &str) -> Vec<BenchRow> {
    json.lines()
        .filter_map(|line| {
            let backend = field(line, "backend")?.to_string();
            let workload = field(line, "workload")?.to_string();
            let mb_per_s = field(line, "mb_per_s")?.parse().ok()?;
            let threads = field(line, "threads").and_then(|t| t.parse().ok());
            Some(BenchRow { backend, workload, mb_per_s, threads })
        })
        .collect()
}

/// Parses every scalar `"name": <number>` line of a BENCH artifact —
/// the shape of the `ratios` sections — into `(name, value)` pairs.
/// Result-row lines carry several fields per line and never match.
pub fn parse_named_numbers(json: &str) -> Vec<(String, f64)> {
    json.lines()
        .filter_map(|line| {
            let line = line.trim().trim_end_matches(',');
            let rest = line.strip_prefix('"')?;
            let (name, value) = rest.split_once("\": ")?;
            if name.contains('"') || value.contains('"') || value.contains('{') {
                return None;
            }
            Some((name.to_string(), value.trim().parse().ok()?))
        })
        .collect()
}

/// Marker introducing the thread-scaling section — always the *last*
/// top-level key of `BENCH_store.json`, which keeps replacement a
/// truncate-and-append.
const THREAD_SCALING_MARKER: &str = ",\n  \"thread_scaling\":";

/// Splices `section` (the full `"thread_scaling": {…}` object body,
/// **without** a leading comma) into a `BENCH_store.json` document as
/// its last top-level key, replacing any previous thread-scaling
/// section, and returns the new document.
pub fn merge_thread_scaling(json: &str, section: &str) -> String {
    let trimmed = json.trim_end();
    let body = match trimmed.find(THREAD_SCALING_MARKER) {
        Some(at) => &trimmed[..at],
        None => trimmed.strip_suffix('}').expect("BENCH json ends with a closing brace").trim_end(),
    };
    format!("{body},\n  {section}\n}}\n")
}

/// The median of a ratio list (lower-middle for even counts); `None`
/// when empty. Used by the bench regression gate to factor out the
/// machine-speed constant between a committed baseline and a fresh
/// run.
pub fn median(values: &mut [f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Some(values[(values.len() - 1) / 2])
}

/// Flattens every numeric leaf of a JSON document into
/// `("dotted.path", value)` pairs: object keys join with `.`, array
/// elements use their index as the segment (`disks.2.reads`).
/// Non-numeric leaves (strings, booleans, nulls) are skipped, which is
/// exactly what the stat gate wants — it compares counters, not labels.
///
/// This is a tolerant single-pass scanner, not a validator: on
/// malformed input it returns whatever pairs it saw before losing the
/// plot. The gate treats a missing path as a failure anyway.
pub fn flatten_json_numbers(json: &str) -> Vec<(String, f64)> {
    struct Scan<'a> {
        bytes: &'a [u8],
        at: usize,
        out: Vec<(String, f64)>,
    }
    impl Scan<'_> {
        fn skip_ws(&mut self) {
            while self.at < self.bytes.len() && self.bytes[self.at].is_ascii_whitespace() {
                self.at += 1;
            }
        }
        fn peek(&mut self) -> Option<u8> {
            self.skip_ws();
            self.bytes.get(self.at).copied()
        }
        /// Consumes a string literal and returns its raw contents
        /// (escapes left as-is; stat paths never need them).
        fn string(&mut self) -> String {
            debug_assert_eq!(self.bytes[self.at], b'"');
            self.at += 1;
            let start = self.at;
            while self.at < self.bytes.len() {
                match self.bytes[self.at] {
                    b'\\' => self.at += 2,
                    b'"' => break,
                    _ => self.at += 1,
                }
            }
            let s = String::from_utf8_lossy(&self.bytes[start..self.at.min(self.bytes.len())])
                .into_owned();
            self.at += 1; // closing quote
            s
        }
        fn value(&mut self, path: &str) {
            match self.peek() {
                Some(b'{') => {
                    self.at += 1;
                    loop {
                        match self.peek() {
                            Some(b'}') => {
                                self.at += 1;
                                break;
                            }
                            Some(b'"') => {
                                let key = self.string();
                                if self.peek() == Some(b':') {
                                    self.at += 1;
                                }
                                let sub =
                                    if path.is_empty() { key } else { format!("{path}.{key}") };
                                self.value(&sub);
                                if self.peek() == Some(b',') {
                                    self.at += 1;
                                }
                            }
                            _ => break, // malformed — bail on this object
                        }
                    }
                }
                Some(b'[') => {
                    self.at += 1;
                    let mut idx = 0usize;
                    loop {
                        match self.peek() {
                            Some(b']') => {
                                self.at += 1;
                                break;
                            }
                            Some(_) => {
                                self.value(&format!("{path}.{idx}"));
                                idx += 1;
                                if self.peek() == Some(b',') {
                                    self.at += 1;
                                }
                            }
                            None => break,
                        }
                    }
                }
                Some(b'"') => {
                    self.string();
                }
                Some(c) if c == b'-' || c.is_ascii_digit() => {
                    let start = self.at;
                    while self.bytes.get(self.at).is_some_and(|b| {
                        b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                    }) {
                        self.at += 1;
                    }
                    if let Ok(v) = std::str::from_utf8(&self.bytes[start..self.at])
                        .unwrap_or("")
                        .parse::<f64>()
                    {
                        self.out.push((path.to_string(), v));
                    }
                }
                Some(_) => {
                    // true / false / null — skip the bareword.
                    while self.bytes.get(self.at).is_some_and(|b| b.is_ascii_alphabetic()) {
                        self.at += 1;
                    }
                }
                None => {}
            }
        }
    }
    let mut s = Scan { bytes: json.as_bytes(), at: 0, out: Vec::new() };
    s.value("");
    s.out
}

/// Looks up one dotted path in a flattened document.
pub fn json_number_at(pairs: &[(String, f64)], path: &str) -> Option<f64> {
    pairs.iter().find(|(n, _)| n == path).map(|(_, v)| *v)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "schema": "pdl-bench-store/v1",
  "results": [
    {"backend": "mem", "workload": "seq_read_vectored", "mb_per_s": 7624.791, "bytes": 56623104, "seconds": 0.007426},
    {"backend": "file", "workload": "rebuild", "mb_per_s": 36.612, "bytes": 8388608, "seconds": 0.229124}
  ],
  "ratios": {
    "file_seq_write_vectored_over_per_unit": 2.642
  }
}
"#;

    #[test]
    fn parses_result_rows() {
        let rows = parse_bench_rows(SAMPLE);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].backend, "mem");
        assert_eq!(rows[0].workload, "seq_read_vectored");
        assert!((rows[0].mb_per_s - 7624.791).abs() < 1e-9);
        assert_eq!(rows[0].threads, None);
        assert_eq!(rows[1].backend, "file");
    }

    #[test]
    fn parses_threaded_rows() {
        let rows = parse_bench_rows(
            r#"{"backend": "mem", "workload": "concurrent_read", "threads": 4, "mb_per_s": 19.5}"#,
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].threads, Some(4));
    }

    #[test]
    fn parses_named_numbers_from_ratio_sections() {
        let pairs = parse_named_numbers(SAMPLE);
        assert!(
            pairs
                .iter()
                .any(|(n, v)| n == "file_seq_write_vectored_over_per_unit"
                    && (v - 2.642).abs() < 1e-9)
        );
        // Result-row lines (several fields per line) never match.
        assert!(!pairs.iter().any(|(n, _)| n == "backend" || n == "mb_per_s"));
    }

    #[test]
    fn thread_scaling_merge_inserts_and_replaces() {
        let section = "\"thread_scaling\": {\n    \"x\": 1\n  }";
        let once = merge_thread_scaling(SAMPLE, section);
        assert!(once.contains("\"thread_scaling\""));
        assert!(once.trim_end().ends_with('}'), "document still closes");
        assert_eq!(parse_bench_rows(&once).len(), 2, "original rows survive");
        // Idempotent under replacement: merging a new section drops
        // the old one instead of stacking.
        let twice = merge_thread_scaling(&once, "\"thread_scaling\": {\n    \"x\": 2\n  }");
        assert_eq!(twice.matches("thread_scaling").count(), 1);
        assert!(twice.contains("\"x\": 2") && !twice.contains("\"x\": 1"));
    }

    #[test]
    fn flattens_numeric_leaves_with_dotted_paths() {
        let pairs = flatten_json_numbers(
            r#"{"schema":"pdl-bench-stats/v1","mem":{"degraded":{"one":{"ops":42,"wall_ns":1.5e3}},"disks":[{"reads":7},{"reads":9}],"live":true,"note":null}}"#,
        );
        assert_eq!(json_number_at(&pairs, "mem.degraded.one.ops"), Some(42.0));
        assert_eq!(json_number_at(&pairs, "mem.degraded.one.wall_ns"), Some(1500.0));
        assert_eq!(json_number_at(&pairs, "mem.disks.0.reads"), Some(7.0));
        assert_eq!(json_number_at(&pairs, "mem.disks.1.reads"), Some(9.0));
        // Strings, booleans, and nulls never produce entries.
        assert!(!pairs.iter().any(|(n, _)| n == "schema" || n == "mem.live" || n == "mem.note"));
        assert_eq!(json_number_at(&pairs, "mem.disks.2.reads"), None);
    }

    #[test]
    fn flatten_handles_pretty_printed_and_negative() {
        let pairs =
            flatten_json_numbers("{\n  \"a\": {\n    \"b\": -3\n  },\n  \"c\": [1, 2]\n}\n");
        assert_eq!(json_number_at(&pairs, "a.b"), Some(-3.0));
        assert_eq!(json_number_at(&pairs, "c.1"), Some(2.0));
    }

    #[test]
    fn median_picks_lower_middle() {
        assert_eq!(median(&mut []), None);
        assert_eq!(median(&mut [3.0]), Some(3.0));
        assert_eq!(median(&mut [4.0, 1.0, 3.0, 2.0]), Some(2.0));
        assert_eq!(median(&mut [4.0, 1.0, 3.0]), Some(3.0));
    }

    #[test]
    fn row_formats_fixed_width() {
        let r = row(&[&"a", &12, &3.5], &[3, 4, 6]);
        assert_eq!(r, "  a    12     3.5");
    }

    #[test]
    fn header_has_separator() {
        let h = header(&["x", "y"], &[2, 2]);
        let lines: Vec<&str> = h.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn bound_check_works() {
        assert_eq!(bound_check((0.5, 0.6), (0.4, 0.7)), "ok");
        assert_eq!(bound_check((0.5, 0.8), (0.4, 0.7)), "VIOLATED");
        assert_eq!(bound_check((0.5, 0.5), (0.5, 0.5)), "ok");
    }
}
