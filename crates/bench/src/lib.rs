//! # pdl-bench
//!
//! Experiment binaries and criterion benches that regenerate every
//! figure and table of the paper (see `DESIGN.md` §5 for the index and
//! `EXPERIMENTS.md` for recorded results). The library portion holds
//! shared table-formatting helpers used by the binaries.

#![warn(missing_docs)]

use std::fmt::Display;

/// Prints a fixed-width table row.
pub fn row(cells: &[&dyn Display], widths: &[usize]) -> String {
    let mut out = String::new();
    for (cell, w) in cells.iter().zip(widths) {
        out.push_str(&format!("{:>w$}  ", cell.to_string(), w = w));
    }
    out.trim_end().to_string()
}

/// Prints a header row followed by a separator line.
pub fn header(names: &[&str], widths: &[usize]) -> String {
    let cells: Vec<&dyn Display> = names.iter().map(|n| n as &dyn Display).collect();
    let line = row(&cells, widths);
    let sep = "-".repeat(line.len());
    format!("{line}\n{sep}")
}

/// Formats an `f64` to 4 decimal places (common in the metric tables).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Checks a measured value against inclusive bounds with tolerance,
/// returning "ok" or a deviation note (used in paper-vs-measured tables).
pub fn bound_check(measured: (f64, f64), expected: (f64, f64)) -> &'static str {
    let eps = 1e-9;
    if measured.0 >= expected.0 - eps && measured.1 <= expected.1 + eps {
        "ok"
    } else {
        "VIOLATED"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_formats_fixed_width() {
        let r = row(&[&"a", &12, &3.5], &[3, 4, 6]);
        assert_eq!(r, "  a    12     3.5");
    }

    #[test]
    fn header_has_separator() {
        let h = header(&["x", "y"], &[2, 2]);
        let lines: Vec<&str> = h.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn bound_check_works() {
        assert_eq!(bound_check((0.5, 0.6), (0.4, 0.7)), "ok");
        assert_eq!(bound_check((0.5, 0.8), (0.4, 0.7)), "VIOLATED");
        assert_eq!(bound_check((0.5, 0.5), (0.5, 0.5)), "ok");
    }
}
