//! Store throughput harness: measures the block store's hot paths in
//! MB/s on both backends and emits `BENCH_store.json`, the artifact
//! that tracks the perf trajectory PR over PR.
//!
//! Workloads per backend (mem, file):
//!
//! * `seq_read_vectored`   — `read_blocks` over the whole store in
//!   large spans (the coalesced scatter path);
//! * `seq_read_per_unit`   — the same bytes via a `read_block` loop
//!   against the **pre-vectorization baseline**: for the file
//!   backend this runs on a faithful emulation of the old
//!   `FileBackend` (one mutex-held seek + read syscall pair per
//!   unit), which is the path this PR replaced;
//! * `seq_write_vectored`  — `write_blocks` in large spans (full
//!   stripes, deferred plan, one gather call per disk run);
//! * `seq_write_per_unit`  — `write_blocks` one stripe per call on
//!   the baseline store: identical IO to the pre-vectorization
//!   full-stripe path (one seek + write pair per unit, zero reads);
//! * `random_read` / `random_small_write` — single-block ops
//!   (read path / RMW write path);
//! * `random_small_write_hot` / `random_small_write_cached` — the
//!   same small-write generator confined to a hot working set,
//!   uncached vs write-back (`CachePolicy::WriteBack`, flush
//!   included in the timing) — the pair behind the
//!   `*_cached_over_uncached` ratios the gate enforces;
//! * `mixed_70r30w` / `mixed_70r30w_cached` — 70% reads / 30%
//!   writes over the hot set, cache-off vs cache-on;
//! * `seq_read_checksum_on` / `seq_read_checksum_off` — the vectored
//!   sequential read path with per-unit checksum verification on vs
//!   off (hashing is the only difference); the
//!   `*_checksum_verify_on_over_off` ratio prices end-to-end
//!   integrity, and the gate floors it on the file backend (≥ 0.55:
//!   even on a page-cache-hot runner, where file reads approach
//!   memory speed and verification costs ~30%, the floor only trips
//!   on a real collapse — double hashing, per-unit locking); on mem
//!   the reads run at memcpy speed, so hashing legitimately halves
//!   throughput and the ratio is reported, not gated;
//! * `scrub_clean`         — one full foreground scrub pass over the
//!   healthy store (every live unit read and hashed, every stripe's
//!   parity equations checked): MB/s of *verified* capacity, the
//!   background-repair bandwidth budget;
//! * `scrub_paced_idle_baseline` / `scrub_paced_under_load` — the
//!   70/30 hot-set client mix alone vs with a load-aware *paced*
//!   scrub pass (`scrub_paced`, 10% load budget) racing it, passes
//!   interleaved; both workloads report **client** MB/s, and the
//!   `*_scrub_paced_client_retention` ratio (loaded / idle) is the
//!   pacing contract the gate floors at 0.85 — a continuously
//!   scrubbing store may cost clients at most ~15% of their
//!   throughput;
//! * `degraded_read`       — sequential `read_blocks` with one disk
//!   failed (stripe decode amortized per stripe);
//! * `rebuild`             — full rebuild of a failed disk onto a
//!   spare (MB/s of reconstructed data);
//! * `reshape_add_disk`    — online `add_disks` growing the healthy
//!   array by one disk: MB/s of *committed* capacity (scratch
//!   provisioning + migration + commit slide, single pass — a
//!   reshape is not repeatable on the same store — with no traffic
//!   racing it).
//!
//! Run `--smoke` for a CI-sized run, `--out <path>` to choose the
//! JSON destination (default `BENCH_store.json`), and
//! `--stats-out <path>` to also dump each backend's final
//! `StatsSnapshot` (`pdl-bench-stats/v1`) — the observability
//! baseline the gate's `--require-stat` checks diff against.
//!
//! The mem suite additionally times the 70/30 mixed loop with the
//! metrics registry enabled vs force-disabled
//! (`mixed_70r30w_metrics_on/off`); the `mem_metrics_on_over_off`
//! ratio is the registry's overhead gate (must stay ≥ 0.95, i.e.
//! ≤ 5% overhead on the suite's representative small-op mix).

use pdl_core::RingLayout;
use pdl_store::{
    Backend, BlockStore, CachePolicy, ContinuousScrubConfig, FileBackend, MemBackend, Rebuilder,
    ScrubConfig, StoreError,
};
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Stripe-unit size: one disk sector, the granularity the paper's
/// 1994-era arrays actually striped at. Small units are exactly where
/// the per-unit backend-call overhead (the thing the vectored engine
/// removes) dominates; at page-cache-friendly 4 KiB units the two
/// paths converge to within ~1.5× because raw memcpy becomes the
/// floor. `BENCH_store.json` records the unit size used.
const UNIT: usize = 512;
/// Blocks per vectored span — the transfer size of the batched calls.
const SPAN: usize = 2048;
/// Layout copies of the dedicated reshape store (fixed, both modes):
/// the v=9→10 stairway target has a ~9x larger period than the
/// source, so a reshape commits ~10x the source capacity — a small
/// fresh store per pass keeps the workload CI-sized and repeatable.
const RESHAPE_COPIES: usize = 64;

struct Config {
    smoke: bool,
    out: String,
    /// Where to write the per-backend `StatsSnapshot` dump, if asked.
    stats_out: Option<String>,
    /// Layout copies tiled per disk (sets the store size).
    copies: usize,
    /// Timed passes per workload (the best pass is reported).
    passes: usize,
}

#[derive(Clone, Debug)]
struct Sample {
    backend: &'static str,
    workload: &'static str,
    mb_per_s: f64,
    bytes: usize,
    seconds: f64,
}

fn main() {
    let mut smoke = false;
    let mut out = String::from("BENCH_store.json");
    let mut stats_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().expect("--out needs a path"),
            "--stats-out" => stats_out = Some(args.next().expect("--stats-out needs a path")),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_store_throughput [--smoke] [--out <path>] [--stats-out <path>]"
                );
                std::process::exit(2);
            }
        }
    }
    let cfg = Config {
        smoke,
        out,
        stats_out,
        copies: if smoke { 64 } else { 512 },
        // Best-of-5: the per-workload numbers feed a regression gate,
        // so a couple of extra passes buy a steadier minimum.
        passes: if smoke { 2 } else { 5 },
    };

    let layout = RingLayout::for_v_k(9, 4).layout().clone();
    let v = layout.v();
    let units_per_disk = cfg.copies * layout.size();

    let mut samples: Vec<Sample> = Vec::new();

    let reshape_units = RESHAPE_COPIES * layout.size();
    let mem_stats = {
        let base =
            BlockStore::new(layout.clone(), MemBackend::new(v + 1, units_per_disk, UNIT)).unwrap();
        let store =
            BlockStore::new(layout.clone(), MemBackend::new(v + 1, units_per_disk, UNIT)).unwrap();
        let fresh = || {
            BlockStore::new(layout.clone(), MemBackend::new(v + 1, reshape_units, UNIT)).unwrap()
        };
        run_suite("mem", base, store, &fresh, &cfg, &mut samples)
    };
    let file_stats = {
        let tmp = std::env::temp_dir();
        let base_dir = tmp.join(format!("pdl-bench-store-legacy-{}", std::process::id()));
        let dir = tmp.join(format!("pdl-bench-store-{}", std::process::id()));
        let rdir = tmp.join(format!("pdl-bench-store-reshape-{}", std::process::id()));
        let base = BlockStore::new(
            layout.clone(),
            LegacyFileBackend::create(&base_dir, v + 1, units_per_disk, UNIT).unwrap(),
        )
        .unwrap();
        let store = BlockStore::new(
            layout.clone(),
            FileBackend::create(&dir, v + 1, units_per_disk, UNIT).unwrap(),
        )
        .unwrap();
        // `FileBackend::create` truncates, so reusing one directory
        // gives each reshape pass a fresh store.
        let fresh = || {
            BlockStore::new(
                layout.clone(),
                FileBackend::create(&rdir, v + 1, reshape_units, UNIT).unwrap(),
            )
            .unwrap()
        };
        let stats = run_suite("file", base, store, &fresh, &cfg, &mut samples);
        let _ = std::fs::remove_dir_all(&base_dir);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&rdir);
        stats
    };

    let json = render_json(&cfg, &samples);
    std::fs::write(&cfg.out, &json).expect("write BENCH json");
    eprintln!("wrote {}", cfg.out);

    if let Some(path) = &cfg.stats_out {
        // Each suite's snapshot is already compact JSON; compose the
        // document by hand so the schema key comes first.
        let doc = format!(
            "{{\"schema\": \"pdl-bench-stats/v1\", \"smoke\": {}, \"mem\": {mem_stats}, \
             \"file\": {file_stats}}}\n",
            cfg.smoke
        );
        std::fs::write(path, doc).expect("write stats json");
        eprintln!("wrote {path}");
    }

    // Human-readable table on stdout.
    println!("{:<8} {:<22} {:>12} {:>14}", "backend", "workload", "MB/s", "bytes");
    for s in &samples {
        println!("{:<8} {:<22} {:>12.1} {:>14}", s.backend, s.workload, s.mb_per_s, s.bytes);
    }
    for (name, num, den) in ratios(&samples) {
        println!("{name}: {:.2}x", num / den);
    }
}

/// Times `f` over `passes` runs of `bytes` payload; returns the best.
fn timed(
    backend: &'static str,
    workload: &'static str,
    passes: usize,
    bytes: usize,
    mut f: impl FnMut(),
) -> Sample {
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    Sample { backend, workload, mb_per_s: bytes as f64 / best / 1e6, bytes, seconds: best }
}

/// Times two workloads whose throughputs feed a headline ratio by
/// **interleaving** their passes (A B A B …) instead of running each
/// to completion: slow drifts of the host — frequency scaling, a
/// noisy neighbor — then hit both sides of the ratio equally instead
/// of whichever workload ran second.
fn timed_pair(
    backend: &'static str,
    a: (&'static str, &mut dyn FnMut()),
    b: (&'static str, &mut dyn FnMut()),
    passes: usize,
    bytes: usize,
) -> (Sample, Sample) {
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..passes {
        let t = Instant::now();
        (a.1)();
        best_a = best_a.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        (b.1)();
        best_b = best_b.min(t.elapsed().as_secs_f64());
    }
    (
        Sample {
            backend,
            workload: a.0,
            mb_per_s: bytes as f64 / best_a / 1e6,
            bytes,
            seconds: best_a,
        },
        Sample {
            backend,
            workload: b.0,
            mb_per_s: bytes as f64 / best_b / 1e6,
            bytes,
            seconds: best_b,
        },
    )
}

/// Runs the full workload suite against `store` (with `base` as the
/// pre-vectorization baseline) and returns the store's final
/// [`pdl_store::StatsSnapshot`] as compact JSON — the observability
/// record of
/// everything the suite just did.
fn run_suite<A: Backend, B: Backend + 'static>(
    name: &'static str,
    base: BlockStore<A>,
    store: BlockStore<B>,
    fresh: &dyn Fn() -> BlockStore<B>,
    cfg: &Config,
    samples: &mut Vec<Sample>,
) -> String {
    let blocks = store.blocks();
    let bytes = blocks * UNIT;
    let k_data = 3; // ring v=9, k=4 XOR stripes carry k-1 = 3 data units
    let data: Vec<u8> = (0..bytes).map(|i| (i % 251) as u8).collect();
    let mut buf = vec![0u8; SPAN.min(blocks) * UNIT];

    // Sequential writes: one stripe per `write_blocks` call on the
    // baseline store vs full spans on the vectored store — passes
    // interleaved, so the headline ratio is drift-immune. Both sides
    // run the same engine; the batch size is the only variable, so
    // the ratio isolates what vectoring actually buys (per-call
    // planning amortized, one gather per disk run instead of one
    // backend call per unit — on the legacy file backend each unit
    // is still a mutex-held seek + write pair). The previous
    // hand-rolled per-unit loop skipped the engine's locking and
    // planning entirely, which let it beat the vectored path on a
    // memory-speed backend (~0.88 on 1-core hosts) — a baseline
    // artifact, not a regression.
    let (per_unit, vectored) = timed_pair(
        name,
        ("seq_write_per_unit", &mut || {
            let mut addr = 0;
            while addr < blocks {
                let n = k_data.min(blocks - addr);
                base.write_blocks(addr, &data[addr * UNIT..(addr + n) * UNIT]).unwrap();
                addr += n;
            }
        }),
        ("seq_write_vectored", &mut || {
            let mut addr = 0;
            while addr < blocks {
                let n = SPAN.min(blocks - addr);
                store.write_blocks(addr, &data[addr * UNIT..(addr + n) * UNIT]).unwrap();
                addr += n;
            }
        }),
        cfg.passes,
        bytes,
    );
    samples.push(per_unit);
    samples.push(vectored);

    // Sequential reads: the pre-vectorization per-unit loop (old
    // `read_blocks` looped `read_block`, one backend read per block)
    // on the baseline store vs the vectored path. The per-unit loop
    // delivers into an equal-sized span buffer, block by block at its
    // span position, so both sides pay the same destination memory
    // traffic (a single reused block buffer would stay L1-resident
    // and understate the per-unit cost).
    let mut buf2 = vec![0u8; SPAN.min(blocks) * UNIT];
    let (per_unit, vectored) = timed_pair(
        name,
        ("seq_read_per_unit", &mut || {
            let mut addr = 0;
            while addr < blocks {
                let n = SPAN.min(blocks - addr);
                for (j, chunk) in buf2[..n * UNIT].chunks_exact_mut(UNIT).enumerate() {
                    base.read_block(addr + j, chunk).unwrap();
                }
                addr += n;
            }
        }),
        ("seq_read_vectored", &mut || {
            let mut addr = 0;
            while addr < blocks {
                let n = SPAN.min(blocks - addr);
                store.read_blocks(addr, &mut buf[..n * UNIT]).unwrap();
                addr += n;
            }
        }),
        cfg.passes,
        bytes,
    );
    samples.push(per_unit);
    samples.push(vectored);

    // Random single-block paths.
    let rand_ops = (blocks / 4).max(1);
    samples.push(timed(name, "random_read", cfg.passes, rand_ops * UNIT, || {
        let one = &mut buf[..UNIT];
        for i in 0..rand_ops {
            let addr = i.wrapping_mul(2654435761) % blocks;
            store.read_block(addr, one).unwrap();
        }
    }));

    let block = vec![0xcdu8; UNIT];
    samples.push(timed(name, "random_small_write", cfg.passes, rand_ops * UNIT, || {
        for i in 0..rand_ops {
            let addr = i.wrapping_mul(2654435761) % blocks;
            store.write_block(addr, &block).unwrap();
        }
    }));

    // Hot-region small writes, cache-off vs cache-on side by side:
    // the classic OLTP shape — repeated sub-stripe writes within a
    // working set. Uncached pays one full RMW per write; write-back
    // combines every write a stripe absorbs into one parity update.
    // The cached pass times the flush too (cost-to-durable, not
    // cost-to-cache), and the budget is sized to the working set so
    // combining — not eviction churn — dominates.
    let hot = (blocks / 16).max(k_data * 4);
    let (uncached, cached) = timed_pair(
        name,
        ("random_small_write_hot", &mut || {
            for i in 0..rand_ops {
                let addr = i.wrapping_mul(2654435761) % hot;
                store.write_block(addr, &block).unwrap();
            }
        }),
        ("random_small_write_cached", &mut || {
            store.set_cache_policy(CachePolicy::WriteBack { max_dirty: hot }).unwrap();
            for i in 0..rand_ops {
                let addr = i.wrapping_mul(2654435761) % hot;
                store.write_block(addr, &block).unwrap();
            }
            store.flush().unwrap();
            store.set_cache_policy(CachePolicy::WriteThrough).unwrap();
        }),
        cfg.passes,
        rand_ops * UNIT,
    );
    samples.push(uncached);
    samples.push(cached);

    // 70% reads / 30% writes over the same hot region (op mix chosen
    // per op by hash, identical address stream in both variants).
    let mixed = |s: &BlockStore<B>, one: &mut [u8]| {
        for i in 0..rand_ops {
            let h = i.wrapping_mul(2654435761);
            let addr = h % hot;
            if h % 10 < 7 {
                s.read_block(addr, one).unwrap();
            } else {
                s.write_block(addr, &block).unwrap();
            }
        }
    };
    let mut one = vec![0u8; UNIT];
    let mut one_cached = vec![0u8; UNIT];
    let (uncached, cached) = timed_pair(
        name,
        ("mixed_70r30w", &mut || mixed(&store, &mut one)),
        ("mixed_70r30w_cached", &mut || {
            store.set_cache_policy(CachePolicy::WriteBack { max_dirty: hot }).unwrap();
            mixed(&store, &mut one_cached);
            store.flush().unwrap();
            store.set_cache_policy(CachePolicy::WriteThrough).unwrap();
        }),
        cfg.passes,
        rand_ops * UNIT,
    );
    samples.push(uncached);
    samples.push(cached);

    // Registry-overhead pair (mem only — the in-memory backend is
    // where per-op bookkeeping could actually show): the identical
    // 70/30 mixed loop with metrics recording on vs force-disabled,
    // interleaved so host drift cancels. `mem_metrics_on_over_off`
    // is the ≤5%-overhead acceptance gate; the mixed loop is the
    // gate workload because it is the suite's representative
    // small-op mix — the pure cached random-read loop, at well under
    // 100 ns/op against warm RAM, would measure the registry against
    // an op an order of magnitude cheaper than anything a real
    // storage backend serves.
    if name == "mem" {
        let mut one_on = vec![0u8; UNIT];
        let mut one_off = vec![0u8; UNIT];
        let (on, off) = timed_pair(
            name,
            ("mixed_70r30w_metrics_on", &mut || {
                store.metrics().set_enabled(true);
                mixed(&store, &mut one_on);
            }),
            ("mixed_70r30w_metrics_off", &mut || {
                store.metrics().set_enabled(false);
                mixed(&store, &mut one_off);
            }),
            cfg.passes,
            rand_ops * UNIT,
        );
        store.metrics().set_enabled(true);
        samples.push(on);
        samples.push(off);
    }

    // Checksum verification priced on the sequential vectored read
    // path: identical reads, hashing on vs off, interleaved so host
    // drift cancels. Every unit was written with verification on, so
    // the "on" side hashes and compares every byte it returns.
    let mut buf3 = vec![0u8; SPAN.min(blocks) * UNIT];
    let seq_read = |dst: &mut [u8]| {
        let mut addr = 0;
        while addr < blocks {
            let n = SPAN.min(blocks - addr);
            store.read_blocks(addr, &mut dst[..n * UNIT]).unwrap();
            addr += n;
        }
    };
    let (on, off) = timed_pair(
        name,
        ("seq_read_checksum_on", &mut || seq_read(&mut buf)),
        ("seq_read_checksum_off", &mut || {
            store.set_checksums_enabled(false);
            seq_read(&mut buf3);
            store.set_checksums_enabled(true);
        }),
        cfg.passes,
        bytes,
    );
    samples.push(on);
    samples.push(off);

    // One full scrub pass over the (clean, healthy) store: reads and
    // hashes every live unit and checks every stripe's parity
    // equations. The payload is the verified capacity — all v disks'
    // units, parity included — not just the data blocks.
    let scrub_bytes = store.v() * store.backend().units_per_disk() * UNIT;
    samples.push(timed(name, "scrub_clean", cfg.passes, scrub_bytes, || {
        let report = store.scrub(&ScrubConfig::default()).unwrap();
        assert_eq!(
            (report.checksum_repairs, report.parity_repairs),
            (0, 0),
            "the bench store must scrub clean"
        );
    }));

    // The pacing contract, measured from the client's seat: the same
    // 70/30 hot-set mix runs alone (idle baseline) and then with a
    // load-aware paced scrub pass racing it on another thread,
    // interleaved pass by pass so host drift hits both legs. Both
    // samples report *client* MB/s; the scrub's own progress is
    // bounded by its 10% load budget, so the retention ratio
    // (loaded / idle) is what continuous background scrubbing costs
    // the foreground — the gate floors it at 0.85. The loaded leg
    // keeps the clients running until the scrub pass completes, so
    // the measurement window covers the whole paced pass, not a
    // lucky idle stretch.
    let paced_cfg = ContinuousScrubConfig { load_budget: 0.10, ..ContinuousScrubConfig::default() };
    let mut one_paced = vec![0u8; UNIT];
    let mut best_idle = f64::INFINITY;
    let (mut best_loaded, mut best_loaded_bytes, mut best_loaded_secs) = (0.0f64, 0usize, 0.0f64);
    for _ in 0..cfg.passes {
        let t = Instant::now();
        mixed(&store, &mut one_paced);
        best_idle = best_idle.min(t.elapsed().as_secs_f64());

        // `go` gates the scrub behind the first (untimed, warm-up)
        // client chunk: the scrub must race *running* traffic — on a
        // single-core host the spawned scrubber can otherwise burn
        // through the whole pass before the client loop is even
        // scheduled, and the "loaded" leg measures nothing.
        let go = AtomicBool::new(false);
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            let (go, done) = (&go, &done);
            let store = &store;
            let paced_cfg = &paced_cfg;
            s.spawn(move || {
                while !go.load(Ordering::Acquire) {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                let report = store.scrub_paced(paced_cfg).unwrap();
                assert_eq!(
                    (report.checksum_repairs, report.parity_repairs),
                    (0, 0),
                    "the bench store must scrub clean under pacing"
                );
                done.store(true, Ordering::Release);
            });
            mixed(store, &mut one_paced);
            go.store(true, Ordering::Release);
            let t = Instant::now();
            let mut chunks = 0usize;
            loop {
                mixed(store, &mut one_paced);
                chunks += 1;
                if done.load(Ordering::Acquire) {
                    break;
                }
            }
            let secs = t.elapsed().as_secs_f64();
            let bytes = chunks * rand_ops * UNIT;
            let mb_per_s = bytes as f64 / secs / 1e6;
            if mb_per_s > best_loaded {
                (best_loaded, best_loaded_bytes, best_loaded_secs) = (mb_per_s, bytes, secs);
            }
        });
    }
    samples.push(Sample {
        backend: name,
        workload: "scrub_paced_idle_baseline",
        mb_per_s: rand_ops as f64 * UNIT as f64 / best_idle / 1e6,
        bytes: rand_ops * UNIT,
        seconds: best_idle,
    });
    samples.push(Sample {
        backend: name,
        workload: "scrub_paced_under_load",
        mb_per_s: best_loaded,
        bytes: best_loaded_bytes,
        seconds: best_loaded_secs,
    });

    // Degraded sequential read (one disk down, decode per stripe).
    store.fail_disk(0).unwrap();
    samples.push(timed(name, "degraded_read", cfg.passes, bytes, || {
        let mut addr = 0;
        while addr < blocks {
            let n = SPAN.min(blocks - addr);
            store.read_blocks(addr, &mut buf[..n * UNIT]).unwrap();
            addr += n;
        }
    }));

    // Rebuild the failed disk onto the spare, best of `passes` like
    // every other workload: each rebuild frees the physical disk the
    // logical disk vacated, which serves as the next pass's spare, so
    // the measurement repeats without extra backend disks.
    let rebuilt_bytes = store.backend().units_per_disk() * UNIT;
    let mut spare = store.v();
    let mut freed = store.physical_disk(0);
    let mut best = f64::INFINITY;
    for pass in 0..cfg.passes {
        if pass > 0 {
            store.fail_disk(0).unwrap();
        }
        let t = Instant::now();
        let report = Rebuilder::default().rebuild(&store, spare).unwrap();
        best = best.min(t.elapsed().as_secs_f64());
        assert_eq!(report.read_imbalance(), 0.0, "declustered rebuild stays balanced");
        std::mem::swap(&mut spare, &mut freed);
    }
    samples.push(Sample {
        backend: name,
        workload: "rebuild",
        mb_per_s: rebuilt_bytes as f64 / best / 1e6,
        bytes: rebuilt_bytes,
        seconds: best,
    });

    // Online reshape: grow a healthy array by one disk, begin +
    // migration + commit end to end with no racing traffic. A
    // reshape permanently changes a store's geometry, so each pass
    // reshapes a *fresh* dedicated store (fixed `RESHAPE_COPIES`
    // size) and the best pass is reported like every other workload.
    // The payload is the *committed* capacity — the v=9→10 stairway
    // target's period is ~9x the source's, so the add provisions
    // (and zero-initializes) roughly 10x the source capacity and
    // migrates the source data into it; provisioned bytes, not
    // source bytes, are what a second of reshape buys.
    let mut best = f64::INFINITY;
    let mut reshape_bytes = 0usize;
    for _ in 0..cfg.passes {
        let s = fresh();
        let spare = s.v();
        let t = Instant::now();
        let report = s.add_disks(&[spare]).unwrap();
        best = best.min(t.elapsed().as_secs_f64());
        reshape_bytes = report.capacity_after * UNIT;
    }
    samples.push(Sample {
        backend: name,
        workload: "reshape_add_disk",
        mb_per_s: reshape_bytes as f64 / best / 1e6,
        bytes: reshape_bytes,
        seconds: best,
    });

    // Async-engine leg, last in the suite: the same sequential
    // vectored read and write workloads with the I/O engine running,
    // so every span goes through the per-disk submission queues. On
    // these latency-free backends the engine mostly prices its own
    // queue overhead (the latency-overlap win lives in
    // `bench_store_concurrent`'s emulated-device curve); what this
    // leg pins is the *accounting*: the final stats snapshot is taken
    // while the engine is live, so the `engine` section — per-disk
    // queue gauges, submitted/completed counts, queue-wait
    // histograms — lands in the stats artifact, and its submission
    // counts are layout-deterministic for CI's --require-stat checks.
    store.start_engine(pdl_store::EngineConfig::default());
    samples.push(timed(name, "seq_read_engine", cfg.passes, bytes, || {
        let mut addr = 0;
        while addr < blocks {
            let n = SPAN.min(blocks - addr);
            store.read_blocks(addr, &mut buf[..n * UNIT]).unwrap();
            addr += n;
        }
    }));
    samples.push(timed(name, "seq_write_engine", cfg.passes, bytes, || {
        let mut addr = 0;
        while addr < blocks {
            let n = SPAN.min(blocks - addr);
            store.write_blocks(addr, &data[addr * UNIT..(addr + n) * UNIT]).unwrap();
            addr += n;
        }
    }));
    let stats = store.stats().to_json();
    store.stop_engine();
    stats
}

/// The headline speedups: vectored over per-unit, per backend.
fn ratios(samples: &[Sample]) -> Vec<(String, f64, f64)> {
    let get = |b: &str, w: &str| {
        samples
            .iter()
            .find(|s| s.backend == b && s.workload == w)
            .map(|s| s.mb_per_s)
            .unwrap_or(f64::NAN)
    };
    let mut out = Vec::new();
    for b in ["mem", "file"] {
        out.push((
            format!("{b}_seq_read_vectored_over_per_unit"),
            get(b, "seq_read_vectored"),
            get(b, "seq_read_per_unit"),
        ));
        out.push((
            format!("{b}_seq_write_vectored_over_per_unit"),
            get(b, "seq_write_vectored"),
            get(b, "seq_write_per_unit"),
        ));
        out.push((
            format!("{b}_random_small_write_cached_over_uncached"),
            get(b, "random_small_write_cached"),
            get(b, "random_small_write_hot"),
        ));
        out.push((
            format!("{b}_mixed_70r30w_cached_over_uncached"),
            get(b, "mixed_70r30w_cached"),
            get(b, "mixed_70r30w"),
        ));
        out.push((
            format!("{b}_checksum_verify_on_over_off"),
            get(b, "seq_read_checksum_on"),
            get(b, "seq_read_checksum_off"),
        ));
        // What a paced background scrub costs the foreground: client
        // MB/s with the scrub racing over client MB/s alone. The gate
        // floors this at 0.85 (the ≤15% pacing contract).
        out.push((
            format!("{b}_scrub_paced_client_retention"),
            get(b, "scrub_paced_under_load"),
            get(b, "scrub_paced_idle_baseline"),
        ));
        // Engine overhead on a latency-free backend (reported, not
        // gated: the engine's win needs device latency to overlap —
        // see the thread_scaling section's async ratios).
        out.push((
            format!("{b}_seq_read_engine_over_vectored"),
            get(b, "seq_read_engine"),
            get(b, "seq_read_vectored"),
        ));
    }
    // The registry-overhead gate: ≥ 0.95 means metrics cost ≤ 5% on
    // the hottest single-block path.
    out.push((
        "mem_metrics_on_over_off".to_string(),
        get("mem", "mixed_70r30w_metrics_on"),
        get("mem", "mixed_70r30w_metrics_off"),
    ));
    out
}

fn render_json(cfg: &Config, samples: &[Sample]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"pdl-bench-store/v1\",");
    let _ = writeln!(s, "  \"smoke\": {},", cfg.smoke);
    let _ = writeln!(s, "  \"unit_size\": {UNIT},");
    let _ = writeln!(s, "  \"span_blocks\": {SPAN},");
    let _ = writeln!(s, "  \"layout\": \"ring_v9_k4\",");
    let _ = writeln!(s, "  \"copies\": {},", cfg.copies);
    s.push_str("  \"results\": [\n");
    for (i, r) in samples.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"backend\": \"{}\", \"workload\": \"{}\", \"mb_per_s\": {:.3}, \
             \"bytes\": {}, \"seconds\": {:.6}}}",
            r.backend, r.workload, r.mb_per_s, r.bytes, r.seconds
        );
        s.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"ratios\": {\n");
    let rs = ratios(samples);
    for (i, (name, num, den)) in rs.iter().enumerate() {
        let _ = write!(s, "    \"{name}\": {:.3}", num / den);
        s.push_str(if i + 1 < rs.len() { ",\n" } else { "\n" });
    }
    s.push_str("  }\n}\n");
    s
}

/// Faithful emulation of the pre-vectorization `FileBackend`: one
/// mutex-held seek + read/write syscall pair per unit, no positional
/// IO, no coalescing (the `Backend` vectored defaults degrade to this
/// per-unit loop). This is the "pre-PR per-unit path" every speedup
/// ratio in `BENCH_store.json` is measured against.
struct LegacyFileBackend {
    unit_size: usize,
    units: usize,
    files: Vec<Mutex<File>>,
}

impl LegacyFileBackend {
    fn create(
        dir: &Path,
        disks: usize,
        units_per_disk: usize,
        unit_size: usize,
    ) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)?;
        let mut files = Vec::with_capacity(disks);
        for d in 0..disks {
            let f = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(dir.join(format!("disk-{d:04}.bin")))?;
            f.set_len((units_per_disk * unit_size) as u64)?;
            files.push(Mutex::new(f));
        }
        Ok(LegacyFileBackend { unit_size, units: units_per_disk, files })
    }
}

impl Backend for LegacyFileBackend {
    fn disks(&self) -> usize {
        self.files.len()
    }

    fn units_per_disk(&self) -> usize {
        self.units
    }

    fn unit_size(&self) -> usize {
        self.unit_size
    }

    fn read_unit(&self, disk: usize, offset: usize, buf: &mut [u8]) -> Result<(), StoreError> {
        let mut f = self.files[disk].lock().unwrap();
        f.seek(SeekFrom::Start((offset * self.unit_size) as u64))?;
        f.read_exact(buf)?;
        Ok(())
    }

    fn write_unit(&self, disk: usize, offset: usize, buf: &[u8]) -> Result<(), StoreError> {
        let mut f = self.files[disk].lock().unwrap();
        f.seek(SeekFrom::Start((offset * self.unit_size) as u64))?;
        f.write_all(buf)?;
        Ok(())
    }

    fn flush(&self) -> Result<(), StoreError> {
        for f in &self.files {
            f.lock().unwrap().sync_data()?;
        }
        Ok(())
    }

    fn read_count(&self, _disk: usize) -> u64 {
        0
    }

    fn write_count(&self, _disk: usize) -> u64 {
        0
    }

    fn reset_counters(&self) {}

    fn wipe_disk(&self, disk: usize) -> Result<(), StoreError> {
        let zeros = vec![0u8; self.unit_size];
        let mut f = self.files[disk].lock().unwrap();
        f.seek(SeekFrom::Start(0))?;
        for _ in 0..self.units {
            f.write_all(&zeros)?;
        }
        Ok(())
    }
}
