//! E12 — Fig. 6 / Theorem 12: the stairway transformation with wide
//! steps (w > 0). Overhead lands in 1/k + (1/k)·[(w−1), w]/((c−1)(q−1));
//! reconstruction workload keeps the Theorem 11 bounds.

use pdl_bench::{bound_check, f4, header, row};
use pdl_core::{stairway_layout, QualityReport, StairwayParams};
use pdl_design::RingDesign;

fn main() {
    println!("E12 / Fig 6 + Theorem 12: stairway with wide steps\n");
    let widths = [4, 4, 4, 4, 4, 8, 18, 18, 8];
    println!(
        "{}",
        header(
            &["q", "k", "v", "c", "w", "size", "overhead[min,max]", "paper bounds", "check"],
            &widths
        )
    );
    for (q, k, v) in [
        (9usize, 4usize, 13usize),
        (11, 5, 14),
        (13, 4, 16),
        (16, 6, 21),
        (17, 5, 22),
        (19, 4, 23),
        (23, 6, 30),
        (25, 5, 33),
    ] {
        let p = StairwayParams::solve(q, v).unwrap();
        assert!(p.w > 0, "case must have wide steps (q={q}, v={v})");
        let design = RingDesign::for_v_k(q, k);
        let l = stairway_layout(&design, v).unwrap();
        assert_eq!(l.size(), p.size(k));
        let m = QualityReport::measure(&l);
        let (olo, ohi) = p.parity_overhead_bounds(k);
        let (wlo, whi) = p.reconstruction_workload_bounds(k);
        let ok_o = bound_check(m.parity_overhead, (olo, ohi));
        let ok_w = bound_check(m.reconstruction_workload, (wlo, whi));
        assert_eq!(ok_o, "ok", "q={q} v={v} overhead {:?} vs [{olo},{ohi}]", m.parity_overhead);
        assert_eq!(ok_w, "ok", "q={q} v={v}");
        println!(
            "{}",
            row(
                &[
                    &q,
                    &k,
                    &v,
                    &p.c,
                    &p.w,
                    &l.size(),
                    &format!("[{},{}]", f4(m.parity_overhead.0), f4(m.parity_overhead.1)),
                    &format!("[{},{}]", f4(olo), f4(ohi)),
                    &"ok",
                ],
                &widths
            )
        );
    }
    println!("\npaper: wide steps cost a parity imbalance of at most");
    println!("(1/k)·w/((c-1)(q-1)) — vanishing as layouts grow — confirmed.");
}
