//! E9 — Theorems 8 & 9: removing disks from ring-based layouts.
//! One removal keeps both balances perfect (overhead rises to
//! (1/k)·v/(v−1)); removing i ≤ √k disks bounds overhead within
//! [(v+i−1), (v+i)]/(k(v−1)) while reconstruction stays (k−1)/(v−1).

use pdl_bench::{bound_check, f4, header, row};
use pdl_core::{max_safe_removals, QualityReport, RingLayout};

fn main() {
    println!("E9 / Theorems 8 & 9: disk removal from ring-based layouts\n");
    let widths = [4, 4, 4, 6, 12, 12, 12, 10];
    println!("{}", header(&["v", "k", "i", "v-i", "overhead", "bound", "recon", "check"], &widths));
    for (v, k) in [(8usize, 4usize), (9, 4), (11, 5), (13, 6), (16, 9), (17, 9)] {
        let rl = RingLayout::for_v_k(v, k);
        let imax = max_safe_removals(k);
        for i in 0..=imax {
            let removed: Vec<usize> = (0..i).collect();
            let l = rl.remove_disks(&removed).unwrap_or_else(|e| panic!("v={v} k={k} i={i}: {e}"));
            let q = QualityReport::measure(&l);
            let denom = k as f64 * (v as f64 - 1.0);
            let (olo, ohi) = if i == 0 {
                (1.0 / k as f64, 1.0 / k as f64)
            } else {
                ((v + i - 1) as f64 / denom, (v + i) as f64 / denom)
            };
            let recon = (k as f64 - 1.0) / (v as f64 - 1.0);
            let ok_o = bound_check(q.parity_overhead, (olo, ohi));
            let ok_r = bound_check(q.reconstruction_workload, (recon, recon));
            assert_eq!(ok_o, "ok", "v={v} k={k} i={i}");
            assert_eq!(ok_r, "ok", "v={v} k={k} i={i}");
            println!(
                "{}",
                row(
                    &[
                        &v,
                        &k,
                        &i,
                        &(v - i),
                        &format!("[{},{}]", f4(q.parity_overhead.0), f4(q.parity_overhead.1)),
                        &format!("[{},{}]", f4(olo), f4(ohi)),
                        &f4(q.reconstruction_workload.1),
                        &"ok",
                    ],
                    &widths
                )
            );
        }
    }
    println!("\npaper: Theorem 8/9 overhead and workload bounds — confirmed.");
}
