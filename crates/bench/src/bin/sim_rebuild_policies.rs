//! E19 — reconstruction scheduling policies and the window of
//! vulnerability: stripe-oriented vs disk-oriented rebuild (Holland,
//! Gibson & Siewiorek's two algorithms), and the data lost if a second
//! disk fails mid-rebuild — RAID5 vs declustered.

use pdl_bench::{f4, header, row};
use pdl_core::{raid5_layout, Layout, RingLayout};
use pdl_sim::{
    simulate, worst_second_failure, RebuildPolicy, RebuildTarget, SimConfig, StopCondition,
    Workload,
};

fn rebuild(layout: &Layout, policy: RebuildPolicy, arrivals: f64) -> pdl_sim::SimResult {
    let cfg = SimConfig {
        seed: 77,
        failed_disk: Some(0),
        rebuild: Some(RebuildTarget::DedicatedSpare),
        rebuild_policy: policy,
        workload: Workload { arrivals_per_sec: arrivals, ..Default::default() },
        stop: StopCondition::RebuildComplete,
        ..Default::default()
    };
    simulate(layout, cfg)
}

fn main() {
    println!("E19: rebuild scheduling policies and double-failure exposure\n");
    let rl = RingLayout::for_v_k(9, 3);

    println!("(a) policy comparison, ring v=9 k=3, idle vs 40 req/s:");
    let widths = [22, 10, 12, 12];
    println!("{}", header(&["policy", "load", "rebuild(s)", "fg resp(ms)"], &widths));
    let policies = [
        ("stripe, par=1", RebuildPolicy::StripeOriented { parallelism: 1 }),
        ("stripe, par=4", RebuildPolicy::StripeOriented { parallelism: 4 }),
        ("stripe, par=16", RebuildPolicy::StripeOriented { parallelism: 16 }),
        ("disk, depth=1", RebuildPolicy::DiskOriented { depth: 1 }),
        ("disk, depth=3", RebuildPolicy::DiskOriented { depth: 3 }),
    ];
    let mut times = Vec::new();
    for arrivals in [0.0f64, 40.0] {
        for (name, p) in policies {
            let r = rebuild(rl.layout(), p, arrivals);
            let secs = r.rebuild_finished_at.unwrap() as f64 / 1e6;
            if arrivals == 0.0 {
                times.push((name, secs));
            }
            println!(
                "{}",
                row(&[&name, &arrivals, &f4(secs), &f4(r.mean_response_us / 1e3)], &widths)
            );
        }
    }
    let narrow = times.iter().find(|(n, _)| *n == "stripe, par=1").unwrap().1;
    let disk = times.iter().find(|(n, _)| *n == "disk, depth=3").unwrap().1;
    assert!(disk < narrow, "disk-oriented must beat single-stripe rebuild");

    println!("\n(b) second failure at fraction f of the first rebuild window:");
    let raid5 = raid5_layout(9, rl.layout().size());
    let widths = [14, 10, 10, 10, 10, 10];
    println!("{}", header(&["layout", "f=0", "f=0.25", "f=0.5", "f=0.75", "f=1.0"], &widths));
    for (name, layout) in [("ring k=3", rl.layout()), ("RAID5", &raid5)] {
        let r = rebuild(layout, RebuildPolicy::StripeOriented { parallelism: 4 }, 0.0);
        let t_end = r.rebuild_finished_at.unwrap();
        let mut cells: Vec<String> = vec![name.to_string()];
        let mut last = usize::MAX;
        for step in 0..=4u64 {
            let loss = worst_second_failure(layout, 0, t_end * step / 4, &r);
            cells.push(format!("{}/{}", loss.lost, loss.at_risk));
            last = loss.lost;
        }
        assert_eq!(last, 0, "after rebuild completes nothing is lost");
        let refs: Vec<&dyn std::fmt::Display> =
            cells.iter().map(|c| c as &dyn std::fmt::Display).collect();
        println!("{}", row(&refs, &widths));
    }
    println!("\nshape: declustering exposes only λ = k(k-1) stripes per disk pair");
    println!("(6 of 216 here) vs ALL stripes for RAID5, and the faster rebuild");
    println!("closes the window sooner — both effects confirmed.");

    println!("\n(c) disk scheduling under a linear seek model (80 req/s):");
    use pdl_sim::{DiskModel, Scheduling, SeekModel};
    let widths = [10, 12, 12];
    println!("{}", header(&["sched", "resp(ms)", "p95(ms)"], &widths));
    let mut means = Vec::new();
    for (name, sched) in [("FIFO", Scheduling::Fifo), ("SSTF", Scheduling::Sstf)] {
        let cfg = SimConfig {
            seed: 31,
            disk: DiskModel {
                positioning_us: (2_000, 4_000),
                transfer_us: 2_000,
                seek: SeekModel::Linear { max_seek_us: 20_000 },
            },
            scheduling: sched,
            workload: Workload { arrivals_per_sec: 80.0, ..Default::default() },
            stop: StopCondition::Duration(30_000_000),
            ..Default::default()
        };
        let r = simulate(rl.layout(), cfg);
        means.push(r.mean_response_us);
        println!(
            "{}",
            row(
                &[&name, &f4(r.mean_response_us / 1e3), &f4(r.p95_response_us as f64 / 1e3)],
                &widths
            )
        );
    }
    assert!(means[1] < means[0], "SSTF must reduce mean response under seeks");
}
