//! E14 — Fig. 7 / Theorems 13–14: the parity assignment graph and its
//! integral max flow. On any stripe partition — uniform or ragged —
//! every disk receives ⌊L(d)⌋ or ⌈L(d)⌉ parity units.

use pdl_bench::{header, row};
use pdl_core::{parity_counts, single_copy_layout, QualityReport, RingLayout, StripePartition};
use pdl_design::{complete_design, theorem4_design, theorem6_design};

fn main() {
    println!("E14 / Fig 7 + Theorems 13-14: flow-based parity assignment\n");
    let widths = [26, 5, 7, 10, 10, 8];
    println!("{}", header(&["layout", "v", "b", "parity/disk", "⌊L⌋/⌈L⌉", "check"], &widths));

    let check = |name: &str, part: StripePartition| {
        let counts_one = vec![1usize; part.stripes().len()];
        let loads = part.loads(&counts_one);
        let l = part.assign_parity().expect("Theorem 13: flow of value b exists");
        let counts = parity_counts(&l);
        for (d, &c) in counts.iter().enumerate() {
            let lo = loads[d].floor() as usize;
            let hi = loads[d].ceil() as usize;
            assert!(c >= lo && c <= hi, "{name}: disk {d} has {c} ∉ [{lo},{hi}]");
        }
        let (cmin, cmax) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        let q = QualityReport::measure(&l);
        println!(
            "{}",
            row(
                &[
                    &name,
                    &l.v(),
                    &l.b(),
                    &format!("[{cmin},{cmax}]"),
                    &format!("Δ≤1: {}", q.parity_nearly_balanced()),
                    &"ok",
                ],
                &widths
            )
        );
    };

    check(
        "complete v=6,k=3 (1 copy)",
        StripePartition::from_layout(&single_copy_layout(&complete_design(6, 3, 1000), 0)),
    );
    check(
        "thm4 v=13,k=4 (1 copy)",
        StripePartition::from_layout(&single_copy_layout(&theorem4_design(13, 4).design, 0)),
    );
    check(
        "thm6 v=16,k=4 (1 copy)",
        StripePartition::from_layout(&single_copy_layout(&theorem6_design(16, 4).design, 0)),
    );
    check(
        "thm6 v=27,k=3 (1 copy)",
        StripePartition::from_layout(&single_copy_layout(&theorem6_design(27, 3).design, 0)),
    );
    // Ragged stripe sizes: Theorem 8 removal, then rebalance.
    let removed = RingLayout::for_v_k(9, 4).remove_disk(4);
    check("ring v=9,k=4 minus disk 4", StripePartition::from_layout(&removed));
    let removed2 = RingLayout::for_v_k(13, 5).remove_disks(&[1, 7]).unwrap();
    check("ring v=13,k=5 minus 2", StripePartition::from_layout(&removed2));

    println!("\npaper: integral max flow of value b exists and yields per-disk");
    println!("parity counts in {{⌊L(d)⌋, ⌈L(d)⌉}} for ALL partitions — confirmed.");
}
