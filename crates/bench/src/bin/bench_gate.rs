//! Bench regression gate: compares a freshly produced
//! `BENCH_store.json` against the committed baseline and exits
//! nonzero when any single-thread workload regressed by more than
//! the tolerance.
//!
//! CI runners and the machines that produced the committed baseline
//! differ wildly in absolute MB/s, so a raw comparison would gate on
//! hardware, not code. The default mode therefore **normalizes**: it
//! computes `current / baseline` per workload, takes the median ratio
//! as the machine-speed constant, and flags workloads whose ratio
//! falls more than the tolerance below that median — i.e. paths that
//! got slower *relative to the rest of the store* on the same pair of
//! runs. A uniform slowdown moves the median, not the spread, so a
//! genuinely global regression should be caught where it is
//! introduced: run with `--raw` on one machine (same host for both
//! files) to compare absolute numbers.
//!
//! Beyond the relative regression check, `--require-ratio name:min`
//! (repeatable) gates **within-run** ratios of the current artifact —
//! e.g. `mem_seq_read_vectored_over_per_unit:0.9` demands the
//! vectored read path stay at least 0.9× the per-unit path, and
//! `file_random_small_write_cached_over_uncached:2.0` demands the
//! write-back cache keep its 2× small-write win. Within-run ratios
//! compare two measurements from the same process on the same
//! machine, so they need no normalization.
//!
//! Observability stats are gated separately: `--stat-baseline` /
//! `--stat-current` point at the `pdl-bench-stats/v1` dumps the
//! throughput bench writes with `--stats-out`, and each
//! `--require-stat dotted.path` (repeatable, e.g.
//! `mem.degraded.one.ops`) demands the current value stay within the
//! tolerance band of the committed baseline value — a drift check on
//! the *I/O accounting itself*: the bench workload is fixed, so a
//! degraded-window op count moving more than ±25% means the
//! instrumentation (or the degraded path's shape) changed, not the
//! machine. A path missing from either file fails the gate.
//!
//! Usage:
//!   bench_gate --baseline BENCH_store.json --current new.json \
//!              [--tolerance 0.25] [--raw] [--require-ratio name:min]... \
//!              [--stat-baseline BENCH_stats.json --stat-current fresh.json \
//!               --require-stat dotted.path]...
//!
//! Only the single-thread `results` rows participate in the
//! regression check; the `thread_scaling` section has its own gate
//! (`bench_store_concurrent --require-scaling`).

use pdl_bench::{
    flatten_json_numbers, json_number_at, median, parse_bench_rows, parse_named_numbers, BenchRow,
};

struct Args {
    baseline: String,
    current: String,
    tolerance: f64,
    raw: bool,
    require_ratios: Vec<(String, f64)>,
    stat_baseline: Option<String>,
    stat_current: Option<String>,
    require_stats: Vec<String>,
}

fn parse_args() -> Args {
    let mut baseline = None;
    let mut current = None;
    let mut tolerance = 0.25;
    let mut raw = false;
    let mut require_ratios = Vec::new();
    let mut stat_baseline = None;
    let mut stat_current = None;
    let mut require_stats = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => baseline = Some(args.next().expect("--baseline needs a path")),
            "--current" => current = Some(args.next().expect("--current needs a path")),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .expect("--tolerance needs a fraction")
                    .parse()
                    .expect("--tolerance needs a number")
            }
            "--raw" => raw = true,
            "--require-ratio" => {
                let spec = args.next().expect("--require-ratio needs name:min");
                let (name, min) = spec
                    .rsplit_once(':')
                    .expect("--require-ratio takes name:min (e.g. mem_x_over_y:0.9)");
                require_ratios.push((
                    name.to_string(),
                    min.parse().expect("--require-ratio minimum must be a number"),
                ));
            }
            "--stat-baseline" => {
                stat_baseline = Some(args.next().expect("--stat-baseline needs a path"))
            }
            "--stat-current" => {
                stat_current = Some(args.next().expect("--stat-current needs a path"))
            }
            "--require-stat" => {
                require_stats.push(args.next().expect("--require-stat needs a dotted path"))
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_gate --baseline <json> --current <json> \
                     [--tolerance 0.25] [--raw] [--require-ratio name:min]... \
                     [--stat-baseline <json> --stat-current <json> \
                     --require-stat dotted.path]..."
                );
                std::process::exit(2);
            }
        }
    }
    if !require_stats.is_empty() {
        assert!(
            stat_baseline.is_some() && stat_current.is_some(),
            "--require-stat needs both --stat-baseline and --stat-current"
        );
    }
    Args {
        baseline: baseline.expect("--baseline is required"),
        current: current.expect("--current is required"),
        tolerance,
        raw,
        require_ratios,
        stat_baseline,
        stat_current,
        require_stats,
    }
}

/// Single-thread rows only, keyed `backend/workload`.
fn single_thread_rows(json: &str) -> Vec<BenchRow> {
    parse_bench_rows(json).into_iter().filter(|r| r.threads.is_none()).collect()
}

fn main() {
    let args = parse_args();
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
    };
    let base_rows = single_thread_rows(&read(&args.baseline));
    let cur_rows = single_thread_rows(&read(&args.current));
    assert!(!base_rows.is_empty(), "{}: no result rows found", args.baseline);
    assert!(!cur_rows.is_empty(), "{}: no result rows found", args.current);

    // Workloads present in both files, with their current/baseline
    // throughput ratio.
    let mut pairs: Vec<(String, f64, f64, f64)> = Vec::new(); // (key, base, cur, ratio)
    for b in &base_rows {
        let key = format!("{}/{}", b.backend, b.workload);
        if let Some(c) =
            cur_rows.iter().find(|c| c.backend == b.backend && c.workload == b.workload)
        {
            pairs.push((key, b.mb_per_s, c.mb_per_s, c.mb_per_s / b.mb_per_s));
        } else {
            eprintln!("note: {key} missing from current run (skipped)");
        }
    }
    assert!(!pairs.is_empty(), "no overlapping workloads between baseline and current");

    let mut ratios: Vec<f64> = pairs.iter().map(|p| p.3).collect();
    let norm = if args.raw { 1.0 } else { median(&mut ratios).unwrap() };
    let floor = norm * (1.0 - args.tolerance);
    if !args.raw {
        eprintln!(
            "machine-speed constant (median current/baseline ratio): {norm:.3}; \
             flagging workloads below {floor:.3}"
        );
    }

    println!(
        "{:<32} {:>12} {:>12} {:>8} {:>8}",
        "workload", "baseline", "current", "ratio", "verdict"
    );
    let mut regressed = Vec::new();
    for (key, base, cur, ratio) in &pairs {
        let ok = *ratio >= floor;
        println!(
            "{key:<32} {base:>12.1} {cur:>12.1} {ratio:>8.3} {:>8}",
            if ok { "ok" } else { "REGRESSED" }
        );
        if !ok {
            regressed.push(key.clone());
        }
    }
    // Within-run ratio floors on the current artifact (no
    // normalization: both sides of each ratio came from one run).
    let current_ratios = parse_named_numbers(&read(&args.current));
    for (name, min) in &args.require_ratios {
        match current_ratios.iter().find(|(n, _)| n == name) {
            Some((_, value)) if value >= min => {
                println!("{name:<48} {value:>8.3} >= {min:<6.3} {:>8}", "ok");
            }
            Some((_, value)) => {
                println!("{name:<48} {value:>8.3} <  {min:<6.3} {:>8}", "FAILED");
                regressed.push(format!("{name} ({value:.3} < {min:.3})"));
            }
            None => {
                println!("{name:<48} {:>8} >= {min:<6.3} {:>8}", "missing", "FAILED");
                regressed.push(format!("{name} (missing)"));
            }
        }
    }

    // Observability stat drift gates: same fixed workload on both
    // sides, so each required counter must stay within the tolerance
    // band of its committed baseline value.
    if !args.require_stats.is_empty() {
        let base_stats =
            flatten_json_numbers(&read(args.stat_baseline.as_deref().expect("checked above")));
        let cur_stats =
            flatten_json_numbers(&read(args.stat_current.as_deref().expect("checked above")));
        for path in &args.require_stats {
            let (base, cur) = (json_number_at(&base_stats, path), json_number_at(&cur_stats, path));
            match (base, cur) {
                (Some(b), Some(c)) => {
                    // Band check that also works when the baseline is 0
                    // (then only an exact 0 passes).
                    let ok = (c - b).abs() <= b.abs() * args.tolerance;
                    println!(
                        "stat {path:<40} {b:>12.1} -> {c:>12.1} {:>8}",
                        if ok { "ok" } else { "DRIFTED" }
                    );
                    if !ok {
                        regressed.push(format!("stat {path} ({b:.1} -> {c:.1})"));
                    }
                }
                _ => {
                    let which = if base.is_none() { "baseline" } else { "current" };
                    println!("stat {path:<40} missing from {which} {:>8}", "FAILED");
                    regressed.push(format!("stat {path} (missing from {which})"));
                }
            }
        }
    }

    if !regressed.is_empty() {
        eprintln!(
            "FAIL: {} workload(s)/ratio(s) out of bounds (tolerance {:.0}%): {}",
            regressed.len(),
            args.tolerance * 100.0,
            regressed.join(", ")
        );
        std::process::exit(1);
    }
    eprintln!(
        "bench gate ok: {} workloads within tolerance, {} ratio floors held, {} stats in band",
        pairs.len(),
        args.require_ratios.len(),
        args.require_stats.len()
    );
}
