//! E6 — Theorems 4 & 5: redundancy-reduced BIBDs for prime-power v.
//! Theorem 4 divides (b, r, λ) by gcd(v−1, k−1); Theorem 5 by
//! gcd(v−1, k). Whichever gcd is larger gives the smaller design.

use pdl_algebra::nt::gcd;
use pdl_bench::{header, row};
use pdl_design::{theorem4_design, theorem5_design};

fn main() {
    println!("E6 / Theorems 4 & 5: symmetric-generator reduced designs\n");
    let widths = [4, 4, 8, 6, 8, 6, 8, 10];
    println!("{}", header(&["v", "k", "full b", "g4", "b(T4)", "g5", "b(T5)", "winner"], &widths));
    for v in [5usize, 7, 8, 9, 11, 13, 16, 17, 19, 23, 25, 27, 29, 31, 32] {
        for k in [3usize, 4, 5] {
            if k >= v {
                continue;
            }
            let g4 = gcd(v as u64 - 1, k as u64 - 1) as usize;
            let g5 = gcd(v as u64 - 1, k as u64) as usize;
            let c4 = theorem4_design(v, k);
            let c5 = theorem5_design(v, k);
            assert_eq!(c4.params.b, v * (v - 1) / g4);
            assert_eq!(c5.params.b, v * (v - 1) / g5);
            let winner = match c4.params.b.cmp(&c5.params.b) {
                std::cmp::Ordering::Less => "Thm 4",
                std::cmp::Ordering::Greater => "Thm 5",
                std::cmp::Ordering::Equal => "tie",
            };
            println!(
                "{}",
                row(
                    &[&v, &k, &(v * (v - 1)), &g4, &c4.params.b, &g5, &c5.params.b, &winner],
                    &widths
                )
            );
        }
    }
    println!("\npaper: b = v(v-1)/gcd(v-1,k-1) (Thm 4, = Hanani) and");
    println!("b = v(v-1)/gcd(v-1,k) (Thm 5, new) — confirmed; the two");
    println!("constructions dominate each other on disjoint (v,k) sets.");
}
