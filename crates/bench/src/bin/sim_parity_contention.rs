//! E17 — the Section 5 deferred experiment: parity-update contention
//! under a small-write workload, comparing perfectly balanced parity
//! against the imbalance of naive single-copy placement — the cost that
//! Condition 2 (and the Section 4 flow method) exists to avoid.

use pdl_bench::{f4, header, row};
use pdl_core::{single_copy_layout, Layout, QualityReport, StripePartition};
use pdl_design::theorem4_design;
use pdl_sim::{simulate, write_bottleneck_ratio, SimConfig, StopCondition, Workload};

fn run_writes(layout: &Layout, arrivals: f64, seed: u64) -> (f64, f64, f64) {
    let cfg = SimConfig {
        seed,
        workload: Workload {
            arrivals_per_sec: arrivals,
            read_fraction: 0.0, // pure small writes
            ..Default::default()
        },
        stop: StopCondition::Duration(30_000_000),
        ..Default::default()
    };
    let r = simulate(layout, cfg);
    let mean_util = r.disk_utilization.iter().sum::<f64>() / r.disk_utilization.len() as f64;
    (r.mean_response_us / 1e3, r.max_utilization(), r.max_utilization() / mean_util.max(1e-12))
}

fn main() {
    println!("E17: parity-update contention under small writes (v=13, k=4)\n");
    let c = theorem4_design(13, 4);
    let naive = single_copy_layout(&c.design, 0);
    let balanced = StripePartition::from_layout(&naive).assign_parity().unwrap();

    let qn = QualityReport::measure(&naive);
    let qb = QualityReport::measure(&balanced);
    println!(
        "naive single-copy:  parity/disk ∈ [{}, {}], predicted write bottleneck {}",
        qn.parity_units.0,
        qn.parity_units.1,
        f4(write_bottleneck_ratio(&naive))
    );
    println!(
        "flow-balanced:      parity/disk ∈ [{}, {}], predicted write bottleneck {}\n",
        qb.parity_units.0,
        qb.parity_units.1,
        f4(write_bottleneck_ratio(&balanced))
    );

    let widths = [16, 10, 12, 12, 14];
    println!("{}", header(&["layout", "writes/s", "resp(ms)", "max util", "util skew"], &widths));
    let mut worst_gap: f64 = 0.0;
    for arrivals in [20.0f64, 40.0, 60.0, 80.0] {
        let (rn, un, sn) = run_writes(&naive, arrivals, 11);
        let (rb, ub, sb) = run_writes(&balanced, arrivals, 11);
        println!("{}", row(&[&"naive", &arrivals, &f4(rn), &f4(un), &f4(sn)], &widths));
        println!("{}", row(&[&"balanced", &arrivals, &f4(rb), &f4(ub), &f4(sb)], &widths));
        worst_gap = worst_gap.max(sn - sb);
        assert!(
            sb <= sn + 0.05,
            "balanced layout must not have worse utilization skew ({sb} vs {sn})"
        );
    }
    assert!(worst_gap > 0.05, "imbalance must show up in utilization skew");
    println!("\npaper: uneven parity makes the hottest disk the write bottleneck");
    println!("(Condition 2); flow-balancing removes the skew — confirmed.");
}
