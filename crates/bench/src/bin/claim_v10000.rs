//! E13 — the Section 3.2 computational claim: "for any v up to 10,000,
//! there is a prime power q ≤ v and values of c and w that satisfy (8)
//! and (9)." Exhaustively re-verified, in parallel.

use pdl_core::stairway_params_exist;

fn main() {
    println!("E13: stairway parameters exist for every v ≤ 10,000\n");
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let all: Vec<usize> = (3usize..=10_000).collect();
    let failures: Vec<usize> = std::thread::scope(|s| {
        let handles: Vec<_> = all
            .chunks(all.len().div_ceil(threads))
            .map(|chunk| {
                s.spawn(move || {
                    chunk
                        .iter()
                        .copied()
                        .filter(|&v| stairway_params_exist(v).is_none())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    if failures.is_empty() {
        println!("verified: all v in [3, 10000] admit (q, c, w) — claim CONFIRMED");
    } else {
        println!("claim FAILED for: {failures:?}");
        std::process::exit(1);
    }

    // Distribution of how far below v the chosen prime power sits.
    let mut gap_hist = [0usize; 6]; // gaps 1..=5, then 6+
    let mut max_gap = (0usize, 0usize);
    for v in 3..=10_000usize {
        let (q, _) = stairway_params_exist(v).unwrap();
        let gap = v - q;
        if gap > max_gap.0 {
            max_gap = (gap, v);
        }
        let idx = gap.min(6) - 1;
        gap_hist[idx] += 1;
    }
    println!("\ndistance d = v - q used (smaller d ⇒ bigger but better-balanced layouts):");
    for (i, &c) in gap_hist.iter().enumerate() {
        let label = if i == 5 { "6+".to_string() } else { (i + 1).to_string() };
        println!("  d = {label:>2}: {c:>5} values of v");
    }
    println!("  worst case: d = {} at v = {}", max_gap.0, max_gap.1);
}
