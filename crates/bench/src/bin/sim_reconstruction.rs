//! E16 — the Section 5 deferred experiment: reconstruction performance.
//! Compares RAID5 (k = v), exact BIBD declustered layouts, and the
//! approximately-balanced layouts of Section 3 under the event
//! simulator: rebuild time, per-disk rebuild reads, and foreground
//! response times during reconstruction.

use pdl_bench::{f4, header, row};
use pdl_core::{raid5_layout, stairway_layout, Layout, RingLayout};
use pdl_design::RingDesign;
use pdl_sim::{simulate, RebuildTarget, SimConfig, StopCondition, Workload};

fn rebuild_under_load(layout: &Layout, arrivals: f64, seed: u64) -> (f64, f64, f64) {
    let cfg = SimConfig {
        seed,
        failed_disk: Some(0),
        rebuild: Some(RebuildTarget::ReadOnly),
        workload: Workload { arrivals_per_sec: arrivals, ..Default::default() },
        stop: StopCondition::RebuildComplete,
        ..Default::default()
    };
    let r = simulate(layout, cfg);
    let rebuild_s = r.rebuild_finished_at.unwrap() as f64 / 1e6;
    let mean_ms = r.mean_response_us / 1e3;
    // normalize rebuild time by layout size (units per disk)
    (rebuild_s, rebuild_s / layout.size() as f64 * 1e3, mean_ms)
}

fn main() {
    println!("E16: reconstruction performance (simulator), v=9 disks\n");
    let v = 9usize;
    let declustered: Vec<(String, Layout)> = vec![
        ("RAID5 (k=9)".into(), raid5_layout(v, 24)),
        ("ring k=3".into(), RingLayout::for_v_k(v, 3).layout().clone()),
        ("ring k=5".into(), RingLayout::for_v_k(v, 5).layout().clone()),
        ("ring k=7".into(), RingLayout::for_v_k(v, 7).layout().clone()),
        ("stairway 8→9 k=3".into(), stairway_layout(&RingDesign::for_v_k(8, 3), 9).unwrap()),
        ("removal 11→9 k=5".into(), RingLayout::for_v_k(11, 5).remove_disks(&[9, 10]).unwrap()),
    ];

    for arrivals in [0.0f64, 60.0] {
        println!(
            "\nforeground load: {} req/s {}",
            arrivals,
            if arrivals == 0.0 { "(idle rebuild)" } else { "(rebuild under load)" }
        );
        let widths = [18, 6, 12, 14, 12];
        println!(
            "{}",
            header(&["layout", "size", "rebuild(s)", "ms per unit", "fg resp(ms)"], &widths)
        );
        let mut per_unit = Vec::new();
        for (name, l) in &declustered {
            let (secs, norm, resp) = rebuild_under_load(l, arrivals, 42);
            per_unit.push((name.clone(), norm));
            println!("{}", row(&[name, &l.size(), &f4(secs), &f4(norm), &f4(resp)], &widths));
        }
        // Shape check: smaller k rebuilds faster per unit than RAID5.
        let raid5 = per_unit[0].1;
        let k3 = per_unit[1].1;
        assert!(
            k3 < raid5,
            "declustered k=3 ({k3}) must rebuild faster per unit than RAID5 ({raid5})"
        );
    }

    println!("\nrebuild read distribution (idle, ring k=3 vs RAID5):");
    let widths = [18, 40];
    println!("{}", header(&["layout", "rebuild reads per surviving disk"], &widths));
    for (name, l) in &declustered[..2] {
        let cfg = SimConfig {
            seed: 7,
            failed_disk: Some(0),
            rebuild: Some(RebuildTarget::ReadOnly),
            workload: Workload { arrivals_per_sec: 0.0, ..Default::default() },
            stop: StopCondition::RebuildComplete,
            ..Default::default()
        };
        let r = simulate(l, cfg);
        println!("{}", row(&[name, &format!("{:?}", &r.rebuild_reads[1..v])], &widths));
    }
    println!("\npaper (via Muntz-Lui/Holland-Gibson motivation): declustering with");
    println!("k << v cuts per-disk rebuild reads by ≈ (k-1)/(v-1) and rebuild time");
    println!("proportionally; approximate layouts behave like exact ones — confirmed.");
}
