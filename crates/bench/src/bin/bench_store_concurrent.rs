//! Concurrent-store scaling harness: drives N client threads of
//! block traffic through one `BlockStore` (the `&self` write path
//! behind the stripe-sharded lock table) and records how aggregate
//! throughput scales from 1 → 2 → 4 → 8 threads. Results merge into
//! `BENCH_store.json` as its `thread_scaling` section, joining the
//! committed perf trajectory.
//!
//! Three backends are measured:
//!
//! * `mem` — a `MemBackend` behind a **100 µs per-call device-latency
//!   emulator** ([`DelayBackend`]). This is the headline scaling
//!   measurement: a disk array's win from concurrency is overlapping
//!   device service time (queue-depth scaling), which is exactly what
//!   a latency-free memcpy backend cannot show on an arbitrary
//!   machine. With per-call sleeps the measurement is core-count
//!   independent — threads overlap their waits whether or not they
//!   overlap their cycles — so the committed ratios are reproducible
//!   on any host, including single-core CI runners.
//! * `mem_raw` — the bare `MemBackend`, for transparency: pure-CPU
//!   scaling, entirely at the mercy of the host's core count.
//! * `file` — the real `FileBackend` (page-cache-speed syscalls).
//!
//! The traffic generator is the library's own stress harness
//! (`pdl_store::stress`) with verification disabled, so the benched
//! path is byte-for-byte the one the concurrency tests prove correct.
//!
//! Flags: `--smoke` (CI-sized), `--out <path>` (default
//! `BENCH_store.json`), `--require-scaling <x>` (exit nonzero unless
//! mem read throughput at 4 threads ≥ x × the 1-thread figure — the
//! CI acceptance gate).

use pdl_core::RingLayout;
use pdl_store::stress::{self, RebuildMode, StressConfig};
use pdl_store::{Backend, BlockStore, EngineConfig, FileBackend, MemBackend, StoreError};
use std::fmt::Write as _;
use std::time::Duration;

/// Stripe-unit size, matching `bench_store_throughput`.
const UNIT: usize = 512;
/// Emulated device service time per backend call.
const SERVICE_TIME_US: u64 = 100;
/// Thread counts of the scaling curve.
const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Batch size of the async legs: the engine's win is submitting a
/// multi-run batch to many disks at once, so the workload must hand
/// it batches (the sync path's throughput on a per-call-latency
/// backend is batch-size-invariant — same number of serial calls
/// either way — so the sync × async ratios stay apples-to-apples).
const ASYNC_BATCH: usize = 8;
/// Queue depths of the engine sweep (1 caller thread each).
const DEPTHS: [usize; 3] = [2, 8, 32];

/// Wraps any backend with a fixed per-call service time, emulating a
/// device whose latency concurrency can overlap. Counters and
/// geometry delegate untouched.
struct DelayBackend<B> {
    inner: B,
    delay: Duration,
}

impl<B> DelayBackend<B> {
    fn new(inner: B, delay: Duration) -> Self {
        DelayBackend { inner, delay }
    }

    fn pay(&self) {
        std::thread::sleep(self.delay);
    }
}

impl<B: Backend> Backend for DelayBackend<B> {
    fn disks(&self) -> usize {
        self.inner.disks()
    }

    fn units_per_disk(&self) -> usize {
        self.inner.units_per_disk()
    }

    fn unit_size(&self) -> usize {
        self.inner.unit_size()
    }

    fn read_unit(&self, disk: usize, offset: usize, buf: &mut [u8]) -> Result<(), StoreError> {
        self.pay();
        self.inner.read_unit(disk, offset, buf)
    }

    fn write_unit(&self, disk: usize, offset: usize, buf: &[u8]) -> Result<(), StoreError> {
        self.pay();
        self.inner.write_unit(disk, offset, buf)
    }

    fn read_units(&self, disk: usize, offset: usize, buf: &mut [u8]) -> Result<(), StoreError> {
        self.pay();
        self.inner.read_units(disk, offset, buf)
    }

    fn write_units(&self, disk: usize, offset: usize, buf: &[u8]) -> Result<(), StoreError> {
        self.pay();
        self.inner.write_units(disk, offset, buf)
    }

    fn read_units_scatter(
        &self,
        disk: usize,
        offset: usize,
        bufs: &mut [&mut [u8]],
    ) -> Result<(), StoreError> {
        self.pay();
        self.inner.read_units_scatter(disk, offset, bufs)
    }

    fn write_units_gather(
        &self,
        disk: usize,
        offset: usize,
        bufs: &[&[u8]],
    ) -> Result<(), StoreError> {
        self.pay();
        self.inner.write_units_gather(disk, offset, bufs)
    }

    fn flush(&self) -> Result<(), StoreError> {
        self.inner.flush()
    }

    fn read_count(&self, disk: usize) -> u64 {
        self.inner.read_count(disk)
    }

    fn write_count(&self, disk: usize) -> u64 {
        self.inner.write_count(disk)
    }

    fn read_calls(&self, disk: usize) -> u64 {
        self.inner.read_calls(disk)
    }

    fn write_calls(&self, disk: usize) -> u64 {
        self.inner.write_calls(disk)
    }

    fn prefers_gap_bridging(&self) -> bool {
        self.inner.prefers_gap_bridging()
    }

    fn reset_counters(&self) {
        self.inner.reset_counters()
    }

    fn wipe_disk(&self, disk: usize) -> Result<(), StoreError> {
        self.inner.wipe_disk(disk)
    }
}

#[derive(Clone, Debug)]
struct Sample {
    backend: &'static str,
    workload: &'static str,
    threads: usize,
    mb_per_s: f64,
    blocks: usize,
    seconds: f64,
}

struct Config {
    smoke: bool,
    out: String,
    require_scaling: Option<f64>,
    /// Total operations per measurement, split across the threads so
    /// every point on the curve does the same amount of work.
    total_ops: usize,
    copies: usize,
}

fn main() {
    let mut smoke = false;
    let mut out = String::from("BENCH_store.json");
    let mut require_scaling = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().expect("--out needs a path"),
            "--require-scaling" => {
                require_scaling = Some(
                    args.next()
                        .expect("--require-scaling needs a ratio")
                        .parse()
                        .expect("--require-scaling needs a number"),
                )
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_store_concurrent [--smoke] [--out <path>] \
                     [--require-scaling <x>]"
                );
                std::process::exit(2);
            }
        }
    }
    let cfg = Config {
        smoke,
        out,
        require_scaling,
        total_ops: if smoke { 1200 } else { 4000 },
        copies: 64,
    };

    let layout = RingLayout::for_v_k(9, 4).layout().clone();
    let v = layout.v();
    let units_per_disk = cfg.copies * layout.size();
    let mut samples: Vec<Sample> = Vec::new();

    // The headline curve: emulated device latency, reads then mixed.
    {
        let backend = DelayBackend::new(
            MemBackend::new(v, units_per_disk, UNIT),
            Duration::from_micros(SERVICE_TIME_US),
        );
        let store = BlockStore::new(layout.clone(), backend).unwrap();
        run_curve("mem", &store, &cfg, &mut samples);
        run_async_curve("mem", &store, &cfg, &mut samples);
        run_depth_sweep("mem", &store, &cfg, &mut samples);
    }
    // Raw memcpy backend: honest CPU-bound numbers, host-dependent.
    {
        let store =
            BlockStore::new(layout.clone(), MemBackend::new(v, units_per_disk, UNIT)).unwrap();
        run_curve("mem_raw", &store, &cfg, &mut samples);
    }
    // Real file IO.
    {
        let dir = std::env::temp_dir().join(format!("pdl-bench-conc-{}", std::process::id()));
        let store = BlockStore::new(
            layout.clone(),
            FileBackend::create(&dir, v, units_per_disk, UNIT).unwrap(),
        )
        .unwrap();
        run_curve("file", &store, &cfg, &mut samples);
        run_async_curve("file", &store, &cfg, &mut samples);
        let _ = std::fs::remove_dir_all(&dir);
    }

    let section = render_section(&cfg, &samples);
    let doc = match std::fs::read_to_string(&cfg.out) {
        Ok(json) => json,
        // No prior artifact (e.g. a bare CI scratch dir): start a
        // fresh document; `bench_store_throughput` rewrites the main
        // results wholesale anyway.
        Err(_) => "{\n  \"schema\": \"pdl-bench-store/v1\"\n}\n".to_string(),
    };
    std::fs::write(&cfg.out, pdl_bench::merge_thread_scaling(&doc, &section))
        .expect("write BENCH json");
    eprintln!("merged thread_scaling into {}", cfg.out);

    println!(
        "{:<8} {:<18} {:>7} {:>12} {:>10}",
        "backend", "workload", "threads", "MB/s", "blocks"
    );
    for s in &samples {
        println!(
            "{:<8} {:<18} {:>7} {:>12.2} {:>10}",
            s.backend, s.workload, s.threads, s.mb_per_s, s.blocks
        );
    }
    for (name, r) in ratios(&samples) {
        println!("{name}: {r:.2}x");
    }

    if let Some(need) = cfg.require_scaling {
        let got = scaling_ratio(&samples, "mem", "concurrent_read", 4);
        // NaN (a missing sample) must fail the gate too.
        if got.is_nan() || got < need {
            eprintln!(
                "FAIL: mem concurrent_read at 4 threads scales {got:.2}x over 1 thread \
                 (required ≥ {need:.2}x)"
            );
            std::process::exit(1);
        }
        eprintln!("scaling gate ok: {got:.2}x ≥ {need:.2}x");
    }
}

/// One backend's scaling curve: pure reads and a 70/30 mixed workload
/// at each thread count, same total op budget per point.
fn run_curve<B: Backend + 'static>(
    name: &'static str,
    store: &BlockStore<B>,
    cfg: &Config,
    samples: &mut Vec<Sample>,
) {
    for &threads in &THREADS {
        for (workload, read_fraction) in [("concurrent_read", 1.0), ("concurrent_mixed", 0.7)] {
            let stress_cfg = StressConfig {
                threads,
                ops_per_thread: cfg.total_ops / threads,
                seed: 0xbe7c + threads as u64,
                batch_max: 1,
                batch_min: 1,
                read_fraction,
                fail_disk: None,
                rebuild: RebuildMode::None,
                verify_reads: false,
                cache: pdl_store::CachePolicy::WriteThrough,
                engine: None,
            };
            let report = stress::run(store, &stress_cfg).unwrap();
            let blocks = report.blocks_read + report.blocks_written;
            let seconds = report.elapsed.as_secs_f64();
            samples.push(Sample {
                backend: name,
                workload,
                threads,
                mb_per_s: (blocks * report.unit_size) as f64 / seconds.max(1e-9) / 1e6,
                blocks,
                seconds,
            });
        }
    }
    // One parity sweep per curve (not per sample — through a
    // DelayBackend every verification read pays the emulated service
    // time): the whole measured workload must leave the invariants
    // intact.
    store.verify_parity().unwrap_or_else(|e| panic!("{name}: parity after the curve: {e}"));
}

/// The async curve: the same scaling measurement with the I/O engine
/// running, in multi-block batches so each op hands the per-disk
/// queues a whole band of runs. `concurrent_read_async` is the
/// headline (a single caller's batch seeks on every disk at once);
/// `random_small_write_async` drives the write-gather submission
/// path.
fn run_async_curve<B: Backend + 'static>(
    name: &'static str,
    store: &BlockStore<B>,
    cfg: &Config,
    samples: &mut Vec<Sample>,
) {
    for &threads in &THREADS {
        for (workload, read_fraction) in
            [("concurrent_read_async", 1.0), ("random_small_write_async", 0.0)]
        {
            let stress_cfg = StressConfig {
                threads,
                ops_per_thread: cfg.total_ops / (threads * ASYNC_BATCH),
                seed: 0xa57c + threads as u64,
                batch_max: ASYNC_BATCH,
                batch_min: ASYNC_BATCH,
                read_fraction,
                fail_disk: None,
                rebuild: RebuildMode::None,
                verify_reads: false,
                cache: pdl_store::CachePolicy::WriteThrough,
                engine: Some(EngineConfig::default()),
            };
            let report = stress::run(store, &stress_cfg).unwrap();
            let blocks = report.blocks_read + report.blocks_written;
            let seconds = report.elapsed.as_secs_f64();
            samples.push(Sample {
                backend: name,
                workload,
                threads,
                mb_per_s: (blocks * report.unit_size) as f64 / seconds.max(1e-9) / 1e6,
                blocks,
                seconds,
            });
        }
    }
    store.verify_parity().unwrap_or_else(|e| panic!("{name}: parity after the async curve: {e}"));
}

/// Queue-depth sweep: `concurrent_read_async` at one caller thread
/// across `target_depth` ∈ {2, 8, 32} — how much per-disk pile-on
/// the scheduler needs before a single caller saturates the array.
fn run_depth_sweep<B: Backend + 'static>(
    name: &'static str,
    store: &BlockStore<B>,
    cfg: &Config,
    samples: &mut Vec<Sample>,
) {
    for &depth in &DEPTHS {
        let workload = match depth {
            2 => "concurrent_read_async_depth2",
            8 => "concurrent_read_async_depth8",
            32 => "concurrent_read_async_depth32",
            _ => unreachable!("DEPTHS is fixed"),
        };
        let stress_cfg = StressConfig {
            threads: 1,
            ops_per_thread: cfg.total_ops / ASYNC_BATCH,
            seed: 0xdeb7 + depth as u64,
            batch_max: ASYNC_BATCH,
            batch_min: ASYNC_BATCH,
            read_fraction: 1.0,
            fail_disk: None,
            rebuild: RebuildMode::None,
            verify_reads: false,
            cache: pdl_store::CachePolicy::WriteThrough,
            engine: Some(EngineConfig { target_depth: depth, ..EngineConfig::default() }),
        };
        let report = stress::run(store, &stress_cfg).unwrap();
        let blocks = report.blocks_read + report.blocks_written;
        let seconds = report.elapsed.as_secs_f64();
        samples.push(Sample {
            backend: name,
            workload,
            threads: 1,
            mb_per_s: (blocks * report.unit_size) as f64 / seconds.max(1e-9) / 1e6,
            blocks,
            seconds,
        });
    }
    store.verify_parity().unwrap_or_else(|e| panic!("{name}: parity after the depth sweep: {e}"));
}

/// Raw throughput of one `(backend, workload, threads)` sample (NaN
/// when the sample is missing, which fails any gate on the ratio).
fn mb_per_s(samples: &[Sample], backend: &str, workload: &str, threads: usize) -> f64 {
    samples
        .iter()
        .find(|s| s.backend == backend && s.workload == workload && s.threads == threads)
        .map(|s| s.mb_per_s)
        .unwrap_or(f64::NAN)
}

/// Throughput at `threads` over the 1-thread figure for one curve.
fn scaling_ratio(samples: &[Sample], backend: &str, workload: &str, threads: usize) -> f64 {
    mb_per_s(samples, backend, workload, threads) / mb_per_s(samples, backend, workload, 1)
}

/// The headline ratios: each thread count over 1, per backend, for
/// the read curve (plus the mixed curve at 4 threads), then the
/// async-engine comparisons — async over sync at every thread count,
/// the single/dual-caller async figures against the 8-thread sync
/// ceiling, and the queue-depth sweep.
fn ratios(samples: &[Sample]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for backend in ["mem", "mem_raw", "file"] {
        for t in [2usize, 4, 8] {
            out.push((
                format!("{backend}_concurrent_read_x{t}_over_x1"),
                scaling_ratio(samples, backend, "concurrent_read", t),
            ));
        }
        out.push((
            format!("{backend}_concurrent_mixed_x4_over_x1"),
            scaling_ratio(samples, backend, "concurrent_mixed", 4),
        ));
    }
    for backend in ["mem", "file"] {
        for t in THREADS {
            out.push((
                format!("{backend}_concurrent_read_async_x{t}_over_sync_x{t}"),
                mb_per_s(samples, backend, "concurrent_read_async", t)
                    / mb_per_s(samples, backend, "concurrent_read", t),
            ));
        }
    }
    for t in [1usize, 2] {
        out.push((
            format!("mem_concurrent_read_async_x{t}_over_sync_x8"),
            mb_per_s(samples, "mem", "concurrent_read_async", t)
                / mb_per_s(samples, "mem", "concurrent_read", 8),
        ));
    }
    out.push((
        "mem_random_small_write_async_x4_over_x1".into(),
        scaling_ratio(samples, "mem", "random_small_write_async", 4),
    ));
    for depth in [8usize, 32] {
        out.push((
            format!("mem_concurrent_read_async_depth{depth}_over_depth2"),
            mb_per_s(
                samples,
                "mem",
                match depth {
                    8 => "concurrent_read_async_depth8",
                    _ => "concurrent_read_async_depth32",
                },
                1,
            ) / mb_per_s(samples, "mem", "concurrent_read_async_depth2", 1),
        ));
    }
    out
}

fn render_section(cfg: &Config, samples: &[Sample]) -> String {
    let mut s = String::new();
    s.push_str("\"thread_scaling\": {\n");
    let _ = writeln!(s, "    \"schema\": \"pdl-bench-store-threads/v1\",");
    let _ = writeln!(s, "    \"smoke\": {},", cfg.smoke);
    let _ = writeln!(s, "    \"unit_size\": {UNIT},");
    let _ = writeln!(s, "    \"layout\": \"ring_v9_k4\",");
    let _ = writeln!(s, "    \"copies\": {},", cfg.copies);
    let _ = writeln!(s, "    \"service_time_us\": {SERVICE_TIME_US},");
    let _ = writeln!(
        s,
        "    \"note\": \"backend 'mem' emulates a {SERVICE_TIME_US}us-per-call device so the \
         curve measures latency overlap (queue-depth scaling, host-independent); 'mem_raw' is \
         the bare memcpy backend (CPU-bound, host-dependent); 'file' is real file IO\","
    );
    s.push_str("    \"results\": [\n");
    for (i, r) in samples.iter().enumerate() {
        let _ = write!(
            s,
            "      {{\"backend\": \"{}\", \"workload\": \"{}\", \"threads\": {}, \
             \"mb_per_s\": {:.3}, \"blocks\": {}, \"seconds\": {:.6}}}",
            r.backend, r.workload, r.threads, r.mb_per_s, r.blocks, r.seconds
        );
        s.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    s.push_str("    ],\n");
    s.push_str("    \"ratios\": {\n");
    let rs = ratios(samples);
    for (i, (name, r)) in rs.iter().enumerate() {
        let _ = write!(s, "      \"{name}\": {r:.3}");
        s.push_str(if i + 1 < rs.len() { ",\n" } else { "\n" });
    }
    s.push_str("    }\n  }");
    s
}
