//! A fast, condensed verification gate: one assertion per paper claim,
//! small parameters, runs in seconds. The full experiment binaries
//! (fig*/table*/sim*/claim*) sweep far wider; this is the smoke check.

use pdl_algebra::nt::gcd;
use pdl_core::{
    copies_for_perfect_parity, parity_counts, raid5_layout, single_copy_layout, stairway_layout,
    DoubleParityLayout, QualityReport, RingLayout, SparedLayout, StairwayParams, StripePartition,
};
use pdl_design::{
    bibd_min_blocks, steiner_triple_system, theorem4_design, theorem5_design, theorem6_design,
    RingDesign,
};
use pdl_sim::{rebuild_reads_match_layout, simulate_rebuild, RebuildTarget};

fn check(name: &str, ok: bool) {
    assert!(ok, "FAILED: {name}");
    println!("  ok  {name}");
}

fn main() {
    println!("condensed verification of every paper claim:\n");

    // Section 2
    let d = RingDesign::for_v_k(9, 4).to_block_design().verify_bibd().unwrap();
    check(
        "Thm 1: ring design is BIBD(b=v(v-1), r=k(v-1), λ=k(k-1))",
        (d.b, d.r, d.lambda) == (72, 32, 12),
    );
    check(
        "Thm 2: k ≤ M(v) characterization",
        pdl_design::ring_design_exists(12, 3) && !pdl_design::ring_design_exists(12, 4),
    );
    check(
        "Thm 4: b = v(v-1)/gcd(v-1,k-1)",
        theorem4_design(13, 5).params.b == 13 * 12 / gcd(12, 4) as usize,
    );
    check("Thm 5: b = v(v-1)/gcd(v-1,k)", theorem5_design(13, 4).params.b == 39);
    let t6 = theorem6_design(16, 4).params;
    check("Thm 6: λ=1 subfield design", t6.lambda == 1 && t6.b == 20);
    check("Thm 7: Theorem 6 is optimally small", t6.b as u64 == bibd_min_blocks(16, 4));
    check(
        "Steiner (Bose/Skolem): λ=1 for k=3 at composite v",
        steiner_triple_system(15).params.lambda == 1,
    );

    // Section 3
    let rl = RingLayout::for_v_k(9, 4);
    let q = QualityReport::measure(rl.layout());
    check(
        "ring layout: size k(v-1), perfect balance",
        rl.layout().size() == 32 && q.parity_balanced() && q.reconstruction_balanced(),
    );
    let q8 = QualityReport::measure(&rl.remove_disk(0));
    check(
        "Thm 8: removal keeps perfect balance at v parity units/disk",
        q8.parity_units == (9, 9) && q8.reconstruction_balanced(),
    );
    let l9 = RingLayout::for_v_k(11, 5).remove_disks(&[1, 7]).unwrap();
    let c9 = parity_counts(&l9);
    check(
        "Thm 9: i-removal bounds parity within one",
        c9.iter().max().unwrap() - c9.iter().min().unwrap() <= 1,
    );
    let p10 = StairwayParams::solve(8, 9).unwrap();
    let s10 = stairway_layout(&RingDesign::for_v_k(8, 3), 9).unwrap();
    let q10 = QualityReport::measure(&s10);
    check(
        "Thm 10: stairway v=q+1 exact metrics",
        s10.size() == p10.size(3)
            && q10.parity_balanced()
            && (q10.reconstruction_workload.1 - 2.0 / 8.0).abs() < 1e-12,
    );
    let s12 = stairway_layout(&RingDesign::for_v_k(9, 4), 13).unwrap();
    let p12 = StairwayParams::solve(9, 13).unwrap();
    let q12 = QualityReport::measure(&s12);
    let (olo, ohi) = p12.parity_overhead_bounds(4);
    check(
        "Thm 12: wide-step stairway within overhead bounds",
        q12.parity_overhead.0 >= olo - 1e-9 && q12.parity_overhead.1 <= ohi + 1e-9,
    );
    check(
        "§3.2: stairway params exist (sampled)",
        (3..500).all(|v| pdl_core::stairway_params_exist(v).is_some()),
    );

    // Section 4
    let single = single_copy_layout(&theorem6_design(9, 3).design, 0);
    let balanced = StripePartition::from_layout(&single).assign_parity().unwrap();
    let cb = parity_counts(&balanced);
    check(
        "Thm 13/14: flow gives ⌊L⌋/⌈L⌉ parity per disk",
        cb.iter().max().unwrap() - cb.iter().min().unwrap() <= 1,
    );
    check("Cor 17: lcm(b,v)/b replication", copies_for_perfect_parity(12, 9) == 3);
    let two = StripePartition::from_layout(&single).assign_parity_two_phase().unwrap();
    let ct = parity_counts(&two);
    check(
        "Thm 13 (paper's two-phase G′ variant) agrees",
        ct.iter().max().unwrap() - ct.iter().min().unwrap() <= 1,
    );

    // Section 5 (simulator + extensions)
    let res = simulate_rebuild(rl.layout(), 0, RebuildTarget::ReadOnly, 1);
    check(
        "simulator: rebuild reads exactly the layout's crossing units",
        rebuild_reads_match_layout(rl.layout(), 0, &res),
    );
    let r5 = raid5_layout(9, 32);
    let res5 = simulate_rebuild(&r5, 0, RebuildTarget::ReadOnly, 1);
    check(
        "declustered rebuilds faster than RAID5 (same geometry)",
        res.rebuild_finished_at.unwrap() < res5.rebuild_finished_at.unwrap(),
    );
    let spared = SparedLayout::new(rl.layout().clone()).unwrap();
    let sc = spared.spare_counts();
    check(
        "distributed sparing balanced within one",
        sc.iter().max().unwrap() - sc.iter().min().unwrap() <= 1,
    );
    let dp = DoubleParityLayout::new(rl.layout().clone()).unwrap();
    let dc = dp.parity_counts();
    check(
        "double parity (generalized Thm 14) balanced within one",
        dc.iter().max().unwrap() - dc.iter().min().unwrap() <= 1,
    );

    println!("\nall condensed checks passed.");
}
