//! E4 — Theorem 1: ring-based designs are BIBDs with b = v(v−1),
//! r = k(v−1), λ = k(k−1), for fields, Z_p, and product rings alike.

use pdl_bench::{header, row};
use pdl_design::RingDesign;

fn main() {
    println!("E4 / Theorem 1: ring-based block design parameters\n");
    let widths = [16, 5, 4, 8, 8, 8, 8];
    println!("{}", header(&["ring", "v", "k", "b", "r", "λ", "verified"], &widths));
    let cases: &[(&str, usize, usize)] = &[
        ("GF(5)", 5, 3),
        ("GF(8)", 8, 4),
        ("GF(9)", 9, 5),
        ("GF(16)", 16, 6),
        ("GF(25)", 25, 7),
        ("GF(4)xGF(3)", 12, 3),
        ("GF(3)xGF(5)", 15, 3),
        ("GF(4)xGF(9)", 36, 4),
        ("GF(4)xGF(25)", 100, 4),
    ];
    for &(name, v, k) in cases {
        let d = RingDesign::for_v_k(v, k);
        let p = d.to_block_design().verify_bibd().expect("Theorem 1 guarantees a BIBD");
        assert_eq!(p.b, v * (v - 1));
        assert_eq!(p.r, k * (v - 1));
        assert_eq!(p.lambda, k * (k - 1));
        println!("{}", row(&[&name, &v, &k, &p.b, &p.r, &p.lambda, &"ok"], &widths));
    }
    println!("\npaper: b=v(v-1), r=k(v-1), λ=k(k-1) — confirmed on all rings tested.");
}
