//! E8 — the headline feasibility table: how many (v, k) pairs admit
//! layouts of ≤ 10,000 units per disk under each construction family.
//! This quantifies the paper's claim that its techniques "greatly
//! increase the number of parity-declustered data layouts that are
//! feasible for use in disk arrays."

use pdl_bench::{header, row};
use pdl_core::{count_feasible, layout_size, Method, DEFAULT_FEASIBILITY_LIMIT};

fn main() {
    let limit = DEFAULT_FEASIBILITY_LIMIT as u128;
    println!("E8: feasible (v,k) pairs per method, size ≤ {limit} units/disk\n");

    println!("sweep A: v ∈ [4, 100], k ∈ [2, 16]");
    println!("sweep B: v ∈ [4, 500], k ∈ [2, 32]");
    println!("sweep C: v ∈ [4, 1000], k ∈ [2, 40]\n");
    let a = count_feasible(4..=100, 16, limit);
    let b = count_feasible(4..=500, 32, limit);
    let c = count_feasible(4..=1000, 40, limit);

    let widths = [14, 10, 10, 10];
    println!("{}", header(&["method", "A", "B", "C"], &widths));
    for (i, m) in Method::ALL.iter().enumerate() {
        println!("{}", row(&[&m.name(), &a[i], &b[i], &c[i]], &widths));
    }

    println!("\nexample sizes at v=41, k=5 (cf. the paper's 1GB-disk discussion):");
    let widths2 = [14, 14];
    println!("{}", header(&["method", "units/disk"], &widths2));
    for m in Method::ALL {
        let s = layout_size(m, 41, 5).map(|s| s.to_string()).unwrap_or_else(|| "n/a".into());
        println!("{}", row(&[&m.name(), &s], &widths2));
    }

    let idx = |m: Method| Method::ALL.iter().position(|&x| x == m).unwrap();
    assert!(c[idx(Method::Stairway)] > 3 * c[idx(Method::CompleteHG)]);
    assert!(c[idx(Method::BibdSingleCopy)] >= c[idx(Method::BibdHG)]);
    println!("\npaper: complete designs become infeasible as v grows; ring-based,");
    println!("single-copy flow-balanced, and stairway layouts recover most of the");
    println!("(v,k) plane — confirmed (stairway ≥ 3× completeHG coverage at C).");
}
