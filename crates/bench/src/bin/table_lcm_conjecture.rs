//! E15 — Corollaries 16 & 17: fixed-k layouts balance to ⌊b/v⌋/⌈b/v⌉;
//! perfect balance is achievable iff v | b; and the Holland–Gibson lcm
//! conjecture — exactly lcm(b,v)/b copies are necessary and sufficient
//! for perfect parity balance.

use pdl_bench::{header, row};
use pdl_core::{copies_for_perfect_parity, parity_counts, single_copy_layout, StripePartition};
use pdl_design::{theorem4_design, theorem5_design, theorem6_design, ConstructedBibd};

fn check_perfect(design: &pdl_design::BlockDesign, copies: usize) -> bool {
    let replicated = design.replicate(copies);
    let l = single_copy_layout(&replicated, 0);
    let balanced = StripePartition::from_layout(&l).assign_parity().unwrap();
    let counts = parity_counts(&balanced);
    counts.iter().all(|&c| c == counts[0])
}

fn main() {
    println!("E15 / Corollaries 16-17: the lcm replication conjecture\n");
    let widths = [18, 5, 6, 10, 12, 14, 8];
    println!(
        "{}",
        header(
            &["design", "v", "b", "lcm(b,v)/b", "perfect@lcm", "perfect@fewer", "check"],
            &widths
        )
    );
    let cases: Vec<(String, ConstructedBibd)> = vec![
        ("thm6 v=9,k=3".into(), theorem6_design(9, 3)), // b=12, v=9 → 3 copies
        ("thm6 v=16,k=4".into(), theorem6_design(16, 4)), // b=20, v=16 → 4 copies
        ("thm4 v=13,k=4".into(), theorem4_design(13, 4)), // b=52, v=13 → 1 copy
        ("thm5 v=13,k=4".into(), theorem5_design(13, 4)), // b=39, v=13 → 1 copy
        ("thm4 v=8,k=3".into(), theorem4_design(8, 3)), // b=56, v=8 → 1
        ("thm6 v=25,k=5".into(), theorem6_design(25, 5)), // b=30, v=25 → 5
        ("thm6 v=8,k=2".into(), theorem6_design(8, 2)), // b=28, v=8 → 2
    ];
    for (name, c) in cases {
        let (b, v) = (c.params.b, c.params.v);
        let need = copies_for_perfect_parity(b, v);
        let at_lcm = check_perfect(&c.design, need);
        assert!(at_lcm, "{name}: lcm copies must balance perfectly");
        // Sufficiency is proven; check necessity empirically: no smaller
        // copy count yields perfect balance (Corollary 17: need v | m·b).
        let mut fewer_ok = false;
        for m in 1..need {
            if check_perfect(&c.design, m) {
                fewer_ok = true;
            }
        }
        assert!(!fewer_ok, "{name}: fewer than lcm copies balanced perfectly");
        println!("{}", row(&[&name, &v, &b, &need, &at_lcm, &(!fewer_ok), &"ok"], &widths));
    }
    println!("\npaper: lcm(b,v)/b copies are necessary AND sufficient — confirmed,");
    println!("proving the Holland-Gibson conjecture computationally as well.");
}
