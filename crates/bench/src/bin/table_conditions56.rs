//! E20 — Conditions 5 & 6 (Large Write Optimization, Maximal
//! Parallelism): the two Holland–Gibson criteria the paper set aside and
//! Stockmeyer (IBM RJ-9915) analyzed for these layouts, measured here
//! for every construction family.

use pdl_bench::{f4, header, row};
use pdl_core::{
    holland_gibson_layout, raid5_layout, random_layout, stairway_layout, Layout, ParallelismReport,
    RingLayout,
};
use pdl_design::{complete_design, theorem4_design, RingDesign};

fn main() {
    println!("E20: Conditions 5-6 (Stockmeyer's analysis dimension)\n");
    let layouts: Vec<(String, Layout)> = vec![
        ("raid5 v=9".into(), raid5_layout(9, 24)),
        ("ring v=9,k=3".into(), RingLayout::for_v_k(9, 3).layout().clone()),
        ("ring v=9,k=4".into(), RingLayout::for_v_k(9, 4).layout().clone()),
        ("ring v=13,k=4".into(), RingLayout::for_v_k(13, 4).layout().clone()),
        ("hg complete v=5,k=3".into(), holland_gibson_layout(&complete_design(5, 3, 1000))),
        ("hg thm4 v=13,k=4".into(), holland_gibson_layout(&theorem4_design(13, 4).design)),
        ("thm8 v=9→8,k=4".into(), RingLayout::for_v_k(9, 4).remove_disk(0)),
        ("stairway 9→13,k=4".into(), stairway_layout(&RingDesign::for_v_k(9, 4), 13).unwrap()),
        ("random v=9,k=3".into(), random_layout(9, 3, 24, 7).unwrap()),
    ];

    let widths = [22, 12, 12, 12];
    println!("{}", header(&["layout", "large-write", "parallel µ", "parallel min"], &widths));
    for (name, l) in &layouts {
        let r = ParallelismReport::measure(l);
        println!(
            "{}",
            row(
                &[name, &f4(r.large_write), &f4(r.parallelism_mean), &f4(r.parallelism_worst)],
                &widths
            )
        );
        assert!(r.large_write > 0.0 && r.large_write <= 1.0);
        assert!(r.parallelism_mean > 0.0 && r.parallelism_mean <= 1.0);
    }
    println!("\nnotes: stripe-ordered logical addressing makes every uniform-k layout");
    println!("perfect on Condition 5 (large-write = 1); ragged layouts (Thm 8,");
    println!("wide-step stairways) trade a little of it for feasibility, matching");
    println!("Stockmeyer's observation that Conditions 5-6 depend on the mapping,");
    println!("not only the block design.");
}
