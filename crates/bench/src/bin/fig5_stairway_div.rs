//! E11 — Fig. 5 / Theorem 11: the stairway transformation when
//! (v−q) | v. Parity stays perfectly balanced at 1/k; reconstruction
//! workload falls within [((c−2)/(c−1))·(k−1)/(q−1), (k−1)/(q−1)].

use pdl_bench::{bound_check, f4, header, row};
use pdl_core::{stairway_layout, QualityReport, StairwayParams};
use pdl_design::RingDesign;

fn main() {
    println!("E11 / Fig 5 + Theorem 11: stairway with (v-q) | v\n");
    let widths = [4, 4, 4, 4, 8, 10, 18, 18, 8];
    println!(
        "{}",
        header(
            &["q", "k", "v", "c", "size", "overhead", "recon[min,max]", "paper bounds", "check"],
            &widths
        )
    );
    for (q, k, v) in
        [(8usize, 3usize, 10usize), (9, 4, 12), (16, 5, 20), (25, 4, 30), (27, 3, 36), (32, 6, 40)]
    {
        let p = StairwayParams::solve(q, v).unwrap();
        assert_eq!(p.w, 0, "divisible case has no wide steps");
        let design = RingDesign::for_v_k(q, k);
        let l = stairway_layout(&design, v).unwrap();
        assert_eq!(l.size(), p.size(k));
        let m = QualityReport::measure(&l);
        let (wlo, whi) = p.reconstruction_workload_bounds(k);
        let check = bound_check(m.reconstruction_workload, (wlo, whi));
        assert_eq!(check, "ok", "q={q} k={k} v={v}");
        assert!(m.parity_balanced(), "Theorem 11 parity is perfect");
        println!(
            "{}",
            row(
                &[
                    &q,
                    &k,
                    &v,
                    &p.c,
                    &l.size(),
                    &f4(m.parity_overhead.1),
                    &format!(
                        "[{},{}]",
                        f4(m.reconstruction_workload.0),
                        f4(m.reconstruction_workload.1)
                    ),
                    &format!("[{},{}]", f4(wlo), f4(whi)),
                    &"ok",
                ],
                &widths
            )
        );
    }
    println!("\npaper: size k(c-1)(q-1), overhead exactly 1/k, recon within");
    println!("[((c-2)/(c-1))(k-1)/(q-1), (k-1)/(q-1)] — confirmed.");
}
