//! E2 — Fig. 2: the parity-declustered layout for v=4, k=3.
//! Reconstruction workload drops to (k−1)/(v−1) = 2/3 per survivor.

use pdl_bench::{f4, header, row};
use pdl_core::{holland_gibson_layout, QualityReport, StripePartition};
use pdl_design::complete_design;

fn main() {
    println!("E2 / Fig 2: parity-declustered layout for v=4, k=3\n");
    // One copy of the complete design with flow-assigned parity — the
    // layout of Fig. 2 (4 stripes, one parity per disk).
    let d = complete_design(4, 3, 100);
    let single = pdl_core::single_copy_layout(&d, 0);
    let l = StripePartition::from_layout(&single).assign_parity().unwrap();
    println!("{}", l.ascii_art(8));
    let q = QualityReport::measure(&l);
    println!("{q}\n");
    assert!((q.reconstruction_workload.1 - 2.0 / 3.0).abs() < 1e-12);

    println!("declustering across array sizes (k=3):");
    let widths = [4, 8, 12, 12];
    println!("{}", header(&["v", "size", "recon", "paper"], &widths));
    for v in [4usize, 7, 9, 13, 25] {
        let c = pdl_design::theorem4_design(v, 3);
        let l = holland_gibson_layout(&c.design);
        let q = QualityReport::measure(&l);
        let paper = 2.0 / (v as f64 - 1.0);
        println!(
            "{}",
            row(&[&v, &l.size(), &f4(q.reconstruction_workload.1), &f4(paper)], &widths)
        );
        assert!((q.reconstruction_workload.1 - paper).abs() < 1e-12);
    }
    println!("\npaper: recon workload = (k-1)/(v-1) for BIBD layouts — confirmed.");
}
