//! E5 — Theorem 2: a ring-based design on v elements with tuples of
//! size k exists iff k ≤ M(v), the smallest maximal prime-power factor.
//! Constructively verified for every v ≤ 120 (every k ≤ min(M(v), 8)
//! is built and BIBD-checked; k = M(v)+1 is confirmed impossible for
//! the Lemma 3 ring).

use pdl_algebra::nt::min_prime_power_factor;
use pdl_bench::{header, row};
use pdl_design::{ring_design_exists, RingDesign};

fn main() {
    println!("E5 / Theorem 2: existence characterization k ≤ M(v)\n");
    let mut built = 0usize;
    for v in 4u64..=120 {
        let m = min_prime_power_factor(v);
        for k in 2..=m.min(8) {
            assert!(ring_design_exists(v, k), "v={v} k={k}");
            let d = RingDesign::for_v_k(v as usize, k as usize);
            d.to_block_design()
                .verify_bibd()
                .unwrap_or_else(|e| panic!("v={v} k={k}: construction failed verification: {e}"));
            built += 1;
        }
        assert!(!ring_design_exists(v, m + 1), "v={v}: k=M(v)+1 must not exist");
    }
    println!("constructed and verified {built} ring designs for v ≤ 120\n");

    println!("sample of M(v) — where ring designs run out:");
    let widths = [6, 22, 6];
    println!("{}", header(&["v", "factorization", "M(v)"], &widths));
    for v in [12u64, 30, 60, 100, 210, 1024, 1000, 2310] {
        let f = pdl_algebra::nt::factorize(v)
            .iter()
            .map(|&(p, e)| if e == 1 { p.to_string() } else { format!("{p}^{e}") })
            .collect::<Vec<_>>()
            .join("·");
        println!("{}", row(&[&v, &f, &min_prime_power_factor(v)], &widths));
    }
    println!("\npaper: ring designs exist iff k ≤ M(v); v with small prime factors");
    println!("(e.g. v=30 → M=2) are the 'bad v's motivating Section 3 — confirmed.");
}
