//! E21 — large-request behavior (Conditions 5 & 6 in the simulator):
//! aligned full-stripe writes skip read-modify-write entirely, and large
//! reads exercise the layouts' parallelism.

use pdl_bench::{f4, header, row};
use pdl_core::{raid5_layout, Layout, ParallelismReport, RingLayout};
use pdl_sim::{simulate, SimConfig, StopCondition, Workload};

fn run(layout: &Layout, size: (usize, usize), read_frac: f64, aligned: bool) -> (f64, u64, u64) {
    let cfg = SimConfig {
        seed: 55,
        workload: Workload {
            arrivals_per_sec: 25.0,
            read_fraction: read_frac,
            request_units: size,
            aligned,
            ..Default::default()
        },
        stop: StopCondition::Duration(20_000_000),
        ..Default::default()
    };
    let r = simulate(layout, cfg);
    (r.mean_response_us / 1e3, r.fg_reads.iter().sum::<u64>(), r.fg_writes.iter().sum::<u64>())
}

fn main() {
    println!("E21: large requests — LWO and parallelism in the simulator\n");
    let ring = RingLayout::for_v_k(9, 4);
    let raid5 = raid5_layout(9, ring.layout().size());

    println!("(a) write workloads on ring v=9, k=4 (3 data units per stripe):");
    let widths = [26, 12, 10, 10, 14];
    println!("{}", header(&["workload", "resp(ms)", "reads", "writes", "reads/write"], &widths));
    for (name, size, aligned) in [
        ("small writes (RMW)", (1usize, 1usize), false),
        ("3-unit unaligned", (3, 3), false),
        ("3-unit aligned (LWO)", (3, 3), true),
    ] {
        let (resp, reads, writes) = run(ring.layout(), size, 0.0, aligned);
        println!(
            "{}",
            row(
                &[&name, &f4(resp), &reads, &writes, &f4(reads as f64 / writes.max(1) as f64),],
                &widths
            )
        );
        if name.contains("LWO") {
            assert_eq!(reads, 0, "aligned full-stripe writes must not pre-read");
        }
    }

    println!("\n(b) 9-unit reads: RAID5 (ideal parallelism) vs declustered:");
    let widths = [14, 12, 14, 14];
    println!("{}", header(&["layout", "resp(ms)", "IOs/request", "parallel µ"], &widths));
    for (name, l) in [("RAID5", &raid5), ("ring k=4", ring.layout())] {
        let cfg = SimConfig {
            seed: 56,
            workload: Workload {
                arrivals_per_sec: 15.0,
                read_fraction: 1.0,
                request_units: (9, 9),
                aligned: true,
                ..Default::default()
            },
            stop: StopCondition::Duration(20_000_000),
            ..Default::default()
        };
        let r = simulate(l, cfg);
        let p = ParallelismReport::measure(l);
        println!(
            "{}",
            row(
                &[
                    &name,
                    &f4(r.mean_response_us / 1e3),
                    &f4(r.fg_reads.iter().sum::<u64>() as f64 / r.completed.max(1) as f64),
                    &f4(p.parallelism_mean),
                ],
                &widths
            )
        );
    }
    println!("\nshape: the LWO path eliminates all pre-reads for aligned full-stripe");
    println!("writes (Condition 5); RAID5's perfect Condition-6 score shows up as");
    println!("fewer, wider-spread IOs per large read — both reproduced.");
}
