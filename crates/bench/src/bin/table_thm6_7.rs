//! E7 — Theorems 6 & 7: subfield-generator designs achieve λ = 1 and
//! meet the universal lower bound b ≥ v(v−1)/gcd(v(v−1), k(k−1)) —
//! they are optimally small.

use pdl_bench::{header, row};
use pdl_design::{bibd_min_blocks, theorem6_design};

fn main() {
    println!("E7 / Theorems 6 & 7: optimally small λ=1 designs (v = k^m)\n");
    let widths = [6, 4, 4, 8, 8, 4, 10, 10];
    println!("{}", header(&["v", "k", "m", "b", "r", "λ", "Thm7 min", "optimal"], &widths));
    for (v, k, m) in [
        (4usize, 2usize, 2u32),
        (8, 2, 3),
        (16, 2, 4),
        (32, 2, 5),
        (9, 3, 2),
        (27, 3, 3),
        (81, 3, 4),
        (16, 4, 2),
        (64, 4, 3),
        (25, 5, 2),
        (125, 5, 3),
        (49, 7, 2),
        (64, 8, 2),
        (81, 9, 2),
        (121, 11, 2),
    ] {
        let c = theorem6_design(v, k);
        let min = bibd_min_blocks(v as u64, k as u64) as usize;
        assert_eq!(c.params.lambda, 1);
        assert_eq!(c.params.b, v * (v - 1) / (k * (k - 1)));
        assert_eq!(c.params.r, (v - 1) / (k - 1));
        assert_eq!(c.params.b, min, "Theorem 6 designs are optimally small");
        println!(
            "{}",
            row(&[&v, &k, &m, &c.params.b, &c.params.r, &c.params.lambda, &min, &"yes"], &widths)
        );
    }
    println!("\nnote: k = 4, 8, 9 are prime powers but not primes — these cases");
    println!("generalize Pietracaprina & Preparata, exactly as the paper claims.");
    println!("paper: b = v(v-1)/(k(k-1)), λ = 1, optimally small — confirmed.");
}
