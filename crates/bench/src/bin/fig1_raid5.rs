//! E1 — Fig. 1: data and parity units for full-width parity stripes
//! (RAID5). Reconstruction of any disk must read 100% of every survivor.

use pdl_bench::{f4, header, row};
use pdl_core::{raid5_layout, QualityReport};

fn main() {
    println!("E1 / Fig 1: full-width parity stripes (RAID5 baseline)\n");
    let l = raid5_layout(4, 4);
    println!("{}", l.ascii_art(8));
    println!("(cells show the stripe index; * marks the parity unit)\n");

    let widths = [4, 6, 10, 10, 14];
    println!("{}", header(&["v", "rows", "overhead", "recon", "balanced"], &widths));
    for v in [4usize, 8, 16, 32] {
        let rows = v * 2;
        let l = raid5_layout(v, rows);
        let q = QualityReport::measure(&l);
        println!(
            "{}",
            row(
                &[
                    &v,
                    &rows,
                    &f4(q.parity_overhead.1),
                    &f4(q.reconstruction_workload.1),
                    &q.parity_balanced(),
                ],
                &widths
            )
        );
        assert_eq!(q.reconstruction_workload, (1.0, 1.0), "RAID5 reads all survivors fully");
    }
    println!("\npaper: reconstruction workload = 1.0 for every pair — confirmed.");
}
