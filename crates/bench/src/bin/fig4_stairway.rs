//! E10 — Fig. 4 / Theorem 10: the stairway transformation for v = q+1.
//! Size kq(q−1), parity overhead exactly 1/k, reconstruction workload
//! exactly (k−1)/q for every pair.

use pdl_bench::{f4, header, row};
use pdl_core::{stairway_layout, QualityReport, StairwayParams};
use pdl_design::RingDesign;

fn main() {
    println!("E10 / Fig 4 + Theorem 10: stairway q → q+1\n");

    // Small illustration in the style of Fig. 4.
    let design = RingDesign::for_v_k(4, 3);
    let l = stairway_layout(&design, 5).unwrap();
    println!("q=4, k=3 → v=5 (size {}):", l.size());
    println!("{}", l.ascii_art(12));

    let widths = [4, 4, 4, 8, 10, 10, 10, 8];
    println!(
        "{}",
        header(&["q", "k", "v", "size", "overhead", "recon", "paper", "check"], &widths)
    );
    for (q, k) in [(4usize, 3usize), (5, 3), (7, 4), (8, 5), (9, 4), (13, 6), (16, 5)] {
        let v = q + 1;
        let design = RingDesign::for_v_k(q, k);
        let l = stairway_layout(&design, v).unwrap();
        let p = StairwayParams::solve(q, v).unwrap();
        assert_eq!(p.c, q + 1, "Theorem 10: c = q+1 copies");
        assert_eq!(l.size(), k * q * (q - 1), "Theorem 10: size = kq(q-1)");
        let q_m = QualityReport::measure(&l);
        let paper_recon = (k as f64 - 1.0) / q as f64;
        let ok = q_m.parity_balanced()
            && (q_m.parity_overhead.1 - 1.0 / k as f64).abs() < 1e-12
            && (q_m.reconstruction_workload.0 - paper_recon).abs() < 1e-12
            && q_m.reconstruction_balanced();
        assert!(ok, "q={q} k={k}");
        println!(
            "{}",
            row(
                &[
                    &q,
                    &k,
                    &v,
                    &l.size(),
                    &f4(q_m.parity_overhead.1),
                    &f4(q_m.reconstruction_workload.1),
                    &f4(paper_recon),
                    &"ok",
                ],
                &widths
            )
        );
    }
    println!("\npaper: size kq(q-1), overhead 1/k, recon exactly (k-1)/q — confirmed.");
}
