//! E3 — Fig. 3: the Holland–Gibson BIBD-based layout for v=4, k=3 —
//! k copies of the design with the parity position rotating per copy,
//! giving perfectly balanced parity at size k·r.

use pdl_bench::{f4, header, row};
use pdl_core::{holland_gibson_layout, parity_counts, QualityReport};
use pdl_design::complete_design;

fn main() {
    println!("E3 / Fig 3: BIBD-based layout (k-copy parity rotation), v=4, k=3\n");
    let d = complete_design(4, 3, 100);
    let l = holland_gibson_layout(&d);
    println!("{}", l.ascii_art(12));
    let q = QualityReport::measure(&l);
    println!("{q}");
    println!("parity units per disk: {:?}\n", parity_counts(&l));
    assert!(q.parity_balanced());
    assert!(q.reconstruction_balanced());

    println!("k-copy construction across designs:");
    let widths = [4, 4, 6, 6, 10, 10, 10];
    println!("{}", header(&["v", "k", "b", "size", "overhead", "recon", "balanced"], &widths));
    for (v, k) in [(4usize, 3usize), (7, 3), (9, 3), (13, 4), (16, 4)] {
        let c = pdl_design::theorem4_design(v, k);
        let l = holland_gibson_layout(&c.design);
        let q = QualityReport::measure(&l);
        println!(
            "{}",
            row(
                &[
                    &v,
                    &k,
                    &c.params.b,
                    &l.size(),
                    &f4(q.parity_overhead.1),
                    &f4(q.reconstruction_workload.1),
                    &(q.parity_balanced() && q.reconstruction_balanced()),
                ],
                &widths
            )
        );
        assert!(q.parity_balanced());
        assert!((q.parity_overhead.1 - 1.0 / k as f64).abs() < 1e-12);
    }
    println!("\npaper: k-copy rotation balances parity exactly at overhead 1/k — confirmed.");
}
