//! E18 — Section 5 extensions: distributed sparing balance, extendible
//! layouts (data movement of stairway extension vs regeneration), and
//! randomized-layout reconstruction-workload spread vs combinatorial
//! layouts.

use pdl_bench::{f4, header, row};
use pdl_core::{random_layout, relayout_cost, QualityReport, RingLayout, SparedLayout};
use pdl_design::RingDesign;

fn main() {
    println!("E18: Section 5 extensions\n");

    // --- Distributed sparing --------------------------------------------
    println!("(a) distributed sparing: spare units balanced by generalized Thm 14");
    let widths = [6, 4, 14, 14, 16];
    println!("{}", header(&["v", "k", "spares/disk", "rebuild wrts", "stranded"], &widths));
    for (v, k) in [(9usize, 4usize), (13, 4), (16, 5), (25, 6)] {
        let spared = SparedLayout::new(RingLayout::for_v_k(v, k).layout().clone()).unwrap();
        let counts = spared.spare_counts();
        let (lo, hi) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(hi - lo <= 1, "spares must balance within one");
        let plan = spared.rebuild_plan(0);
        let wc = plan.write_counts(v);
        let wmax = wc.iter().max().unwrap();
        println!(
            "{}",
            row(
                &[
                    &v,
                    &k,
                    &format!("[{lo},{hi}]"),
                    &format!("max {wmax}/disk"),
                    &format!("{} stripes", plan.stranded.len()),
                ],
                &widths
            )
        );
    }

    // --- Extendible layouts ---------------------------------------------
    println!("\n(b) extendible layouts: stairway extension vs regeneration");
    let widths = [8, 8, 16, 16];
    println!("{}", header(&["q", "v", "stairway moved", "regen moved"], &widths));
    for (q, k, v) in [(8usize, 3usize, 9usize), (8, 3, 11), (9, 3, 12), (13, 4, 16)] {
        let design = RingDesign::for_v_k(q, k);
        let rep = pdl_core::extend_via_stairway(&design, v).unwrap();
        let base = RingLayout::new(design.clone());
        let regen = RingLayout::for_v_k(v, k);
        let regen_cost = relayout_cost(base.layout(), regen.layout());
        assert!(rep.moved_fraction < regen_cost);
        println!("{}", row(&[&q, &v, &f4(rep.moved_fraction), &f4(regen_cost)], &widths));
    }

    // --- Randomized layouts ---------------------------------------------
    println!("\n(c) randomized (Merchant-Yu-style) layouts: workload spread");
    let widths = [22, 14, 20];
    println!("{}", header(&["layout", "parity Δ", "recon workload"], &widths));
    let rl = RingLayout::for_v_k(13, 4);
    let qr = QualityReport::measure(rl.layout());
    println!(
        "{}",
        row(
            &[
                &"ring v=13,k=4",
                &format!("{}", qr.parity_units.1 - qr.parity_units.0),
                &format!(
                    "[{},{}]",
                    f4(qr.reconstruction_workload.0),
                    f4(qr.reconstruction_workload.1)
                ),
            ],
            &widths
        )
    );
    let mut rand_spread = 0.0f64;
    for seed in 0..3u64 {
        let l = random_layout(13, 4, 48, seed).unwrap();
        let q = QualityReport::measure(&l);
        rand_spread = rand_spread.max(q.reconstruction_workload.1 - q.reconstruction_workload.0);
        println!(
            "{}",
            row(
                &[
                    &format!("random seed={seed}"),
                    &format!("{}", q.parity_units.1 - q.parity_units.0),
                    &format!(
                        "[{},{}]",
                        f4(q.reconstruction_workload.0),
                        f4(q.reconstruction_workload.1)
                    ),
                ],
                &widths
            )
        );
    }
    let ring_spread = qr.reconstruction_workload.1 - qr.reconstruction_workload.0;
    assert!(ring_spread < 1e-12, "BIBD layout has zero spread");
    assert!(rand_spread > 0.0, "random layouts must show spread");
    println!("\npaper (Section 5): randomized methods spread reconstruction load only");
    println!("approximately; combinatorial designs achieve it exactly — confirmed.");
}
