//! Criterion bench: `pdl-store` throughput on the in-memory backend
//! across layout families — sequential reads (stripe-local addresses),
//! random block reads, sequential stripe-aligned writes (the zero-read
//! full-stripe path), random small writes (read-modify-write), and
//! full-rebuild time. RAID5 and ring-declustered layouts side by side:
//! the data path costs the same, the rebuild does not. A P+Q group
//! prices double parity: the extra Q update on writes, the
//! two-erasure decode on doubly-degraded reads, and the two-phase
//! double rebuild.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pdl_core::{raid5_layout, DoubleParityLayout, Layout, RingLayout, StripeUnit};
use pdl_store::{BlockStore, CachePolicy, MemBackend, Rebuilder};
use std::hint::black_box;

const UNIT: usize = 4096;

fn families() -> Vec<(&'static str, Layout)> {
    vec![
        ("raid5_v9", raid5_layout(9, 16)),
        ("ring_v9_k4", RingLayout::for_v_k(9, 4).layout().clone()),
        ("ring_v13_k4", RingLayout::for_v_k(13, 4).layout().clone()),
    ]
}

fn pq_families() -> Vec<(&'static str, DoubleParityLayout)> {
    vec![
        (
            "ring_v9_k4",
            DoubleParityLayout::new(RingLayout::for_v_k(9, 4).layout().clone()).unwrap(),
        ),
        (
            "ring_v13_k4",
            DoubleParityLayout::new(RingLayout::for_v_k(13, 4).layout().clone()).unwrap(),
        ),
    ]
}

fn make_store(layout: &Layout) -> BlockStore<MemBackend> {
    // Enough layout copies that every family holds ≥ 256 blocks (the
    // per-iteration transfer size below).
    let backend = MemBackend::new(layout.v() + 1, 4 * layout.size(), UNIT);
    BlockStore::new(layout.clone(), backend).unwrap()
}

fn make_pq_store(dp: &DoubleParityLayout) -> BlockStore<MemBackend> {
    let backend = MemBackend::new(dp.layout().v() + 2, 4 * dp.layout().size(), UNIT);
    BlockStore::new_pq(dp.clone(), backend).unwrap()
}

fn bench_reads(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_read");
    for (name, layout) in families() {
        let store = make_store(&layout);
        let blocks = store.blocks();
        g.throughput(Throughput::Bytes((256 * UNIT) as u64));
        g.bench_with_input(BenchmarkId::new("sequential", name), &store, |b, s| {
            let mut buf = vec![0u8; UNIT];
            b.iter(|| {
                for addr in 0..256usize {
                    s.read_block(black_box(addr % blocks), &mut buf).unwrap();
                }
            })
        });
        // The coalesced multi-block path: same bytes, one vectored
        // backend call per per-disk run instead of one per block.
        g.bench_with_input(BenchmarkId::new("sequential_vectored", name), &store, |b, s| {
            let span = 256usize.min(blocks);
            let mut buf = vec![0u8; span * UNIT];
            b.iter(|| s.read_blocks(black_box(0), &mut buf).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("random", name), &store, |b, s| {
            let mut buf = vec![0u8; UNIT];
            b.iter(|| {
                for i in 0..256usize {
                    let addr = i.wrapping_mul(2654435761) % blocks;
                    s.read_block(black_box(addr), &mut buf).unwrap();
                }
            })
        });
    }
    g.finish();
}

fn bench_writes(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_write");
    for (name, layout) in families() {
        let store = make_store(&layout);
        let blocks = store.blocks();
        let bulk = vec![0xabu8; 256 * UNIT];
        g.throughput(Throughput::Bytes((256 * UNIT) as u64));
        g.bench_function(BenchmarkId::new("seq_full_stripe", name), |b| {
            b.iter(|| store.write_blocks(0, black_box(&bulk)).unwrap())
        });
        let block = vec![0xcdu8; UNIT];
        g.bench_function(BenchmarkId::new("random_small_rmw", name), |b| {
            b.iter(|| {
                for i in 0..256usize {
                    let addr = i.wrapping_mul(2654435761) % blocks;
                    store.write_block(black_box(addr), &block).unwrap();
                }
            })
        });
    }
    g.finish();
}

fn bench_degraded_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_degraded_read");
    for (name, layout) in families() {
        let store = make_store(&layout);
        store.fail_disk(0).unwrap();
        let blocks = store.blocks();
        g.throughput(Throughput::Bytes((256 * UNIT) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(name), &store, |b, s| {
            let mut buf = vec![0u8; UNIT];
            b.iter(|| {
                for i in 0..256usize {
                    let addr = i.wrapping_mul(2654435761) % blocks;
                    s.read_block(black_box(addr), &mut buf).unwrap();
                }
            })
        });
    }
    g.finish();
}

fn bench_rebuild(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_rebuild_full");
    for (name, layout) in families() {
        let spare = layout.v();
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                // Setup is part of the measured loop (criterion's
                // stand-in has no iter_batched); rebuild dominates.
                let store = make_store(&layout);
                store.fail_disk(1).unwrap();
                let report = Rebuilder::new(4).rebuild(&store, spare).unwrap();
                black_box(report.units_rebuilt)
            })
        });
    }
    g.finish();
}

/// The pre-LUT `StripeMap` address arithmetic, replicated verbatim:
/// three separate per-field tables, each accessor paying its own
/// `addr / len` or `addr % len` hardware divide — four accessor calls
/// (the write path's former cost) per resolved address.
struct LegacyStripeMap {
    size: usize,
    table: Vec<StripeUnit>,
    stripe_of: Vec<u32>,
    slot_of: Vec<u32>,
}

impl LegacyStripeMap {
    fn build(layout: &Layout) -> LegacyStripeMap {
        let mut table = Vec::new();
        let mut stripe_of = Vec::new();
        let mut slot_of = Vec::new();
        for (si, stripe) in layout.stripes().iter().enumerate() {
            let p = stripe.parity_slot();
            for (slot, &u) in stripe.units().iter().enumerate() {
                if slot == p {
                    continue;
                }
                table.push(u);
                stripe_of.push(si as u32);
                slot_of.push(slot as u32);
            }
        }
        LegacyStripeMap { size: layout.size(), table, stripe_of, slot_of }
    }

    fn locate(&self, addr: usize) -> StripeUnit {
        let copy = addr / self.table.len();
        let base = self.table[addr % self.table.len()];
        StripeUnit { disk: base.disk, offset: base.offset + (copy * self.size) as u32 }
    }

    fn stripe_of(&self, addr: usize) -> usize {
        self.stripe_of[addr % self.table.len()] as usize
    }

    fn slot_of(&self, addr: usize) -> usize {
        self.slot_of[addr % self.table.len()] as usize
    }

    fn copy_of(&self, addr: usize) -> usize {
        addr / self.table.len()
    }
}

/// `StripeMap` address resolution: the pre-LUT arithmetic (four
/// accessors, six divides) vs the precomputed single-index
/// `locate_full` — the mapping cost every read/write/rebuild pays
/// per block.
fn bench_stripe_map(c: &mut Criterion) {
    let mut g = c.benchmark_group("stripe_map_locate");
    for (name, layout) in families() {
        let store = make_store(&layout);
        let smap = store.stripe_map();
        let legacy = LegacyStripeMap::build(&layout);
        let blocks = legacy.table.len() * 4;
        g.throughput(Throughput::Elements(4096));
        g.bench_function(BenchmarkId::new("legacy_arith", name), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for i in 0..4096usize {
                    let addr = i.wrapping_mul(2654435761) % blocks;
                    let u = legacy.locate(black_box(addr));
                    acc = acc
                        .wrapping_add(u.disk as usize + u.offset as usize)
                        .wrapping_add(legacy.stripe_of(addr))
                        .wrapping_add(legacy.slot_of(addr))
                        .wrapping_add(legacy.copy_of(addr));
                }
                black_box(acc)
            })
        });
        g.bench_function(BenchmarkId::new("lut", name), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for i in 0..4096usize {
                    let addr = i.wrapping_mul(2654435761) % blocks;
                    let m = smap.locate_full(black_box(addr));
                    acc = acc
                        .wrapping_add(m.unit.disk as usize + m.unit.offset as usize)
                        .wrapping_add(m.stripe)
                        .wrapping_add(m.slot)
                        .wrapping_add(m.copy);
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

/// Small-write combining: the same random-small-write hammer with the
/// write-back cache off vs on (flush included), on the mem backend.
fn bench_write_back_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_write_back");
    for (name, layout) in families() {
        let store = make_store(&layout);
        let blocks = store.blocks();
        let block = vec![0xcdu8; UNIT];
        g.throughput(Throughput::Bytes((256 * UNIT) as u64));
        g.bench_function(BenchmarkId::new("small_write_through", name), |b| {
            b.iter(|| {
                for i in 0..256usize {
                    let addr = i.wrapping_mul(2654435761) % blocks;
                    store.write_block(black_box(addr), &block).unwrap();
                }
            })
        });
        g.bench_function(BenchmarkId::new("small_write_back", name), |b| {
            b.iter(|| {
                store.set_cache_policy(CachePolicy::write_back()).unwrap();
                for i in 0..256usize {
                    let addr = i.wrapping_mul(2654435761) % blocks;
                    store.write_block(black_box(addr), &block).unwrap();
                }
                store.flush().unwrap();
                store.set_cache_policy(CachePolicy::WriteThrough).unwrap();
            })
        });
    }
    g.finish();
}

fn bench_pq(c: &mut Criterion) {
    // Small-write RMW under double parity (3 reads + 3 writes).
    let mut g = c.benchmark_group("store_pq_write");
    for (name, dp) in pq_families() {
        let store = make_pq_store(&dp);
        let blocks = store.blocks();
        let block = vec![0xcdu8; UNIT];
        g.throughput(Throughput::Bytes((256 * UNIT) as u64));
        g.bench_function(BenchmarkId::new("random_small_rmw", name), |b| {
            b.iter(|| {
                for i in 0..256usize {
                    let addr = i.wrapping_mul(2654435761) % blocks;
                    store.write_block(black_box(addr), &block).unwrap();
                }
            })
        });
    }
    g.finish();

    // Random reads while TWO disks are down: the two-erasure decode.
    let mut g = c.benchmark_group("store_pq_double_degraded_read");
    for (name, dp) in pq_families() {
        let store = make_pq_store(&dp);
        store.fail_disk(0).unwrap();
        store.fail_disk(3).unwrap();
        let blocks = store.blocks();
        g.throughput(Throughput::Bytes((256 * UNIT) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(name), &store, |b, s| {
            let mut buf = vec![0u8; UNIT];
            b.iter(|| {
                for i in 0..256usize {
                    let addr = i.wrapping_mul(2654435761) % blocks;
                    s.read_block(black_box(addr), &mut buf).unwrap();
                }
            })
        });
    }
    g.finish();

    // Two-phase rebuild of both failed disks onto two spares.
    let mut g = c.benchmark_group("store_pq_double_rebuild");
    for (name, dp) in pq_families() {
        let spares = [dp.layout().v(), dp.layout().v() + 1];
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                // Setup is part of the measured loop (criterion's
                // stand-in has no iter_batched); rebuild dominates.
                let store = make_pq_store(&dp);
                store.fail_disk(1).unwrap();
                store.fail_disk(5).unwrap();
                let reports = Rebuilder::new(4).rebuild_all(&store, &spares).unwrap();
                black_box(reports.len())
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_reads,
    bench_writes,
    bench_degraded_read,
    bench_rebuild,
    bench_pq,
    bench_stripe_map,
    bench_write_back_cache
}
criterion_main!(benches);
