//! Criterion bench: layout metric computation (Conditions 2 & 3) and
//! layout construction, including the stairway transformation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdl_core::{stairway_layout, QualityReport, RingLayout};
use pdl_design::RingDesign;
use std::hint::black_box;

fn bench_quality_report(c: &mut Criterion) {
    let mut g = c.benchmark_group("quality_report");
    for &(v, k) in &[(9usize, 4usize), (25, 6), (49, 8)] {
        let rl = RingLayout::for_v_k(v, k);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("v{v}_k{k}")),
            rl.layout(),
            |b, l| b.iter(|| QualityReport::measure(black_box(l))),
        );
    }
    g.finish();
}

fn bench_layout_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("layout_build");
    for &(v, k) in &[(9usize, 4usize), (25, 6), (49, 8)] {
        g.bench_with_input(
            BenchmarkId::new("ring", format!("v{v}_k{k}")),
            &(v, k),
            |b, &(v, k)| b.iter(|| RingLayout::for_v_k(black_box(v), black_box(k))),
        );
    }
    for &(q, k, v) in &[(8usize, 3usize, 9usize), (9, 4, 12), (16, 5, 20)] {
        let design = RingDesign::for_v_k(q, k);
        g.bench_with_input(BenchmarkId::new("stairway", format!("q{q}_v{v}")), &design, |b, d| {
            b.iter(|| stairway_layout(black_box(d), v).unwrap())
        });
    }
    g.finish();
}

fn bench_disk_removal(c: &mut Criterion) {
    let mut g = c.benchmark_group("disk_removal");
    let rl = RingLayout::for_v_k(17, 9);
    g.bench_function("thm8_single", |b| b.iter(|| black_box(&rl).remove_disk(3)));
    g.bench_function("thm9_triple", |b| {
        b.iter(|| black_box(&rl).remove_disks(&[1, 5, 9]).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_quality_report, bench_layout_construction, bench_disk_removal
}
criterion_main!(benches);
