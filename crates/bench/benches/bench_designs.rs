//! Criterion bench: block-design construction throughput — full ring
//! designs (Theorem 1) and the reduced constructions (Theorems 4/5/6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_ring_designs(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring_design");
    for &(v, k) in &[(9usize, 4usize), (25, 6), (49, 8), (81, 10)] {
        g.bench_with_input(
            BenchmarkId::new("full", format!("v{v}_k{k}")),
            &(v, k),
            |b, &(v, k)| b.iter(|| pdl_design::RingDesign::for_v_k(black_box(v), black_box(k))),
        );
    }
    g.finish();
}

fn bench_reduced_designs(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduced_design");
    for &(v, k) in &[(13usize, 4usize), (25, 5), (27, 3)] {
        g.bench_with_input(
            BenchmarkId::new("thm4", format!("v{v}_k{k}")),
            &(v, k),
            |b, &(v, k)| b.iter(|| pdl_design::theorem4_design(black_box(v), black_box(k))),
        );
        g.bench_with_input(
            BenchmarkId::new("thm5", format!("v{v}_k{k}")),
            &(v, k),
            |b, &(v, k)| b.iter(|| pdl_design::theorem5_design(black_box(v), black_box(k))),
        );
    }
    for &(v, k) in &[(16usize, 4usize), (27, 3), (64, 8)] {
        g.bench_with_input(
            BenchmarkId::new("thm6", format!("v{v}_k{k}")),
            &(v, k),
            |b, &(v, k)| b.iter(|| pdl_design::theorem6_design(black_box(v), black_box(k))),
        );
    }
    g.finish();
}

fn bench_field_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("finite_field");
    for &q in &[16u64, 81, 256, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| pdl_algebra::FiniteField::new(black_box(q)))
        });
    }
    g.finish();
}

/// Ablation: exp/log-table multiplication vs schoolbook polynomial
/// multiplication in GF(256) — the table justification.
fn bench_field_mul_ablation(c: &mut Criterion) {
    let f = pdl_algebra::FiniteField::new(256);
    let mut g = c.benchmark_group("gf256_mul_ablation");
    g.bench_function("exp_log_tables", |b| {
        b.iter(|| {
            let mut acc = 1usize;
            for x in 1..256usize {
                acc = f.mul(black_box(acc), black_box(x)) | 1;
            }
            acc
        })
    });
    g.bench_function("schoolbook", |b| {
        b.iter(|| {
            let mut acc = 1usize;
            for x in 1..256usize {
                acc = f.mul_schoolbook(black_box(acc), black_box(x)) | 1;
            }
            acc
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_ring_designs,
    bench_reduced_designs,
    bench_field_construction,
    bench_field_mul_ablation
}
criterion_main!(benches);
