//! Criterion bench: flow-based parity assignment scaling (Theorem 14)
//! as the number of stripes grows — the cost of the Section 4 method.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pdl_core::{single_copy_layout, RingLayout, StripePartition};
use std::hint::black_box;

fn bench_parity_assignment(c: &mut Criterion) {
    let mut g = c.benchmark_group("parity_flow");
    for &(v, k) in &[(9usize, 4usize), (17, 4), (25, 4), (37, 4)] {
        let rl = RingLayout::for_v_k(v, k);
        let part = StripePartition::from_layout(rl.layout());
        g.throughput(Throughput::Elements(rl.layout().b() as u64));
        g.bench_with_input(
            BenchmarkId::new("ring", format!("v{v}_b{}", rl.layout().b())),
            &part,
            |b, part| b.iter(|| black_box(part).assign_parity().unwrap()),
        );
    }
    g.finish();
}

fn bench_generalized_assignment(c: &mut Criterion) {
    let mut g = c.benchmark_group("distinguished_units");
    let design = pdl_design::theorem4_design(13, 4).design;
    let l = single_copy_layout(&design, 0);
    let part = StripePartition::from_layout(&l);
    for &cs in &[1usize, 2, 3] {
        let counts = vec![cs; part.stripes().len()];
        g.bench_with_input(BenchmarkId::from_parameter(cs), &counts, |b, counts| {
            b.iter(|| black_box(&part).assign_distinguished(black_box(counts)).unwrap())
        });
    }
    g.finish();
}

fn bench_raw_maxflow(c: &mut Criterion) {
    use pdl_flow::FlowNetwork;
    let mut g = c.benchmark_group("dinic");
    for &n in &[50usize, 200, 800] {
        // layered random-ish graph built deterministically
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut net = FlowNetwork::new(n + 2);
                for i in 0..n {
                    net.add_edge(n, i, ((i * 7) % 5 + 1) as i64);
                    net.add_edge(i, n + 1, ((i * 11) % 4 + 1) as i64);
                    if i + 1 < n {
                        net.add_edge(i, i + 1, 3);
                    }
                }
                black_box(net.max_flow(n, n + 1))
            })
        });
    }
    g.finish();
}

/// Ablation: the paper's two-phase G′ procedure vs the generic
/// lower-bound reduction, on identical partitions.
fn bench_two_phase_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("parity_method_ablation");
    for &(v, k) in &[(13usize, 4usize), (25, 4)] {
        let rl = RingLayout::for_v_k(v, k);
        let part = StripePartition::from_layout(rl.layout());
        g.bench_with_input(BenchmarkId::new("generic_lower_bounds", v), &part, |b, p| {
            b.iter(|| black_box(p).assign_parity().unwrap())
        });
        g.bench_with_input(BenchmarkId::new("paper_two_phase", v), &part, |b, p| {
            b.iter(|| black_box(p).assign_parity_two_phase().unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_parity_assignment,
    bench_generalized_assignment,
    bench_raw_maxflow,
    bench_two_phase_ablation
}
criterion_main!(benches);
