//! Criterion bench: simulator event throughput — normal-mode workload
//! processing and full rebuild runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdl_core::RingLayout;
use pdl_sim::{simulate, simulate_rebuild, RebuildTarget, SimConfig, StopCondition, Workload};
use std::hint::black_box;

fn bench_foreground(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_foreground");
    for &(v, k) in &[(9usize, 4usize), (25, 6)] {
        let rl = RingLayout::for_v_k(v, k);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("v{v}_k{k}")),
            rl.layout(),
            |b, l| {
                b.iter(|| {
                    let cfg = SimConfig {
                        seed: 1,
                        workload: Workload { arrivals_per_sec: 200.0, ..Default::default() },
                        stop: StopCondition::Duration(2_000_000),
                        ..Default::default()
                    };
                    black_box(simulate(l, cfg))
                })
            },
        );
    }
    g.finish();
}

fn bench_rebuild(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_rebuild");
    for &(v, k) in &[(9usize, 3usize), (17, 5)] {
        let rl = RingLayout::for_v_k(v, k);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("v{v}_k{k}")),
            rl.layout(),
            |b, l| b.iter(|| black_box(simulate_rebuild(l, 0, RebuildTarget::ReadOnly, 3))),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_foreground, bench_rebuild
}
criterion_main!(benches);
