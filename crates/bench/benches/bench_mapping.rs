//! Criterion bench: the Condition-4 address map — one table lookup plus
//! O(1) arithmetic per translation. The paper's feasibility criterion
//! hinges on this being cheap and the table small.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pdl_core::{AddressMapper, RingLayout};
use std::hint::black_box;

fn bench_locate(c: &mut Criterion) {
    let mut g = c.benchmark_group("address_map_locate");
    for &(v, k) in &[(9usize, 4usize), (25, 6), (81, 10)] {
        let rl = RingLayout::for_v_k(v, k);
        let m = AddressMapper::new(rl.layout());
        let n = m.data_units_per_copy();
        g.throughput(Throughput::Elements(1024));
        g.bench_with_input(BenchmarkId::from_parameter(format!("v{v}_k{k}")), &m, |b, m| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..1024usize {
                    let u = m.locate(black_box(i * 2654435761 % (8 * n)));
                    acc = acc.wrapping_add(u.disk as u64 + u.offset as u64);
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_mapper_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("address_map_build");
    for &(v, k) in &[(9usize, 4usize), (49, 8)] {
        let rl = RingLayout::for_v_k(v, k);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("v{v}_k{k}")),
            rl.layout(),
            |b, l| b.iter(|| AddressMapper::new(black_box(l))),
        );
    }
    g.finish();
}

fn bench_parity_lookup(c: &mut Criterion) {
    let rl = RingLayout::for_v_k(25, 6);
    let l = rl.layout();
    let m = AddressMapper::new(l);
    let n = m.data_units_per_copy();
    c.bench_function("address_map_parity_of", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1024usize {
                let p = m.parity_of(black_box(i % n), l);
                acc = acc.wrapping_add(p.disk as u64);
            }
            acc
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_locate, bench_mapper_build, bench_parity_lookup
}
criterion_main!(benches);
