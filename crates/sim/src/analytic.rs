//! Queue-free analytic evaluation of layouts under canonical workloads —
//! closed-form cross-checks for the event simulator, and fast predictors
//! for the parameter sweeps in the experiment binaries.

use pdl_core::{Layout, UnitRole};

/// Expected disk-IO share per disk for a uniformly random single-unit
/// *write* (read-modify-write: 2 IOs on the data disk + 2 on the parity
/// disk). Returned values sum to 4.
///
/// The disk with the largest share is the paper's Condition-2
/// bottleneck: "the disk with the most parity units will be the worst
/// IO bottleneck for any single set of writes."
pub fn expected_write_load(layout: &Layout) -> Vec<f64> {
    let n = layout.data_unit_count() as f64;
    let mut load = vec![0f64; layout.v()];
    for stripe in layout.stripes() {
        let data = stripe.len() - 1;
        for u in stripe.data_units() {
            load[u.disk as usize] += 2.0 / n;
        }
        load[stripe.parity_unit().disk as usize] += 2.0 * data as f64 / n;
    }
    load
}

/// Ratio of the hottest disk's expected write load to the array mean —
/// 1.0 is perfectly balanced.
pub fn write_bottleneck_ratio(layout: &Layout) -> f64 {
    let load = expected_write_load(layout);
    let mean = load.iter().sum::<f64>() / load.len() as f64;
    load.iter().cloned().fold(0.0, f64::max) / mean
}

/// Expected disk-IO share per disk for a uniformly random single-unit
/// *read* in degraded mode with `failed` down: reads of surviving units
/// go to their disk, reads of lost units fan out to the stripe's
/// survivors.
pub fn expected_degraded_read_load(layout: &Layout, failed: usize) -> Vec<f64> {
    let n = layout.data_unit_count() as f64;
    let mut load = vec![0f64; layout.v()];
    for stripe in layout.stripes() {
        for u in stripe.data_units() {
            if u.disk as usize == failed {
                for w in stripe.units() {
                    if w.disk as usize != failed {
                        load[w.disk as usize] += 1.0 / n;
                    }
                }
            } else {
                load[u.disk as usize] += 1.0 / n;
            }
        }
    }
    load
}

/// Total units that must be read to reconstruct `failed` (all stripes
/// crossing it, `k_s − 1` survivors each).
pub fn reconstruction_total_reads(layout: &Layout, failed: usize) -> usize {
    layout.stripes().iter().filter(|s| s.crosses(failed)).map(|s| s.len() - 1).sum()
}

/// Parity units per disk as fractions of the disk — convenience
/// re-export of the core metric for sweep binaries.
pub fn parity_fraction(layout: &Layout) -> Vec<f64> {
    let mut counts = vec![0usize; layout.v()];
    for (d, count) in counts.iter_mut().enumerate() {
        for o in 0..layout.size() {
            if layout.role(d, o) == UnitRole::Parity {
                *count += 1;
            }
        }
    }
    counts.iter().map(|&c| c as f64 / layout.size() as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_core::{raid5_layout, RingLayout};

    #[test]
    fn write_load_sums_to_four() {
        let rl = RingLayout::for_v_k(7, 3);
        let load = expected_write_load(rl.layout());
        let total: f64 = load.iter().sum();
        assert!((total - 4.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn balanced_layout_has_unit_bottleneck() {
        let rl = RingLayout::for_v_k(9, 3);
        let ratio = write_bottleneck_ratio(rl.layout());
        assert!((ratio - 1.0).abs() < 1e-9, "ring layouts are perfectly balanced: {ratio}");
    }

    #[test]
    fn imbalanced_layout_has_higher_bottleneck() {
        use pdl_core::single_copy_layout;
        use pdl_design::complete_design;
        let l = single_copy_layout(&complete_design(5, 3, 1000), 0);
        let ratio = write_bottleneck_ratio(&l);
        assert!(ratio > 1.05, "fixed-slot parity must bottleneck: {ratio}");
    }

    #[test]
    fn degraded_read_load_conserves() {
        let rl = RingLayout::for_v_k(8, 3);
        let l = rl.layout();
        let failed = 3;
        let load = expected_degraded_read_load(l, failed);
        assert_eq!(load[failed], 0.0);
        // total load = 1 (each surviving-unit read) + extra fan-out for
        // lost units: fraction_lost · (k-1) − fraction_lost
        let n = l.data_unit_count() as f64;
        let lost: f64 = l
            .stripes()
            .iter()
            .flat_map(|s| s.data_units())
            .filter(|u| u.disk as usize == failed)
            .count() as f64
            / n;
        let expected_total = (1.0 - lost) + lost * 2.0; // k-1 = 2 reads per lost unit
        let total: f64 = load.iter().sum();
        assert!((total - expected_total).abs() < 1e-9);
    }

    #[test]
    fn reconstruction_reads_formula() {
        // ring layout: r = k(v-1) crossing stripes, k-1 reads each.
        let rl = RingLayout::for_v_k(9, 4);
        assert_eq!(reconstruction_total_reads(rl.layout(), 5), 4 * 8 * 3);
        // RAID5: every stripe crosses, v-1 reads each.
        let l = raid5_layout(6, 10);
        assert_eq!(reconstruction_total_reads(&l, 0), 10 * 5);
    }

    #[test]
    fn parity_fraction_matches_core_metric() {
        let rl = RingLayout::for_v_k(7, 3);
        let f = parity_fraction(rl.layout());
        for x in f {
            assert!((x - 1.0 / 3.0).abs() < 1e-12);
        }
    }
}
