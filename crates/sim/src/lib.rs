//! # pdl-sim
//!
//! Event-driven disk-array load and reconstruction simulator — the
//! stand-in for the Holland & Gibson simulation software the paper's
//! Section 5 planned to use. Simulates seeded Poisson workloads over any
//! [`pdl_core::Layout`] in normal, degraded, and rebuilding modes, with
//! dedicated-spare or distributed-sparing reconstruction, plus analytic
//! (queue-free) predictors for cross-checking.
//!
//! ```
//! use pdl_core::RingLayout;
//! use pdl_sim::{simulate_rebuild, RebuildTarget, rebuild_reads_match_layout};
//!
//! let rl = RingLayout::for_v_k(7, 3);
//! let res = simulate_rebuild(rl.layout(), 0, RebuildTarget::ReadOnly, 42);
//! assert!(res.rebuild_finished_at.is_some());
//! assert!(rebuild_reads_match_layout(rl.layout(), 0, &res));
//! ```

#![warn(missing_docs)]

pub mod analytic;
pub mod engine;
pub mod model;
pub mod trace;
pub mod vulnerability;

pub use analytic::{
    expected_degraded_read_load, expected_write_load, parity_fraction, reconstruction_total_reads,
    write_bottleneck_ratio,
};
pub use engine::{rebuild_reads_match_layout, simulate, simulate_rebuild, ArraySim, SimResult};
pub use model::{
    AddressDist, DiskModel, IoKind, RebuildPolicy, RebuildTarget, Scheduling, SeekModel, SimConfig,
    StopCondition, Workload,
};
pub use trace::{Trace, TraceOp};
pub use vulnerability::{second_failure_loss, worst_second_failure, DataLossReport};
