//! Workload traces: a concrete, replayable sequence of block-level
//! operations shared between the event simulator and the byte-level
//! block store (`pdl-store`).
//!
//! The simulator samples its accesses on the fly from a [`Workload`];
//! this module materializes the same sampling process into a [`Trace`]
//! so the identical access pattern can be replayed against real bytes
//! (and, being plain data, archived or diffed between runs).

use crate::model::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One operation of a trace: a block-level access (addresses and
/// lengths in logical data blocks, the simulator's "units", not
/// bytes) or a fault event (disk failure, transient recovery, rebuild
/// onto a spare) — so a trace can script an entire failure/recovery
/// scenario, not just its IO.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// Read `len` blocks starting at logical block `addr`.
    Read {
        /// Starting logical block address.
        addr: usize,
        /// Number of blocks.
        len: usize,
    },
    /// Write `len` blocks starting at logical block `addr`.
    Write {
        /// Starting logical block address.
        addr: usize,
        /// Number of blocks.
        len: usize,
    },
    /// Fail a logical disk (subsequent IO runs degraded).
    Fail {
        /// The logical disk to fail.
        disk: usize,
    },
    /// Clear a *transient* failure: the disk returns with its contents
    /// intact (no rebuild).
    Restore {
        /// The logical disk to restore.
        disk: usize,
    },
    /// Rebuild the lowest-numbered failed disk onto a spare.
    Rebuild {
        /// Physical disk to rebuild onto.
        spare: usize,
    },
}

impl TraceOp {
    /// Starting address of a block op; 0 for fault events.
    pub fn addr(&self) -> usize {
        match *self {
            TraceOp::Read { addr, .. } | TraceOp::Write { addr, .. } => addr,
            _ => 0,
        }
    }

    /// Length in blocks of a block op; 0 for fault events.
    pub fn len(&self) -> usize {
        match *self {
            TraceOp::Read { len, .. } | TraceOp::Write { len, .. } => len,
            _ => 0,
        }
    }

    /// True for zero-length block ops (never produced by the
    /// generator) and for fault events (which transfer no blocks).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if this is a write.
    pub fn is_write(&self) -> bool {
        matches!(self, TraceOp::Write { .. })
    }

    /// True for fault events (fail / restore / rebuild).
    pub fn is_fault_event(&self) -> bool {
        matches!(self, TraceOp::Fail { .. } | TraceOp::Restore { .. } | TraceOp::Rebuild { .. })
    }
}

/// A replayable access pattern over a logical block space.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// Operations in arrival order.
    pub ops: Vec<TraceOp>,
}

impl Trace {
    /// Materializes `count` operations of `workload` over a space of
    /// `blocks` logical blocks, using the same sampling primitives as
    /// the event simulator (address distribution, size range,
    /// read/write mix, alignment). Deterministic per seed.
    pub fn from_workload(workload: &Workload, blocks: usize, count: usize, seed: u64) -> Trace {
        assert!(blocks > 0, "trace needs a nonempty block space");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ops = Vec::with_capacity(count);
        for _ in 0..count {
            let len = workload.request_size(&mut rng).min(blocks);
            let mut addr = workload.addresses.sample(blocks, &mut rng).min(blocks - len);
            if workload.aligned && len > 0 {
                addr = addr / len * len;
            }
            ops.push(if rng.random_bool(workload.read_fraction) {
                TraceOp::Read { addr, len }
            } else {
                TraceOp::Write { addr, len }
            });
        }
        Trace { ops }
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the trace has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total blocks touched by reads and by writes, respectively
    /// (fault events transfer no blocks).
    pub fn volume(&self) -> (usize, usize) {
        let mut r = 0;
        let mut w = 0;
        for op in &self.ops {
            match op {
                TraceOp::Read { len, .. } => r += len,
                TraceOp::Write { len, .. } => w += len,
                _ => {}
            }
        }
        (r, w)
    }

    /// Appends an operation (chainable; handy for scripting fault
    /// scenarios onto a generated workload).
    pub fn then(mut self, op: TraceOp) -> Trace {
        self.ops.push(op);
        self
    }

    /// Number of fault events (fail / restore / rebuild) in the trace.
    pub fn fault_events(&self) -> usize {
        self.ops.iter().filter(|o| o.is_fault_event()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AddressDist;

    #[test]
    fn deterministic_per_seed() {
        let w = Workload::default();
        let a = Trace::from_workload(&w, 100, 50, 7);
        let b = Trace::from_workload(&w, 100, 50, 7);
        assert_eq!(a, b);
        let c = Trace::from_workload(&w, 100, 50, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn ops_stay_in_bounds() {
        let w = Workload {
            request_units: (1, 9),
            addresses: AddressDist::HotCold { hot_access: 0.8, hot_space: 0.2 },
            ..Workload::default()
        };
        let t = Trace::from_workload(&w, 64, 500, 3);
        assert_eq!(t.len(), 500);
        for op in &t.ops {
            assert!(!op.is_empty());
            assert!(op.addr() + op.len() <= 64, "op {op:?} out of bounds");
        }
    }

    #[test]
    fn read_fraction_respected() {
        let w = Workload { read_fraction: 0.75, ..Workload::default() };
        let t = Trace::from_workload(&w, 100, 4000, 11);
        let writes = t.ops.iter().filter(|o| o.is_write()).count();
        assert!((800..1200).contains(&writes), "writes {writes}");
    }

    #[test]
    fn aligned_workload_aligns() {
        let w = Workload { request_units: (4, 4), aligned: true, ..Workload::default() };
        let t = Trace::from_workload(&w, 64, 200, 5);
        for op in &t.ops {
            assert_eq!(op.addr() % 4, 0);
            assert_eq!(op.len(), 4);
        }
    }

    #[test]
    fn volume_sums() {
        let t = Trace {
            ops: vec![TraceOp::Read { addr: 0, len: 3 }, TraceOp::Write { addr: 1, len: 2 }],
        };
        assert_eq!(t.volume(), (3, 2));
    }

    #[test]
    fn fault_events_script_onto_workloads() {
        let t = Trace::from_workload(&Workload::default(), 100, 10, 3)
            .then(TraceOp::Fail { disk: 2 })
            .then(TraceOp::Read { addr: 0, len: 1 })
            .then(TraceOp::Rebuild { spare: 9 });
        assert_eq!(t.len(), 13);
        assert_eq!(t.fault_events(), 2);
        let fail = TraceOp::Fail { disk: 2 };
        assert!(fail.is_fault_event() && !fail.is_write() && fail.is_empty());
        assert_eq!(fail.addr(), 0);
        // Volume counts block ops only.
        let (r, w) = t.volume();
        assert!(r >= 1 && r + w >= 11);
    }
}
