//! Simulation model: disk service times, workload generation, and
//! configuration.
//!
//! The disk model is deliberately generic (positioning + transfer), in
//! the spirit of the simulator Holland & Gibson used: the quantities the
//! paper cares about — reconstruction workload distribution, parity
//! write contention, relative rebuild times — depend on the *layout
//! combinatorics*, not on a particular drive's datasheet.

use rand::rngs::StdRng;
use rand::Rng;

/// Which side of the request mix an IO belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoKind {
    /// A read of one unit.
    Read,
    /// A write of one unit.
    Write,
}

/// How seek time depends on arm travel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeekModel {
    /// Positioning cost is independent of the previous head position
    /// (the classic simplification).
    PositionIndependent,
    /// Positioning cost grows linearly with travel distance: a full
    /// sweep across the disk adds `max_seek_us` on top of the base
    /// positioning sample. Makes head scheduling and layout locality
    /// matter.
    Linear {
        /// Extra cost of a full-stroke seek (µs).
        max_seek_us: u64,
    },
}

/// How each disk orders its queued IOs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduling {
    /// First come, first served.
    Fifo,
    /// Shortest seek time first: serve the queued IO closest to the
    /// current head position (only meaningful with [`SeekModel::Linear`]).
    Sstf,
}

/// Disk service-time model: uniformly distributed positioning time plus a
/// fixed per-unit transfer time (single-unit IOs), optionally with a
/// travel-distance seek component.
#[derive(Clone, Copy, Debug)]
pub struct DiskModel {
    /// Positioning (settle + rotation) range in microseconds, sampled
    /// uniformly per IO.
    pub positioning_us: (u64, u64),
    /// Transfer time per unit in microseconds.
    pub transfer_us: u64,
    /// Seek-distance model.
    pub seek: SeekModel,
}

impl Default for DiskModel {
    fn default() -> Self {
        // A 1990s-era drive, roughly matching the paper's context:
        // ~10 ms average positioning, ~2 ms track transfer.
        DiskModel {
            positioning_us: (5_000, 15_000),
            transfer_us: 2_000,
            seek: SeekModel::PositionIndependent,
        }
    }
}

impl DiskModel {
    /// Samples one IO's service time given the head position, the target
    /// offset, the disk size (for normalizing travel distance), and the
    /// number of contiguous units transferred.
    pub fn service_time_at(
        &self,
        rng: &mut StdRng,
        head: u64,
        target: u64,
        disk_size: u64,
        units: u64,
    ) -> u64 {
        let (lo, hi) = self.positioning_us;
        let pos = if hi > lo { rng.random_range(lo..=hi) } else { lo };
        let seek = match self.seek {
            SeekModel::PositionIndependent => 0,
            SeekModel::Linear { max_seek_us } => {
                let dist = head.abs_diff(target);
                max_seek_us * dist / disk_size.max(1)
            }
        };
        pos + seek + self.transfer_us * units.max(1)
    }

    /// Samples a position-independent single-unit service time.
    pub fn service_time(&self, rng: &mut StdRng) -> u64 {
        self.service_time_at(rng, 0, 0, 1, 1)
    }
}

/// Distribution of logical addresses in the workload.
#[derive(Clone, Copy, Debug)]
pub enum AddressDist {
    /// Uniform over all data units.
    Uniform,
    /// `hot_access` of the accesses go to the first `hot_space` fraction
    /// of the address space (e.g. 0.8/0.2).
    HotCold {
        /// Fraction of accesses landing in the hot region.
        hot_access: f64,
        /// Fraction of the address space that is hot.
        hot_space: f64,
    },
}

impl AddressDist {
    /// Samples a logical address in `0..n`.
    pub fn sample(&self, n: usize, rng: &mut StdRng) -> usize {
        match *self {
            AddressDist::Uniform => rng.random_range(0..n),
            AddressDist::HotCold { hot_access, hot_space } => {
                let split = ((n as f64 * hot_space) as usize).clamp(1, n);
                if rng.random_bool(hot_access.clamp(0.0, 1.0)) {
                    rng.random_range(0..split)
                } else if split < n {
                    rng.random_range(split..n)
                } else {
                    rng.random_range(0..n)
                }
            }
        }
    }
}

/// Foreground workload: open Poisson arrivals of (possibly multi-unit)
/// requests over logically contiguous data.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    /// Mean arrival rate in requests per second (Poisson process).
    pub arrivals_per_sec: f64,
    /// Fraction of requests that are reads.
    pub read_fraction: f64,
    /// Address distribution.
    pub addresses: AddressDist,
    /// Request size range in logical units, sampled uniformly. `(1, 1)`
    /// is the classic small-IO workload; sizes ≥ k−1 exercise the
    /// Condition 5 full-stripe-write path.
    pub request_units: (usize, usize),
    /// Round request start addresses down to a multiple of the request
    /// size (models filesystem-aligned large IO; with stripe-ordered
    /// addressing, size-(k−1) aligned writes are full-stripe writes).
    pub aligned: bool,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            arrivals_per_sec: 50.0,
            read_fraction: 0.6,
            addresses: AddressDist::Uniform,
            request_units: (1, 1),
            aligned: false,
        }
    }
}

impl Workload {
    /// Samples a request size in units.
    pub fn request_size(&self, rng: &mut StdRng) -> usize {
        let (lo, hi) = self.request_units;
        let lo = lo.max(1);
        if hi > lo {
            rng.random_range(lo..=hi)
        } else {
            lo
        }
    }

    /// Samples an exponential interarrival gap in microseconds.
    pub fn interarrival_us(&self, rng: &mut StdRng) -> u64 {
        if self.arrivals_per_sec <= 0.0 {
            return u64::MAX / 4; // effectively no foreground traffic
        }
        let u: f64 = rng.random_range(f64::EPSILON..1.0);
        let mean_us = 1e6 / self.arrivals_per_sec;
        (-u.ln() * mean_us).ceil() as u64
    }
}

/// What the failed disk's contents are rebuilt into.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RebuildTarget {
    /// No writes: reconstruct-and-discard (measures the read side only).
    ReadOnly,
    /// A dedicated hot spare (modeled as one extra disk).
    DedicatedSpare,
    /// Distributed sparing: per-stripe spare units inside the array
    /// (`targets[stripe]` = destination `(disk, offset)`, `None` if the
    /// stripe needs no rebuild write).
    Distributed(Vec<Option<(u32, u32)>>),
}

/// How reconstruction work is scheduled — the two algorithms of
/// Holland, Gibson & Siewiorek's on-line failure recovery study.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RebuildPolicy {
    /// Stripe-oriented: up to `parallelism` stripes in flight, each
    /// reading all its surviving units at once.
    StripeOriented {
        /// Maximum stripes being rebuilt concurrently.
        parallelism: usize,
    },
    /// Disk-oriented: every surviving disk streams its needed units
    /// sequentially, keeping at most `depth` rebuild reads queued per
    /// disk; stripes complete as their last unit arrives.
    DiskOriented {
        /// Rebuild reads kept in flight per disk.
        depth: usize,
    },
}

impl Default for RebuildPolicy {
    fn default() -> Self {
        RebuildPolicy::StripeOriented { parallelism: 4 }
    }
}

/// When the simulation stops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopCondition {
    /// After the given simulated duration (microseconds).
    Duration(u64),
    /// When reconstruction of the failed disk completes.
    RebuildComplete,
}

/// Full simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// RNG seed (simulations are deterministic per seed).
    pub seed: u64,
    /// Disk model.
    pub disk: DiskModel,
    /// Foreground workload.
    pub workload: Workload,
    /// Failed disk, if simulating degraded mode / reconstruction.
    pub failed_disk: Option<usize>,
    /// Rebuild the failed disk (requires `failed_disk`).
    pub rebuild: Option<RebuildTarget>,
    /// Reconstruction scheduling policy.
    pub rebuild_policy: RebuildPolicy,
    /// Per-disk IO scheduling discipline.
    pub scheduling: Scheduling,
    /// Stop condition.
    pub stop: StopCondition,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            disk: DiskModel::default(),
            workload: Workload::default(),
            failed_disk: None,
            rebuild: None,
            rebuild_policy: RebuildPolicy::default(),
            scheduling: Scheduling::Fifo,
            stop: StopCondition::Duration(10_000_000), // 10 simulated seconds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn service_times_within_model_bounds() {
        let m = DiskModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let t = m.service_time(&mut rng);
            assert!((7_000..=17_000).contains(&t), "t={t}");
        }
    }

    #[test]
    fn uniform_addresses_cover_space() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 20];
        for _ in 0..2000 {
            seen[AddressDist::Uniform.sample(20, &mut rng)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn hot_cold_skews_toward_hot_region() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = AddressDist::HotCold { hot_access: 0.8, hot_space: 0.2 };
        let n = 1000;
        let hot_hits = (0..10_000).filter(|_| d.sample(n, &mut rng) < 200).count();
        assert!((7_500..8_500).contains(&hot_hits), "hot hits {hot_hits}");
    }

    #[test]
    fn interarrival_mean_roughly_matches_rate() {
        let w = Workload { arrivals_per_sec: 100.0, ..Workload::default() };
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| w.interarrival_us(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((9_000.0..11_000.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn zero_rate_means_no_traffic() {
        let w = Workload { arrivals_per_sec: 0.0, ..Workload::default() };
        let mut rng = StdRng::seed_from_u64(5);
        assert!(w.interarrival_us(&mut rng) > 1u64 << 60);
    }
}
