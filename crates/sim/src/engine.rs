//! The event-driven array simulator.
//!
//! Each disk services one IO at a time from a FIFO queue. Foreground
//! requests arrive as a Poisson process and are translated into disk IOs
//! according to the layout and the array mode (normal / degraded /
//! rebuilding); reconstruction runs as a background process with bounded
//! stripe-level parallelism. All randomness is seeded, so runs are
//! reproducible.

use crate::model::{IoKind, RebuildTarget, SimConfig, StopCondition};
use pdl_core::{AddressMapper, Layout};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    Arrival,
    DiskDone(usize),
}

#[derive(Clone, Copy, Debug)]
enum Owner {
    Foreground(usize),
    Rebuild(usize),
}

#[derive(Clone, Copy, Debug)]
struct Io {
    owner: Owner,
    kind: IoKind,
    offset: u32,
    /// Contiguous units transferred (coalesced multi-unit IOs).
    units: u32,
}

#[derive(Debug, Default)]
struct DiskState {
    queue: VecDeque<Io>,
    current: Option<Io>,
    head: u64,
    busy_since: u64,
    busy_us: u64,
    fg_reads: u64,
    fg_writes: u64,
    rb_reads: u64,
    rb_writes: u64,
}

/// One coalesced disk IO: `(disk, first offset, unit count, kind)`.
type IoSpec = (usize, u32, u32, IoKind);

#[derive(Debug)]
struct Request {
    arrival: u64,
    remaining: usize,
    second_phase: Vec<IoSpec>,
}

#[derive(Debug)]
struct RebuildJob {
    remaining_reads: usize,
    write: Option<(usize, u32, IoKind)>,
}

/// Runtime state of the reconstruction scheduling policy.
#[derive(Debug)]
enum PolicyRt {
    /// Stripe-oriented: issue whole stripes, bounded concurrency.
    Stripe { stripes: Vec<usize>, next: usize, inflight: usize, parallelism: usize },
    /// Disk-oriented: per-disk read streams with bounded queue depth.
    Disk { queues: Vec<VecDeque<usize>>, depth: usize, outstanding: Vec<usize> },
}

#[derive(Debug)]
struct Rebuilder {
    jobs: Vec<Option<RebuildJob>>,
    total: usize,
    done: usize,
    finished_at: Option<u64>,
    /// Completion time of each stripe's rebuild (`None` = not crossing
    /// the failed disk, or not yet rebuilt).
    stripe_done_at: Vec<Option<u64>>,
    policy: PolicyRt,
}

/// Aggregated simulation outputs.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Simulated time covered (µs).
    pub sim_time_us: u64,
    /// Foreground requests generated.
    pub generated: usize,
    /// Foreground requests completed.
    pub completed: usize,
    /// Mean foreground response time (µs).
    pub mean_response_us: f64,
    /// 95th-percentile response time (µs).
    pub p95_response_us: u64,
    /// Maximum response time (µs).
    pub max_response_us: u64,
    /// Busy fraction per disk (the spare disk, when present, is last).
    pub disk_utilization: Vec<f64>,
    /// Foreground reads serviced per disk.
    pub fg_reads: Vec<u64>,
    /// Foreground writes serviced per disk.
    pub fg_writes: Vec<u64>,
    /// Rebuild reads serviced per disk.
    pub rebuild_reads: Vec<u64>,
    /// Rebuild writes serviced per disk.
    pub rebuild_writes: Vec<u64>,
    /// Completion time of reconstruction, if it ran.
    pub rebuild_finished_at: Option<u64>,
    /// Per-stripe rebuild completion time (indexed by stripe; `None` for
    /// stripes not crossing the failed disk or not yet rebuilt). Empty
    /// when no rebuild ran — feeds the double-failure vulnerability
    /// analysis in [`crate::vulnerability`].
    pub stripe_rebuilt_at: Vec<Option<u64>>,
}

impl SimResult {
    /// Largest per-disk utilization — the array's bottleneck.
    pub fn max_utilization(&self) -> f64 {
        self.disk_utilization.iter().cloned().fold(0.0, f64::max)
    }
}

/// The simulator.
pub struct ArraySim<'a> {
    layout: &'a Layout,
    mapper: AddressMapper,
    cfg: SimConfig,
    rng: StdRng,
    now: u64,
    seq: u64,
    events: BinaryHeap<Reverse<(u64, u64, EventKind)>>,
    disks: Vec<DiskState>,
    requests: Vec<Request>,
    rebuilder: Option<Rebuilder>,
    responses: Vec<u64>,
    generated: usize,
    completed: usize,
}

impl<'a> ArraySim<'a> {
    /// Prepares a simulation of `layout` under `cfg`.
    pub fn new(layout: &'a Layout, cfg: SimConfig) -> Self {
        if let Some(f) = cfg.failed_disk {
            assert!(f < layout.v(), "failed disk out of range");
        }
        assert!(
            cfg.rebuild.is_none() || cfg.failed_disk.is_some(),
            "rebuild requires a failed disk"
        );
        let n_disks =
            layout.v() + usize::from(matches!(cfg.rebuild, Some(RebuildTarget::DedicatedSpare)));
        let mut disks = Vec::with_capacity(n_disks);
        disks.resize_with(n_disks, DiskState::default);
        let rng = StdRng::seed_from_u64(cfg.seed);
        ArraySim {
            layout,
            mapper: AddressMapper::new(layout),
            cfg,
            rng,
            now: 0,
            seq: 0,
            events: BinaryHeap::new(),
            disks,
            requests: Vec::new(),
            rebuilder: None,
            responses: Vec::new(),
            generated: 0,
            completed: 0,
        }
    }

    fn schedule(&mut self, time: u64, kind: EventKind) {
        self.seq += 1;
        self.events.push(Reverse((time, self.seq, kind)));
    }

    fn submit_io(&mut self, disk: usize, io: Io) {
        self.disks[disk].queue.push_back(io);
        if self.disks[disk].current.is_none() {
            self.start_next(disk);
        }
    }

    fn start_next(&mut self, disk: usize) {
        if self.disks[disk].current.is_some() {
            return; // already servicing an IO (re-armed during completion)
        }
        let next = match self.cfg.scheduling {
            crate::model::Scheduling::Fifo => self.disks[disk].queue.pop_front(),
            crate::model::Scheduling::Sstf => {
                let head = self.disks[disk].head;
                let best = self.disks[disk]
                    .queue
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, io)| head.abs_diff(io.offset as u64))
                    .map(|(i, _)| i);
                best.and_then(|i| self.disks[disk].queue.remove(i))
            }
        };
        if let Some(io) = next {
            let st = self.cfg.disk.service_time_at(
                &mut self.rng,
                self.disks[disk].head,
                io.offset as u64,
                self.layout.size() as u64,
                io.units as u64,
            );
            self.disks[disk].current = Some(io);
            self.disks[disk].busy_since = self.now;
            self.schedule(self.now + st, EventKind::DiskDone(disk));
        }
    }

    /// Per-stripe write planning: given the set of a stripe's data units
    /// being overwritten, emit (reads, writes) honoring degraded mode and
    /// the Condition-5 full-stripe-write optimization.
    fn plan_stripe_write(
        &self,
        si: usize,
        targets: &[pdl_core::StripeUnit],
        reads: &mut Vec<pdl_core::StripeUnit>,
        writes: &mut Vec<pdl_core::StripeUnit>,
    ) {
        let stripe = &self.layout.stripes()[si];
        let parity = stripe.parity_unit();
        let pd = parity.disk as usize;
        let failed = self.cfg.failed_disk;
        let data_count = stripe.len() - 1;
        let parity_failed = failed == Some(pd);
        let lost_target = targets.iter().find(|u| Some(u.disk as usize) == failed);
        if targets.len() == data_count {
            // Full-stripe write: parity computed from the new data alone.
            writes.extend(targets.iter().filter(|u| Some(u.disk as usize) != failed));
            if !parity_failed {
                writes.push(parity);
            }
        } else if let Some(lost) = lost_target {
            // A target sits on the failed disk: fold its value into parity
            // by reading the untouched data units.
            let lost = *lost;
            reads.extend(stripe.data_units().filter(|u| !targets.contains(u) && *u != lost));
            writes.extend(targets.iter().filter(|u| Some(u.disk as usize) != failed));
            if !parity_failed {
                writes.push(parity);
            }
        } else if parity_failed {
            // No parity to maintain: write data only.
            writes.extend(targets.iter().copied());
        } else {
            // Partial read-modify-write.
            reads.extend(targets.iter().copied());
            reads.push(parity);
            writes.extend(targets.iter().copied());
            writes.push(parity);
        }
    }

    /// Coalesces per-unit accesses into one IO per (disk, kind), counting
    /// units and starting at the lowest offset.
    fn coalesce(units: &[pdl_core::StripeUnit], kind: IoKind) -> Vec<IoSpec> {
        let mut per_disk: std::collections::BTreeMap<u32, (u32, u32)> = Default::default();
        for u in units {
            let e = per_disk.entry(u.disk).or_insert((u.offset, 0));
            e.0 = e.0.min(u.offset);
            e.1 += 1;
        }
        per_disk.into_iter().map(|(d, (off, n))| (d as usize, off, n, kind)).collect()
    }

    /// Translates a logical request of `n` contiguous units into
    /// (phase-1, phase-2) coalesced disk IOs.
    fn translate_range(&self, addr: usize, n: usize, kind: IoKind) -> (Vec<IoSpec>, Vec<IoSpec>) {
        let failed = self.cfg.failed_disk;
        match kind {
            IoKind::Read => {
                let mut reads = Vec::with_capacity(n);
                for a in addr..addr + n {
                    let unit = self.mapper.locate(a);
                    if Some(unit.disk as usize) == failed {
                        // Degraded read: all surviving units of the stripe.
                        let stripe = &self.layout.stripes()[self.mapper.stripe_of(a)];
                        reads
                            .extend(stripe.units().iter().filter(|u| u.disk != unit.disk).copied());
                    } else {
                        reads.push(unit);
                    }
                }
                reads.sort_unstable();
                reads.dedup();
                (Self::coalesce(&reads, IoKind::Read), Vec::new())
            }
            IoKind::Write => {
                // Group target units by stripe.
                let mut by_stripe: std::collections::BTreeMap<usize, Vec<pdl_core::StripeUnit>> =
                    Default::default();
                for a in addr..addr + n {
                    by_stripe
                        .entry(self.mapper.stripe_of(a))
                        .or_default()
                        .push(self.mapper.locate(a));
                }
                let mut reads = Vec::new();
                let mut writes = Vec::new();
                for (si, targets) in &by_stripe {
                    self.plan_stripe_write(*si, targets, &mut reads, &mut writes);
                }
                reads.sort_unstable();
                reads.dedup();
                writes.sort_unstable();
                writes.dedup();
                let p1 = Self::coalesce(&reads, IoKind::Read);
                let p2 = Self::coalesce(&writes, IoKind::Write);
                if p1.is_empty() {
                    (p2, Vec::new())
                } else {
                    (p1, p2)
                }
            }
        }
    }

    fn issue_request(&mut self, addr: usize, n: usize, kind: IoKind) {
        let (p1, p2) = self.translate_range(addr, n, kind);
        let (p1, p2) = if p1.is_empty() { (p2, Vec::new()) } else { (p1, p2) };
        if p1.is_empty() {
            return; // degenerate (e.g. size-1 stripe) — nothing to do
        }
        let id = self.requests.len();
        self.requests.push(Request { arrival: self.now, remaining: p1.len(), second_phase: p2 });
        for (disk, offset, units, k) in p1 {
            self.submit_io(disk, Io { owner: Owner::Foreground(id), kind: k, offset, units });
        }
    }

    /// Surviving `(disk, offset)` units of a stripe crossing the failed disk.
    fn rebuild_read_units(&self, si: usize) -> Vec<(usize, u32)> {
        let failed = self.cfg.failed_disk.expect("rebuild requires failure");
        self.layout.stripes()[si]
            .units()
            .iter()
            .filter(|u| u.disk as usize != failed)
            .map(|u| (u.disk as usize, u.offset))
            .collect()
    }

    /// Offset of the failed disk's unit in stripe `si` (the spare disk
    /// mirrors the failed disk's geometry).
    fn failed_unit_offset(&self, si: usize) -> u32 {
        let failed = self.cfg.failed_disk.expect("rebuild requires failure");
        self.layout.stripes()[si]
            .units()
            .iter()
            .find(|u| u.disk as usize == failed)
            .map(|u| u.offset)
            .unwrap_or(0)
    }

    fn init_rebuild(&mut self, target: RebuildTarget) {
        let failed = self.cfg.failed_disk.expect("rebuild requires failure");
        let b = self.layout.b();
        let crossing: Vec<usize> =
            (0..b).filter(|&si| self.layout.stripes()[si].crosses(failed)).collect();
        let mut jobs: Vec<Option<RebuildJob>> = (0..b).map(|_| None).collect();
        let mut stripe_done_at = vec![None; b];
        let mut done = 0usize;
        let mut immediate_writes = Vec::new();
        for &si in &crossing {
            let reads = self.rebuild_read_units(si).len();
            let write = match &target {
                RebuildTarget::ReadOnly => None,
                RebuildTarget::DedicatedSpare => {
                    Some((self.layout.v(), self.failed_unit_offset(si), IoKind::Write))
                }
                RebuildTarget::Distributed(targets) => {
                    targets[si].map(|(d, o)| (d as usize, o, IoKind::Write))
                }
            };
            if reads == 0 && write.is_none() {
                // Degenerate stripe: nothing to read or write.
                done += 1;
                stripe_done_at[si] = Some(self.now);
            } else if reads == 0 {
                // Size-1 stripe: a pure write, issued immediately.
                jobs[si] = Some(RebuildJob { remaining_reads: 0, write: None });
                immediate_writes.push((si, write.unwrap()));
            } else {
                jobs[si] = Some(RebuildJob { remaining_reads: reads, write });
            }
        }
        let policy = match self.cfg.rebuild_policy {
            crate::model::RebuildPolicy::StripeOriented { parallelism } => PolicyRt::Stripe {
                // Pure-write (size-1) jobs are issued immediately and only
                // counted against the in-flight budget.
                stripes: crossing
                    .iter()
                    .copied()
                    .filter(|&si| jobs[si].as_ref().is_some_and(|j| j.remaining_reads > 0))
                    .collect(),
                next: 0,
                inflight: immediate_writes.len(),
                parallelism: parallelism.max(1),
            },
            crate::model::RebuildPolicy::DiskOriented { depth } => {
                let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); self.disks.len()];
                for &si in &crossing {
                    if jobs[si].is_some() {
                        for (d, _) in self.rebuild_read_units(si) {
                            queues[d].push_back(si);
                        }
                    }
                }
                let outstanding = vec![0usize; self.disks.len()];
                PolicyRt::Disk { queues, depth: depth.max(1), outstanding }
            }
        };
        let total = crossing.len();
        self.rebuilder = Some(Rebuilder {
            jobs,
            total,
            done,
            finished_at: (done == total).then_some(self.now),
            stripe_done_at,
            policy,
        });
        for (si, (d, o, k)) in immediate_writes {
            self.submit_io(d, Io { owner: Owner::Rebuild(si), kind: k, offset: o, units: 1 });
        }
        self.pump_rebuild();
    }

    fn pump_rebuild(&mut self) {
        let Some(rb) = self.rebuilder.as_mut() else { return };
        if rb.finished_at.is_some() {
            return;
        }
        match &mut rb.policy {
            PolicyRt::Stripe { stripes, next, inflight, parallelism } => {
                let mut to_submit = Vec::new();
                while *inflight < *parallelism && *next < stripes.len() {
                    let si = stripes[*next];
                    *next += 1;
                    *inflight += 1;
                    to_submit.push(si);
                }
                for si in to_submit {
                    for (d, o) in self.rebuild_read_units(si) {
                        self.submit_io(
                            d,
                            Io {
                                owner: Owner::Rebuild(si),
                                kind: IoKind::Read,
                                offset: o,
                                units: 1,
                            },
                        );
                    }
                }
            }
            PolicyRt::Disk { queues, depth, outstanding } => {
                // Keep every disk's rebuild stream filled to the depth.
                let depth = *depth;
                let mut to_submit = Vec::new();
                for d in 0..queues.len() {
                    while outstanding[d] < depth {
                        let Some(si) = queues[d].pop_front() else { break };
                        outstanding[d] += 1;
                        to_submit.push((d, si));
                    }
                }
                for (d, si) in to_submit {
                    let offset = self.layout.stripes()[si]
                        .units()
                        .iter()
                        .find(|u| u.disk as usize == d)
                        .map(|u| u.offset)
                        .unwrap_or(0);
                    self.submit_io(
                        d,
                        Io { owner: Owner::Rebuild(si), kind: IoKind::Read, offset, units: 1 },
                    );
                }
            }
        }
    }

    fn on_io_done(&mut self, disk: usize, io: Io) {
        match io.owner {
            Owner::Foreground(id) => {
                match io.kind {
                    IoKind::Read => self.disks[disk].fg_reads += 1,
                    IoKind::Write => self.disks[disk].fg_writes += 1,
                }
                let req = &mut self.requests[id];
                req.remaining -= 1;
                if req.remaining == 0 {
                    if req.second_phase.is_empty() {
                        let resp = self.now - req.arrival;
                        self.responses.push(resp);
                        self.completed += 1;
                    } else {
                        let phase = std::mem::take(&mut req.second_phase);
                        req.remaining = phase.len();
                        for (d, o, units, k) in phase {
                            self.submit_io(
                                d,
                                Io { owner: Owner::Foreground(id), kind: k, offset: o, units },
                            );
                        }
                    }
                }
            }
            Owner::Rebuild(si) => {
                match io.kind {
                    IoKind::Read => self.disks[disk].rb_reads += 1,
                    IoKind::Write => self.disks[disk].rb_writes += 1,
                }
                let rb = self.rebuilder.as_mut().expect("rebuild io without rebuilder");
                if io.kind == IoKind::Read {
                    if let PolicyRt::Disk { outstanding, .. } = &mut rb.policy {
                        outstanding[disk] -= 1;
                    }
                }
                let job = rb.jobs[si].as_mut().expect("io for finished job");
                match io.kind {
                    IoKind::Read => {
                        job.remaining_reads -= 1;
                        if job.remaining_reads == 0 {
                            if let Some((d, o, k)) = job.write.take() {
                                self.submit_io(
                                    d,
                                    Io { owner: Owner::Rebuild(si), kind: k, offset: o, units: 1 },
                                );
                            } else {
                                self.finish_job(si);
                            }
                        }
                    }
                    IoKind::Write => self.finish_job(si),
                }
                self.pump_rebuild();
            }
        }
    }

    fn finish_job(&mut self, si: usize) {
        let rb = self.rebuilder.as_mut().unwrap();
        rb.jobs[si] = None;
        rb.done += 1;
        rb.stripe_done_at[si] = Some(self.now);
        if let PolicyRt::Stripe { inflight, .. } = &mut rb.policy {
            *inflight -= 1;
        }
        if rb.done == rb.total {
            rb.finished_at = Some(self.now);
        }
    }

    /// Runs to the stop condition and returns aggregated results.
    pub fn run(mut self) -> SimResult {
        let duration_limit = match self.cfg.stop {
            StopCondition::Duration(d) => Some(d),
            StopCondition::RebuildComplete => None,
        };
        if let Some(target) = self.cfg.rebuild.clone() {
            self.init_rebuild(target);
        }
        let first_gap = self.cfg.workload.interarrival_us(&mut self.rng);
        self.schedule(first_gap, EventKind::Arrival);

        while let Some(Reverse((time, _, kind))) = self.events.pop() {
            if self.cfg.stop == StopCondition::RebuildComplete {
                if let Some(rb) = &self.rebuilder {
                    if rb.finished_at.is_some() {
                        break;
                    }
                }
            }
            if let Some(limit) = duration_limit {
                if time > limit {
                    self.now = limit;
                    break;
                }
            }
            self.now = time;
            match kind {
                EventKind::Arrival => {
                    if duration_limit.is_none_or(|limit| self.now <= limit) {
                        let total = self.mapper.data_units_per_copy();
                        let size = self.cfg.workload.request_size(&mut self.rng).min(total);
                        let mut addr = self
                            .cfg
                            .workload
                            .addresses
                            .sample(total, &mut self.rng)
                            .min(total - size);
                        if self.cfg.workload.aligned && size > 0 {
                            addr = addr / size * size;
                        }
                        let kind = if self.rng.random_bool(self.cfg.workload.read_fraction) {
                            IoKind::Read
                        } else {
                            IoKind::Write
                        };
                        self.generated += 1;
                        self.issue_request(addr, size, kind);
                        let gap = self.cfg.workload.interarrival_us(&mut self.rng);
                        self.schedule(self.now + gap, EventKind::Arrival);
                    }
                }
                EventKind::DiskDone(disk) => {
                    let io = self.disks[disk].current.take().expect("completion without io");
                    let started = self.disks[disk].busy_since;
                    self.disks[disk].busy_us += self.now - started;
                    self.disks[disk].head = io.offset as u64;
                    self.on_io_done(disk, io);
                    self.start_next(disk);
                }
            }
        }
        self.finish()
    }

    fn finish(mut self) -> SimResult {
        let sim_time = self.now.max(1);
        self.responses.sort_unstable();
        let mean = if self.responses.is_empty() {
            0.0
        } else {
            self.responses.iter().sum::<u64>() as f64 / self.responses.len() as f64
        };
        let pct = |p: f64| -> u64 {
            if self.responses.is_empty() {
                0
            } else {
                let idx = ((self.responses.len() as f64 * p).ceil() as usize)
                    .clamp(1, self.responses.len());
                self.responses[idx - 1]
            }
        };
        SimResult {
            sim_time_us: sim_time,
            generated: self.generated,
            completed: self.completed,
            mean_response_us: mean,
            p95_response_us: pct(0.95),
            max_response_us: self.responses.last().copied().unwrap_or(0),
            disk_utilization: self
                .disks
                .iter()
                .map(|d| d.busy_us as f64 / sim_time as f64)
                .collect(),
            fg_reads: self.disks.iter().map(|d| d.fg_reads).collect(),
            fg_writes: self.disks.iter().map(|d| d.fg_writes).collect(),
            rebuild_reads: self.disks.iter().map(|d| d.rb_reads).collect(),
            rebuild_writes: self.disks.iter().map(|d| d.rb_writes).collect(),
            rebuild_finished_at: self.rebuilder.as_ref().and_then(|r| r.finished_at),
            stripe_rebuilt_at: self.rebuilder.map(|r| r.stripe_done_at).unwrap_or_default(),
        }
    }
}

/// Convenience wrapper: build and run in one call.
pub fn simulate(layout: &Layout, cfg: SimConfig) -> SimResult {
    ArraySim::new(layout, cfg).run()
}

/// Rebuild-only run (no foreground traffic), returning the result.
pub fn simulate_rebuild(
    layout: &Layout,
    failed: usize,
    target: RebuildTarget,
    seed: u64,
) -> SimResult {
    let cfg = SimConfig {
        seed,
        failed_disk: Some(failed),
        rebuild: Some(target),
        workload: crate::model::Workload { arrivals_per_sec: 0.0, ..Default::default() },
        stop: StopCondition::RebuildComplete,
        ..Default::default()
    };
    simulate(layout, cfg)
}

/// Checks the conservation law: a completed rebuild must have read each
/// surviving unit of each stripe crossing the failed disk exactly once.
pub fn rebuild_reads_match_layout(layout: &Layout, failed: usize, result: &SimResult) -> bool {
    let mut expect = vec![0u64; layout.v()];
    for stripe in layout.stripes() {
        if stripe.crosses(failed) {
            for u in stripe.units() {
                if u.disk as usize != failed {
                    expect[u.disk as usize] += 1;
                }
            }
        }
    }
    expect == result.rebuild_reads[..layout.v()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Workload;
    use pdl_core::{raid5_layout, RingLayout};

    #[test]
    fn normal_mode_completes_requests() {
        let rl = RingLayout::for_v_k(5, 3);
        let cfg =
            SimConfig { seed: 1, stop: StopCondition::Duration(5_000_000), ..Default::default() };
        let r = simulate(rl.layout(), cfg);
        assert!(r.completed > 100, "completed {}", r.completed);
        assert!(r.mean_response_us > 0.0);
        assert!(r.max_utilization() <= 1.0 + 1e-9);
    }

    #[test]
    fn determinism_per_seed() {
        let rl = RingLayout::for_v_k(5, 3);
        let cfg =
            SimConfig { seed: 9, stop: StopCondition::Duration(2_000_000), ..Default::default() };
        let a = simulate(rl.layout(), cfg.clone());
        let b = simulate(rl.layout(), cfg);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.mean_response_us, b.mean_response_us);
        assert_eq!(a.fg_reads, b.fg_reads);
    }

    #[test]
    fn rebuild_reads_conserve() {
        let rl = RingLayout::for_v_k(7, 3);
        let r = simulate_rebuild(rl.layout(), 2, RebuildTarget::ReadOnly, 3);
        assert!(r.rebuild_finished_at.is_some());
        assert!(rebuild_reads_match_layout(rl.layout(), 2, &r));
    }

    #[test]
    fn rebuild_with_spare_writes_everything() {
        let rl = RingLayout::for_v_k(7, 3);
        let r = simulate_rebuild(rl.layout(), 0, RebuildTarget::DedicatedSpare, 4);
        assert!(r.rebuild_finished_at.is_some());
        // spare disk (index v) received one write per stripe crossing disk 0
        let crossing = rl.layout().stripes().iter().filter(|s| s.crosses(0)).count() as u64;
        assert_eq!(r.rebuild_writes[7], crossing);
        // spare takes no reads
        assert_eq!(r.rebuild_reads[7], 0);
    }

    #[test]
    fn declustered_rebuilds_faster_than_raid5() {
        // Same v and same size: ring (v=9, k=3, size 24) vs RAID5 (9, 24).
        let rl = RingLayout::for_v_k(9, 3);
        let raid5 = raid5_layout(9, 24);
        assert_eq!(rl.layout().size(), raid5.size());
        let a = simulate_rebuild(rl.layout(), 4, RebuildTarget::ReadOnly, 7);
        let b = simulate_rebuild(&raid5, 4, RebuildTarget::ReadOnly, 7);
        let (ta, tb) = (a.rebuild_finished_at.unwrap(), b.rebuild_finished_at.unwrap());
        assert!(ta < tb, "declustered rebuild {ta}µs should beat RAID5 {tb}µs");
        // RAID5 reads (v-1)·size units; declustered k-1/(v-1) of that.
        let total_a: u64 = a.rebuild_reads.iter().sum();
        let total_b: u64 = b.rebuild_reads.iter().sum();
        assert_eq!(total_b, 8 * 24);
        assert_eq!(total_a, (3 - 1) * 24); // (k-1) per crossing stripe × r stripes… = 2·24
        assert!(total_a < total_b);
    }

    #[test]
    fn degraded_reads_fan_out() {
        // With a failed disk and read-only workload, reads targeting the
        // failed disk hit k-1 survivors.
        let rl = RingLayout::for_v_k(5, 3);
        let cfg = SimConfig {
            seed: 5,
            failed_disk: Some(1),
            workload: Workload { arrivals_per_sec: 20.0, read_fraction: 1.0, ..Default::default() },
            stop: StopCondition::Duration(5_000_000),
            ..Default::default()
        };
        let r = simulate(rl.layout(), cfg);
        // no IO should ever land on the failed disk
        assert_eq!(r.fg_reads[1] + r.fg_writes[1], 0);
        let total_ios: u64 = r.fg_reads.iter().sum();
        assert!(
            total_ios as usize > r.completed,
            "degraded fan-out must exceed one IO per request"
        );
    }

    #[test]
    fn degraded_writes_avoid_failed_disk() {
        let rl = RingLayout::for_v_k(7, 4);
        let cfg = SimConfig {
            seed: 6,
            failed_disk: Some(3),
            workload: Workload { arrivals_per_sec: 20.0, read_fraction: 0.0, ..Default::default() },
            stop: StopCondition::Duration(5_000_000),
            ..Default::default()
        };
        let r = simulate(rl.layout(), cfg);
        assert_eq!(r.fg_reads[3] + r.fg_writes[3], 0);
        assert!(r.completed > 50);
    }

    #[test]
    fn foreground_slows_rebuild() {
        let rl = RingLayout::for_v_k(9, 4);
        let quiet = simulate_rebuild(rl.layout(), 0, RebuildTarget::ReadOnly, 11);
        let busy_cfg = SimConfig {
            seed: 11,
            failed_disk: Some(0),
            rebuild: Some(RebuildTarget::ReadOnly),
            workload: Workload { arrivals_per_sec: 120.0, ..Default::default() },
            stop: StopCondition::RebuildComplete,
            ..Default::default()
        };
        let busy = simulate(rl.layout(), busy_cfg);
        assert!(
            busy.rebuild_finished_at.unwrap() > quiet.rebuild_finished_at.unwrap(),
            "foreground load must delay reconstruction"
        );
    }

    #[test]
    fn distributed_rebuild_spreads_writes() {
        use pdl_core::SparedLayout;
        let spared = SparedLayout::new(RingLayout::for_v_k(9, 4).layout().clone()).unwrap();
        let failed = 2;
        let plan = spared.rebuild_plan(failed);
        let mut targets: Vec<Option<(u32, u32)>> = vec![None; spared.layout().b()];
        for (si, u) in &plan.targets {
            targets[*si] = Some((u.disk, u.offset));
        }
        let r = simulate_rebuild(spared.layout(), failed, RebuildTarget::Distributed(targets), 13);
        assert!(r.rebuild_finished_at.is_some());
        let writes: u64 = r.rebuild_writes.iter().sum();
        assert_eq!(writes as usize, plan.targets.len());
        // writes spread over many disks, none on the failed disk
        assert_eq!(r.rebuild_writes[failed], 0);
        let busy_disks = r.rebuild_writes.iter().filter(|&&w| w > 0).count();
        assert!(busy_disks >= spared.layout().v() / 2);
    }

    #[test]
    fn disk_oriented_policy_conserves_reads() {
        use crate::model::RebuildPolicy;
        let rl = RingLayout::for_v_k(9, 4);
        let cfg = SimConfig {
            seed: 5,
            failed_disk: Some(3),
            rebuild: Some(RebuildTarget::ReadOnly),
            rebuild_policy: RebuildPolicy::DiskOriented { depth: 2 },
            workload: Workload { arrivals_per_sec: 0.0, ..Default::default() },
            stop: StopCondition::RebuildComplete,
            ..Default::default()
        };
        let r = simulate(rl.layout(), cfg);
        assert!(r.rebuild_finished_at.is_some());
        assert!(rebuild_reads_match_layout(rl.layout(), 3, &r));
    }

    #[test]
    fn disk_oriented_beats_narrow_stripe_oriented() {
        use crate::model::RebuildPolicy;
        // With stripe parallelism 1, only k-1 disks work at a time;
        // disk-oriented keeps all v-1 survivors streaming.
        let rl = RingLayout::for_v_k(9, 3);
        let run = |policy: RebuildPolicy| {
            let cfg = SimConfig {
                seed: 6,
                failed_disk: Some(0),
                rebuild: Some(RebuildTarget::ReadOnly),
                rebuild_policy: policy,
                workload: Workload { arrivals_per_sec: 0.0, ..Default::default() },
                stop: StopCondition::RebuildComplete,
                ..Default::default()
            };
            simulate(rl.layout(), cfg).rebuild_finished_at.unwrap()
        };
        let narrow = run(RebuildPolicy::StripeOriented { parallelism: 1 });
        let disk = run(RebuildPolicy::DiskOriented { depth: 2 });
        assert!(disk < narrow, "disk-oriented {disk} vs stripe(1) {narrow}");
    }

    #[test]
    fn both_policies_read_the_same_units() {
        use crate::model::RebuildPolicy;
        let rl = RingLayout::for_v_k(13, 4);
        let mk = |policy| SimConfig {
            seed: 9,
            failed_disk: Some(7),
            rebuild: Some(RebuildTarget::ReadOnly),
            rebuild_policy: policy,
            workload: Workload { arrivals_per_sec: 0.0, ..Default::default() },
            stop: StopCondition::RebuildComplete,
            ..Default::default()
        };
        let a = simulate(rl.layout(), mk(RebuildPolicy::StripeOriented { parallelism: 4 }));
        let b = simulate(rl.layout(), mk(RebuildPolicy::DiskOriented { depth: 3 }));
        assert_eq!(a.rebuild_reads, b.rebuild_reads);
    }

    #[test]
    fn stripe_rebuild_times_recorded() {
        let rl = RingLayout::for_v_k(7, 3);
        let r = simulate_rebuild(rl.layout(), 1, RebuildTarget::DedicatedSpare, 4);
        let crossing = rl.layout().stripes().iter().filter(|s| s.crosses(1)).count();
        let recorded = r.stripe_rebuilt_at.iter().flatten().count();
        assert_eq!(recorded, crossing);
        let t_end = r.rebuild_finished_at.unwrap();
        assert!(r.stripe_rebuilt_at.iter().flatten().all(|&t| t <= t_end));
        assert!(r.stripe_rebuilt_at.iter().flatten().any(|&t| t < t_end));
    }

    #[test]
    fn stop_at_duration_bounds_time() {
        let rl = RingLayout::for_v_k(5, 2);
        let cfg =
            SimConfig { seed: 2, stop: StopCondition::Duration(1_000_000), ..Default::default() };
        let r = simulate(rl.layout(), cfg);
        assert!(r.sim_time_us <= 1_000_000);
    }

    #[test]
    fn sstf_beats_fifo_under_linear_seeks() {
        use crate::model::{DiskModel, Scheduling, SeekModel};
        let rl = RingLayout::for_v_k(9, 3);
        let run = |sched: Scheduling| {
            let cfg = SimConfig {
                seed: 21,
                disk: DiskModel {
                    positioning_us: (2_000, 4_000),
                    transfer_us: 2_000,
                    seek: SeekModel::Linear { max_seek_us: 20_000 },
                },
                scheduling: sched,
                workload: Workload { arrivals_per_sec: 140.0, ..Default::default() },
                stop: StopCondition::Duration(20_000_000),
                ..Default::default()
            };
            simulate(rl.layout(), cfg)
        };
        let fifo = run(Scheduling::Fifo);
        let sstf = run(Scheduling::Sstf);
        assert!(
            sstf.mean_response_us < fifo.mean_response_us,
            "SSTF {} must beat FIFO {}",
            sstf.mean_response_us,
            fifo.mean_response_us
        );
        // throughput should not suffer
        assert!(sstf.completed * 10 >= fifo.completed * 9);
    }

    #[test]
    fn linear_seeks_slow_scattered_rebuild() {
        use crate::model::{DiskModel, SeekModel};
        let rl = RingLayout::for_v_k(9, 3);
        let run = |seek: SeekModel| {
            let cfg = SimConfig {
                seed: 22,
                disk: DiskModel { positioning_us: (5_000, 15_000), transfer_us: 2_000, seek },
                failed_disk: Some(0),
                rebuild: Some(RebuildTarget::ReadOnly),
                workload: Workload { arrivals_per_sec: 0.0, ..Default::default() },
                stop: StopCondition::RebuildComplete,
                ..Default::default()
            };
            simulate(rl.layout(), cfg).rebuild_finished_at.unwrap()
        };
        let flat = run(SeekModel::PositionIndependent);
        let seeky = run(SeekModel::Linear { max_seek_us: 30_000 });
        assert!(seeky > flat, "seek costs must show up: {seeky} vs {flat}");
    }

    #[test]
    fn full_stripe_writes_need_no_prereads() {
        // Condition 5 in action: aligned writes of k-1 units cover whole
        // stripes, so a pure-write workload issues zero reads.
        let rl = RingLayout::for_v_k(9, 4); // k-1 = 3 data units per stripe
        let cfg = SimConfig {
            seed: 41,
            workload: Workload {
                arrivals_per_sec: 30.0,
                read_fraction: 0.0,
                request_units: (3, 3),
                aligned: true,
                ..Default::default()
            },
            stop: StopCondition::Duration(5_000_000),
            ..Default::default()
        };
        let r = simulate(rl.layout(), cfg);
        assert!(r.completed > 50);
        let total_reads: u64 = r.fg_reads.iter().sum();
        assert_eq!(total_reads, 0, "aligned full-stripe writes must skip pre-reads");
    }

    #[test]
    fn small_writes_do_rmw() {
        let rl = RingLayout::for_v_k(9, 4);
        let cfg = SimConfig {
            seed: 42,
            workload: Workload {
                arrivals_per_sec: 30.0,
                read_fraction: 0.0,
                request_units: (1, 1),
                ..Default::default()
            },
            stop: StopCondition::Duration(5_000_000),
            ..Default::default()
        };
        let r = simulate(rl.layout(), cfg);
        let reads: u64 = r.fg_reads.iter().sum();
        let writes: u64 = r.fg_writes.iter().sum();
        assert!(reads > 0, "single-unit writes pre-read data and parity");
        // RMW: reads ≈ writes (2 each per request)
        assert!((reads as f64 - writes as f64).abs() / writes as f64 <= 0.2);
    }

    #[test]
    fn large_reads_coalesce() {
        // A v-unit read touches at most v disks with one IO each (per
        // phase), never v separate positioning penalties on one disk.
        let rl = RingLayout::for_v_k(9, 3);
        let cfg = SimConfig {
            seed: 43,
            workload: Workload {
                arrivals_per_sec: 10.0,
                read_fraction: 1.0,
                request_units: (9, 9),
                ..Default::default()
            },
            stop: StopCondition::Duration(10_000_000),
            ..Default::default()
        };
        let r = simulate(rl.layout(), cfg);
        assert!(r.completed > 20);
        let ios: u64 = r.fg_reads.iter().sum();
        // 9 units over ≤ 9 disks: strictly fewer IOs than units requested
        assert!(ios < 9 * r.completed as u64, "ios={ios} completed={}", r.completed);
    }

    #[test]
    fn degraded_large_reads_avoid_failed_disk() {
        let rl = RingLayout::for_v_k(9, 3);
        let cfg = SimConfig {
            seed: 44,
            failed_disk: Some(2),
            workload: Workload {
                arrivals_per_sec: 20.0,
                read_fraction: 1.0,
                request_units: (4, 8),
                ..Default::default()
            },
            stop: StopCondition::Duration(5_000_000),
            ..Default::default()
        };
        let r = simulate(rl.layout(), cfg);
        assert_eq!(r.fg_reads[2] + r.fg_writes[2], 0);
        assert!(r.completed > 30);
    }

    #[test]
    fn head_position_tracks_completions() {
        // After a run, every disk's head equals the offset of its last
        // completed IO — verified indirectly by determinism of results
        // across Fifo/PositionIndependent where order is offset-blind.
        let rl = RingLayout::for_v_k(5, 3);
        let cfg =
            SimConfig { seed: 3, stop: StopCondition::Duration(2_000_000), ..Default::default() };
        let a = simulate(rl.layout(), cfg.clone());
        let b = simulate(rl.layout(), cfg);
        assert_eq!(a.fg_reads, b.fg_reads);
        assert_eq!(a.mean_response_us, b.mean_response_us);
    }
}
