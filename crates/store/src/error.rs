//! Error type shared across the store, backends, and rebuilder.

use std::fmt;

/// Everything that can go wrong in the block store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying IO failure (file backend).
    Io(std::io::Error),
    /// A `(disk, offset)` outside the backend geometry was addressed.
    OutOfRange {
        /// Offending disk index.
        disk: usize,
        /// Offending unit offset.
        offset: usize,
    },
    /// A buffer of the wrong length was supplied for a unit transfer.
    BadBufferSize {
        /// Bytes the operation requires.
        expected: usize,
        /// Bytes actually supplied.
        got: usize,
    },
    /// A logical block address beyond the store's capacity.
    AddressOutOfRange {
        /// Offending logical block address.
        addr: usize,
        /// The store's capacity in blocks.
        blocks: usize,
    },
    /// The operation needs a disk that is currently failed.
    DiskFailed(usize),
    /// More failures than the parity scheme tolerates (1 for XOR,
    /// 2 for P+Q).
    TooManyFailures {
        /// The disk whose failure was requested.
        requested: usize,
        /// The scheme's fault tolerance.
        tolerance: usize,
    },
    /// `fail_disk` on a disk that is already failed — the failure
    /// state is never silently overwritten.
    AlreadyFailed(usize),
    /// `restore_disk` on a disk that is not failed.
    NotFailed(usize),
    /// `restore_disk` on a disk whose medium went stale while it was
    /// failed (a write skipped one of its units): only a rebuild can
    /// bring it back without corrupting parity. Carries a witness
    /// stripe whose write skipped the disk.
    RebuildRequired {
        /// The stale disk.
        disk: usize,
        /// Layout copy of the witness stripe.
        copy: usize,
        /// Witness stripe index (within its copy).
        stripe: usize,
    },
    /// The disk is being rebuilt right now: a second rebuild cannot
    /// start and the disk cannot be transiently restored until the
    /// running rebuild completes (or aborts).
    RebuildInProgress(usize),
    /// Rebuild was requested but no disk is failed.
    NothingToRebuild,
    /// Rebuild of several disks was given too few spares (conflicting
    /// or invalid spares are [`StoreError::InvalidSpare`], checked
    /// before any phase runs).
    SparesExhausted {
        /// Disks awaiting rebuild.
        failed: usize,
        /// Spares supplied.
        spares: usize,
    },
    /// The chosen spare is invalid (out of range or already mapped).
    InvalidSpare(usize),
    /// A reshape (add/remove disks) is already running; a second
    /// reshape or a rebuild cannot start until it completes.
    ReshapeInProgress,
    /// A reshape operation was requested but none is registered.
    NoActiveReshape,
    /// A background reshape driver is already attached to the active
    /// reshape; only one pumps the migration at a time.
    ReshapeDriverInProgress,
    /// `complete_reshape` before every stripe migrated — carries the
    /// migration cursor position.
    ReshapeIncomplete {
        /// Target stripes migrated so far.
        done: u64,
        /// Target stripes that must migrate before commit.
        total: u64,
    },
    /// Backend geometry is incompatible with the layout.
    Geometry(String),
    /// Stored bytes or metadata do not match expectations.
    Corrupt(String),
    /// A unit's stored bytes no longer match its recorded checksum —
    /// latent corruption detected on a read or a scrub pass. Read
    /// paths treat this as an erasure and attempt read-repair from
    /// surviving parity; the error surfaces only when the repair
    /// itself is impossible (more erasures than the scheme tolerates).
    ChecksumMismatch {
        /// Physical backend disk holding the corrupt unit.
        disk: usize,
        /// Unit offset within the disk.
        offset: usize,
    },
    /// A scrub pass is already running (foreground or background);
    /// only one walks the array at a time.
    ScrubInProgress,
    /// `verify_parity` found a stripe violating a parity invariant —
    /// names the exact stripe, copy, and parity (P or Q) that failed.
    ParityMismatch {
        /// Stripe index (within its copy) that failed the check.
        stripe: usize,
        /// Layout copy the stripe belongs to.
        copy: usize,
        /// Which invariant: `"P (XOR)"` or `"Q (GF(2^8))"`.
        parity: &'static str,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::OutOfRange { disk, offset } => {
                write!(f, "unit (disk {disk}, offset {offset}) outside backend geometry")
            }
            StoreError::BadBufferSize { expected, got } => {
                write!(f, "buffer is {got} bytes, expected the {expected}-byte unit size (or a multiple for multi-block transfers)")
            }
            StoreError::AddressOutOfRange { addr, blocks } => {
                write!(f, "logical block {addr} beyond store capacity {blocks}")
            }
            StoreError::DiskFailed(d) => write!(f, "disk {d} is failed"),
            StoreError::TooManyFailures { requested, tolerance } => write!(
                f,
                "cannot fail disk {requested}: the parity scheme tolerates at most {tolerance} \
                 concurrent failure(s), all already in use"
            ),
            StoreError::AlreadyFailed(d) => {
                write!(f, "disk {d} is already failed; failure state is not overwritten")
            }
            StoreError::NotFailed(d) => write!(f, "disk {d} is not failed"),
            StoreError::RebuildRequired { disk, copy, stripe } => write!(
                f,
                "disk {disk} was written around while failed (e.g. by a write to stripe \
                 {stripe}, copy {copy}); its medium is stale and only a rebuild (not a \
                 transient restore) may bring it back"
            ),
            StoreError::RebuildInProgress(d) => {
                write!(f, "disk {d} is being rebuilt; wait for the running rebuild to finish")
            }
            StoreError::NothingToRebuild => write!(f, "no disk is failed"),
            StoreError::SparesExhausted { failed, spares } => {
                write!(f, "{failed} disk(s) await rebuild but only {spares} spare(s) supplied")
            }
            StoreError::InvalidSpare(s) => {
                write!(f, "disk {s} is not available as a spare")
            }
            StoreError::ReshapeInProgress => {
                write!(f, "a reshape is in progress; wait for it to complete")
            }
            StoreError::NoActiveReshape => write!(f, "no reshape is registered"),
            StoreError::ReshapeDriverInProgress => {
                write!(f, "a background reshape driver is already running")
            }
            StoreError::ReshapeIncomplete { done, total } => {
                write!(f, "reshape migration incomplete: {done}/{total} target stripes migrated")
            }
            StoreError::Geometry(msg) => write!(f, "geometry mismatch: {msg}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            StoreError::ChecksumMismatch { disk, offset } => write!(
                f,
                "unit (physical disk {disk}, offset {offset}) fails its stored checksum and \
                 could not be repaired from parity"
            ),
            StoreError::ScrubInProgress => write!(f, "a scrub pass is already running"),
            StoreError::ParityMismatch { stripe, copy, parity } => {
                write!(f, "stripe {stripe} (copy {copy}) fails its {parity} parity invariant")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
