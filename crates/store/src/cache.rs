//! The write-back stripe cache: small-write parity write-combining.
//!
//! Parity declustering fixes rebuild cost but leaves the RAID small-
//! write penalty untouched: every sub-stripe write is a read-modify-
//! write — 2 reads + 2 writes under XOR, 3 + 3 under P+Q — under an
//! exclusive stripe lock. This module adds the standard cure (write
//! caching/combining, per Thomasian's survey of mirrored and hybrid
//! arrays): dirty data units accumulate per stripe in a sharded
//! `StripeCache` keyed by the same `(copy, stripe)` pair as the
//! store's stripe lock table, and are flushed as **one combined
//! parity update per stripe** instead of one RMW cycle per write.
//!
//! ## Deferred read-modify-write
//!
//! A cached write performs **zero backend I/O**: the new bytes land in
//! the stripe's cache entry (latest write wins per unit) and the
//! parity work is deferred to flush time. At flush, one stripe pays:
//!
//! * **fully dirty** (every data unit of the stripe overwritten) —
//!   the existing zero-read full-stripe path: parity is recomputed
//!   fresh from the cached data, `k` unit writes, **no reads at all**;
//! * **partially dirty, healthy stripe** — one combined update:
//!   read each *clean* unit once, recompute P (and the
//!   GF-coefficient-weighted Q, under P+Q) fresh in parity
//!   accumulators over clean + cached data, then write parity and
//!   the dirty units **once**, however many client writes the entry
//!   absorbed. `K` writes to one stripe cost at most `k_data`
//!   reads-plus-writes per unit-slot — and at most one backend call
//!   per touched disk — instead of `K` full RMW cycles. Recomputing
//!   (rather than delta-updating the old parity) makes the flush
//!   **idempotent**: an errored flush retries from scratch and
//!   converges, with no half-applied delta to cancel;
//! * **degraded stripe** (a member disk failed or rebuilding) — the
//!   store's per-unit degraded write path, which already maintains
//!   every surviving parity, marks skipped media stale, and writes
//!   through to a racing rebuild's spare.
//!
//! ## Consistency argument
//!
//! Between flushes the backend never sees a cached write, so **the
//! on-disk stripe invariant always holds for the pre-write contents**:
//! degraded decodes of *clean* units, rebuild-chunk decodes, and the
//! parity scan all operate on a self-consistent (old) snapshot and
//! remain correct with no cache awareness at all. The only values
//! that exist solely in the cache are the dirty units themselves, so
//! every read path consults the cache first — a dirty unit is served
//! from memory (healthy *and* degraded reads alike), a clean one from
//! the backend. A flush makes its stripe's new contents durable under
//! the stripe's exclusive shard lock, ordered so a concurrent reader
//! either still sees the cache entry or already sees the flushed
//! backend bytes — never neither. A rebuild that races dirty stripes
//! reconstructs their *old* contents onto the spare; the flush then
//! lands the new bytes through the same write path as live traffic
//! (write-through while the rebuild is registered, the redirected
//! disk after it completes), so the array converges to the cached
//! values bit-exactly either way.
//!
//! ## Flush ordering
//!
//! Failure-state transitions — [`crate::BlockStore::fail_disk`],
//! [`crate::BlockStore::restore_disk`], and rebuild registration —
//! **flush the cache before changing state**, under the exclusive
//! state guard (so no client I/O is in flight). The cache is
//! therefore always clean at the instant a transition is applied, and
//! the deferred writes observe the failure state that existed when
//! they were issued or an equivalent flushed-then-degraded history.
//! [`crate::BlockStore::flush`] drains the cache explicitly;
//! exceeding [`CachePolicy::WriteBack`]'s `max_dirty` budget evicts
//! oldest-dirtied stripes from the write path itself.
//!
//! ## Durability
//!
//! Write-back trades durability for speed, exactly like a volatile
//! disk-array write cache: an acknowledged write is readable (served
//! from the cache) and failure-atomic across *disk* failures (flushed
//! before the failure is applied), but a process crash loses writes
//! not yet flushed. The default policy is therefore
//! [`CachePolicy::WriteThrough`] — byte-for-byte the pre-cache
//! behavior — and write-back is an explicit opt-in, persisted in the
//! store metadata for file-backed arrays.

use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::obs::CacheStatsSnapshot;

/// When (and whether) writes are combined in the stripe cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CachePolicy {
    /// No write caching: every write performs its parity maintenance
    /// immediately (the compatibility default — identical I/O to a
    /// store without a cache).
    WriteThrough,
    /// Writes accumulate per stripe and flush combined: explicitly via
    /// [`crate::BlockStore::flush`], implicitly before every
    /// failure-state transition, and by oldest-first eviction when
    /// more than `max_dirty` stripes are dirty.
    WriteBack {
        /// Dirty-stripe budget before the write path starts evicting
        /// (each dirty stripe pins roughly one stripe's data units of
        /// memory).
        max_dirty: usize,
    },
}

impl CachePolicy {
    /// Default dirty-stripe budget of [`CachePolicy::write_back`].
    pub const DEFAULT_MAX_DIRTY: usize = 1024;

    /// Write-back with the default dirty-stripe budget.
    pub fn write_back() -> CachePolicy {
        CachePolicy::WriteBack { max_dirty: Self::DEFAULT_MAX_DIRTY }
    }

    /// True for any [`CachePolicy::WriteBack`] flavor.
    pub fn is_write_back(self) -> bool {
        matches!(self, CachePolicy::WriteBack { .. })
    }

    /// Stable encoding used by persisted metadata and the `PDL_CACHE`
    /// environment override: `writethrough` or `writeback[:N]`.
    pub fn encode(self) -> String {
        match self {
            CachePolicy::WriteThrough => "writethrough".to_string(),
            CachePolicy::WriteBack { max_dirty } => format!("writeback:{max_dirty}"),
        }
    }

    /// Parses [`CachePolicy::encode`] (plus the bare `writeback`
    /// shorthand for the default budget); `None` for unknown names.
    pub fn decode(name: &str) -> Option<CachePolicy> {
        match name {
            "writethrough" | "" => Some(CachePolicy::WriteThrough),
            "writeback" => Some(CachePolicy::write_back()),
            other => {
                let n = other.strip_prefix("writeback:")?;
                let max_dirty: usize = n.parse().ok()?;
                Some(CachePolicy::WriteBack { max_dirty: max_dirty.max(1) })
            }
        }
    }
}

/// One cached stripe: the dirty data units (in data-slot order, which
/// equals logical-address order) and which of them are dirty.
#[derive(Debug)]
struct StripeEntry {
    /// Per data-slot dirty flags (`k_data` entries).
    dirty: Box<[bool]>,
    /// `k_data × unit_size` bytes, slot-indexed; only dirty slots
    /// hold meaningful bytes.
    data: Box<[u8]>,
    /// Count of `true` flags in `dirty`.
    ndirty: usize,
}

/// An owned copy of one entry's dirty flags, taken under the stripe's
/// exclusive shard lock so the flush can release the cache mutex
/// while it performs backend I/O; the entry's data bytes are appended
/// directly to the flush's staging buffer (one copy, not two).
/// Reused across flushes.
#[derive(Debug, Default)]
pub(crate) struct FlushSnapshot {
    pub(crate) dirty: Vec<bool>,
    pub(crate) ndirty: usize,
}

/// The `(copy, stripe)` cache key packed into one word.
pub(crate) fn stripe_key(copy: usize, stripe: usize) -> u64 {
    ((copy as u64) << 32) | stripe as u64
}

/// Unpacks [`stripe_key`].
pub(crate) fn key_parts(key: u64) -> (usize, usize) {
    ((key >> 32) as usize, (key & u32::MAX as u64) as usize)
}

/// Fibonacci-mixing hasher for the packed stripe key — the map sits
/// on the write hot path, where SipHash's per-lookup cost is pure
/// overhead for an 8-byte key the store already distributes well.
#[derive(Default)]
pub(crate) struct StripeKeyHasher(u64);

impl Hasher for StripeKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are ever hashed; mix whatever arrives anyway.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 ^= self.0 >> 29;
    }
}

type EntryMap = HashMap<u64, StripeEntry, BuildHasherDefault<StripeKeyHasher>>;

/// Relaxed lifetime counters behind [`crate::BlockStore::stats`] —
/// pure accounting, never consulted by the cache's own logic.
#[derive(Debug, Default)]
struct CacheCounters {
    /// Read probes served from a dirty cache entry.
    hits: AtomicU64,
    /// Read probes that locked a shard map and fell through to the
    /// backend. Probes answered by the lock-free clean-shard gate are
    /// counted neither way, keeping the common no-cache read path
    /// free of stats traffic.
    misses: AtomicU64,
    /// Stripe entries created (first dirty write to a stripe).
    insertions: AtomicU64,
    /// Writes absorbed by an already-dirty unit slot (pure
    /// write-combining wins: zero additional flush cost).
    absorbed_writes: AtomicU64,
    /// Stripes flushed by budget-driven eviction (subset of
    /// `flushed_stripes`).
    evictions: AtomicU64,
    /// Stripes flushed (any reason: explicit, transition, eviction).
    flushed_stripes: AtomicU64,
    /// Dirty units those flushes wrote out combined.
    flushed_units: AtomicU64,
}

/// Cache mode, packed into an atomic so the write path reads it
/// without a lock.
const MODE_WRITE_THROUGH: u8 = 0;
const MODE_WRITE_BACK: u8 = 1;

/// The sharded write-back stripe cache (see the [module docs](self)).
///
/// Shard alignment: the store indexes this cache with the **same
/// shard id** its [`crate::store`] lock table derives from the
/// `(copy, stripe)` key, so an entry's cache shard mutex is only ever
/// contended by operations that already serialize on the stripe's
/// lock shard — plus lock-free readers probing for dirty units.
///
/// The cache mutex protects map structure and entry bytes; it is held
/// only for memcpys, never across backend I/O. Flushes snapshot the
/// entry, write the backend under the stripe's exclusive shard lock,
/// and only then remove the entry — so a concurrent reader either
/// still finds the entry (served the new bytes from memory) or finds
/// it gone, which guarantees the backend write has completed and the
/// backend read returns the same new bytes.
#[derive(Debug)]
pub(crate) struct StripeCache {
    unit_size: usize,
    shards: Box<[Mutex<EntryMap>]>,
    /// Dirty stripe keys, oldest first (eviction order). A key is
    /// pushed when its entry is created and popped by flush; a
    /// popped key whose entry is already gone (discarded by a
    /// full-stripe overwrite) is skipped.
    queue: Mutex<VecDeque<u64>>,
    /// Count of live dirty entries (monotonic with map contents).
    dirty: AtomicUsize,
    /// Per-shard live-entry counts: a probe of a clean shard skips
    /// its mutex entirely.
    shard_dirty: Box<[AtomicUsize]>,
    mode: AtomicU8,
    max_dirty: AtomicUsize,
    stats: CacheCounters,
}

impl StripeCache {
    pub(crate) fn new(unit_size: usize, shards: usize) -> StripeCache {
        StripeCache {
            unit_size,
            shards: (0..shards).map(|_| Mutex::new(EntryMap::default())).collect(),
            queue: Mutex::new(VecDeque::new()),
            dirty: AtomicUsize::new(0),
            shard_dirty: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            mode: AtomicU8::new(MODE_WRITE_THROUGH),
            max_dirty: AtomicUsize::new(CachePolicy::DEFAULT_MAX_DIRTY),
            stats: CacheCounters::default(),
        }
    }

    /// The installed policy.
    pub(crate) fn policy(&self) -> CachePolicy {
        match self.mode.load(Ordering::Acquire) {
            MODE_WRITE_BACK => {
                CachePolicy::WriteBack { max_dirty: self.max_dirty.load(Ordering::Acquire) }
            }
            _ => CachePolicy::WriteThrough,
        }
    }

    /// Installs a policy (the store flushes around mode changes).
    pub(crate) fn set_policy(&self, policy: CachePolicy) {
        match policy {
            CachePolicy::WriteThrough => self.mode.store(MODE_WRITE_THROUGH, Ordering::Release),
            CachePolicy::WriteBack { max_dirty } => {
                self.max_dirty.store(max_dirty.max(1), Ordering::Release);
                self.mode.store(MODE_WRITE_BACK, Ordering::Release);
            }
        }
    }

    /// True when writes should be cached.
    pub(crate) fn is_write_back(&self) -> bool {
        self.mode.load(Ordering::Acquire) == MODE_WRITE_BACK
    }

    /// Cheap read-path gate: false means no entry anywhere, so reads
    /// skip the cache probe entirely (a clean or write-through store
    /// pays one relaxed atomic load).
    pub(crate) fn maybe_dirty(&self) -> bool {
        self.dirty.load(Ordering::Acquire) != 0
    }

    /// Live dirty-stripe count.
    pub(crate) fn dirty_stripes(&self) -> usize {
        self.dirty.load(Ordering::Acquire)
    }

    /// True when the dirty count exceeds the write-back budget.
    pub(crate) fn over_limit(&self) -> bool {
        self.dirty.load(Ordering::Acquire) > self.max_dirty.load(Ordering::Acquire)
    }

    /// Serves data-slot `j` of the keyed stripe from the cache if it
    /// is dirty, copying into `out`. Lock-free callers (healthy
    /// reads) rely on the entry-removal ordering described on
    /// [`StripeCache`].
    pub(crate) fn read_into(&self, shard: usize, key: u64, j: usize, out: &mut [u8]) -> bool {
        // Clean shards answer with one atomic load, no mutex. A probe
        // racing the entry's creation misses — fine, the write is
        // concurrent and the backend still holds the pre-write bytes.
        if self.shard_dirty[shard].load(Ordering::Acquire) == 0 {
            return false;
        }
        let map = self.shards[shard].lock().unwrap();
        match map.get(&key) {
            Some(e) if e.dirty[j] => {
                out.copy_from_slice(&e.data[j * self.unit_size..(j + 1) * self.unit_size]);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Caches a write of data-slot `j` (of `k_data`) in the keyed
    /// stripe; latest write wins. Returns the entry's dirty-unit
    /// count after the write (== `k_data` means fully dirty). The
    /// caller holds the stripe's exclusive shard lock.
    pub(crate) fn write(&self, shard: usize, key: u64, k_data: usize, j: usize, data: &[u8]) {
        debug_assert_eq!(data.len(), self.unit_size);
        let mut map = self.shards[shard].lock().unwrap();
        let e = map.entry(key).or_insert_with(|| {
            self.dirty.fetch_add(1, Ordering::AcqRel);
            self.shard_dirty[shard].fetch_add(1, Ordering::AcqRel);
            self.queue.lock().unwrap().push_back(key);
            self.stats.insertions.fetch_add(1, Ordering::Relaxed);
            StripeEntry {
                dirty: vec![false; k_data].into_boxed_slice(),
                data: vec![0u8; k_data * self.unit_size].into_boxed_slice(),
                ndirty: 0,
            }
        });
        if !e.dirty[j] {
            e.dirty[j] = true;
            e.ndirty += 1;
        } else {
            self.stats.absorbed_writes.fetch_add(1, Ordering::Relaxed);
        }
        e.data[j * self.unit_size..(j + 1) * self.unit_size].copy_from_slice(data);
    }

    /// Copies the keyed entry's dirty flags into `snap` and appends
    /// its data units to `staged` (leaving the entry in place so
    /// readers keep hitting it during the flush's backend writes).
    /// Returns false — touching neither buffer — when the entry does
    /// not exist.
    pub(crate) fn snapshot_append(
        &self,
        shard: usize,
        key: u64,
        snap: &mut FlushSnapshot,
        staged: &mut Vec<u8>,
    ) -> bool {
        let map = self.shards[shard].lock().unwrap();
        match map.get(&key) {
            Some(e) => {
                snap.dirty.clear();
                snap.dirty.extend_from_slice(&e.dirty);
                snap.ndirty = e.ndirty;
                staged.extend_from_slice(&e.data);
                true
            }
            None => false,
        }
    }

    /// Removes an entry whose contents have been flushed to — or
    /// fully superseded by — writes that have **already landed** on
    /// the backend (see the ordering note on [`StripeCache`]). A
    /// no-op for absent keys.
    pub(crate) fn remove_flushed(&self, shard: usize, key: u64) {
        if self.shards[shard].lock().unwrap().remove(&key).is_some() {
            self.dirty.fetch_sub(1, Ordering::AcqRel);
            self.shard_dirty[shard].fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Pops the oldest dirty stripe key, or `None` when the queue is
    /// empty. The entry may already be gone (superseded by a
    /// full-stripe overwrite); callers skip such keys.
    pub(crate) fn pop_dirty(&self) -> Option<u64> {
        self.queue.lock().unwrap().pop_front()
    }

    /// Current dirty-queue length — the drain bound for a full
    /// flush, so a flush racing live write-back traffic terminates
    /// after the stripes that were queued when it began.
    pub(crate) fn queue_len(&self) -> usize {
        self.queue.lock().unwrap().len()
    }

    /// Returns a popped key to the queue (flush error path), so a
    /// later flush retries the stripe instead of stranding it.
    pub(crate) fn requeue(&self, key: u64) {
        self.queue.lock().unwrap().push_front(key);
    }

    /// True when the keyed stripe has a live cache entry. Used by the
    /// read-mostly write bypass to keep ordering exact: a stripe with
    /// a dirty entry must keep writing into it (a bypassed backend
    /// write would be shadowed by the stale entry until its flush).
    /// The caller holds the stripe's exclusive shard lock.
    pub(crate) fn has_entry(&self, shard: usize, key: u64) -> bool {
        if self.shard_dirty[shard].load(Ordering::Acquire) == 0 {
            return false;
        }
        self.shards[shard].lock().unwrap().contains_key(&key)
    }

    /// Accounts `n` stripes flushed by budget-driven eviction.
    pub(crate) fn note_evictions(&self, n: u64) {
        self.stats.evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// Accounts a completed flush batch: `stripes` stripes carrying
    /// `units` dirty units written out combined.
    pub(crate) fn note_flush(&self, stripes: u64, units: u64) {
        self.stats.flushed_stripes.fetch_add(stripes, Ordering::Relaxed);
        self.stats.flushed_units.fetch_add(units, Ordering::Relaxed);
    }

    /// Snapshot of the lifetime counters plus the live dirty count.
    /// `bypassed_writes` is filled in by the store from the metrics
    /// registry, where the bypass decision is made and tallied.
    pub(crate) fn stats_snapshot(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            insertions: self.stats.insertions.load(Ordering::Relaxed),
            absorbed_writes: self.stats.absorbed_writes.load(Ordering::Relaxed),
            bypassed_writes: 0,
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            flushed_stripes: self.stats.flushed_stripes.load(Ordering::Relaxed),
            flushed_units: self.stats.flushed_units.load(Ordering::Relaxed),
            dirty_stripes: self.dirty.load(Ordering::Acquire) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_encoding_roundtrips() {
        for p in [
            CachePolicy::WriteThrough,
            CachePolicy::write_back(),
            CachePolicy::WriteBack { max_dirty: 7 },
        ] {
            assert_eq!(CachePolicy::decode(&p.encode()), Some(p));
        }
        assert_eq!(CachePolicy::decode("writeback"), Some(CachePolicy::write_back()));
        assert_eq!(CachePolicy::decode(""), Some(CachePolicy::WriteThrough));
        assert_eq!(
            CachePolicy::decode("writeback:0"),
            Some(CachePolicy::WriteBack { max_dirty: 1 })
        );
        assert_eq!(CachePolicy::decode("ramdisk"), None);
        assert_eq!(CachePolicy::decode("writeback:x"), None);
    }

    #[test]
    fn stripe_key_packs_and_unpacks() {
        for (copy, stripe) in [(0usize, 0usize), (1, 2), (7, 1023), (u32::MAX as usize, 5)] {
            assert_eq!(key_parts(stripe_key(copy, stripe)), (copy, stripe));
        }
    }

    #[test]
    fn cache_write_read_flush_cycle() {
        let cache = StripeCache::new(8, 4);
        cache.set_policy(CachePolicy::WriteBack { max_dirty: 2 });
        assert!(cache.is_write_back());
        assert!(!cache.maybe_dirty());
        let key = stripe_key(0, 3);
        cache.write(1, key, 3, 1, &[0xaa; 8]);
        assert_eq!(cache.dirty_stripes(), 1);
        let mut out = [0u8; 8];
        assert!(cache.read_into(1, key, 1, &mut out));
        assert_eq!(out, [0xaa; 8]);
        assert!(!cache.read_into(1, key, 0, &mut out), "clean slot misses");
        // Latest write wins.
        cache.write(1, key, 3, 1, &[0xbb; 8]);
        assert!(cache.read_into(1, key, 1, &mut out));
        assert_eq!(out, [0xbb; 8]);
        // Snapshot sees both dirty flags and data; entry survives.
        cache.write(1, key, 3, 0, &[0x11; 8]);
        let mut snap = FlushSnapshot::default();
        let mut staged = Vec::new();
        assert!(cache.snapshot_append(1, key, &mut snap, &mut staged));
        assert_eq!(snap.ndirty, 2);
        assert_eq!(snap.dirty, vec![true, true, false]);
        assert_eq!(&staged[8..16], &[0xbb; 8]);
        assert!(cache.maybe_dirty());
        // Flush completes: entry removed, queue drains to the key.
        assert_eq!(cache.pop_dirty(), Some(key));
        cache.remove_flushed(1, key);
        assert_eq!(cache.dirty_stripes(), 0);
        assert!(!cache.read_into(1, key, 1, &mut out));
        assert_eq!(cache.pop_dirty(), None);
    }

    #[test]
    fn superseded_entries_leave_stale_queue_keys() {
        let cache = StripeCache::new(4, 2);
        cache.set_policy(CachePolicy::write_back());
        let key = stripe_key(2, 9);
        cache.write(0, key, 2, 0, &[1; 4]);
        assert_eq!(cache.dirty_stripes(), 1);
        assert_eq!(cache.queue_len(), 1);
        // A full-stripe overwrite that has landed on the backend
        // removes the entry; the queued key becomes stale.
        cache.remove_flushed(0, key);
        assert_eq!(cache.dirty_stripes(), 0);
        // Pop returns the stale key, entry is gone (and a snapshot
        // attempt touches neither buffer).
        assert_eq!(cache.pop_dirty(), Some(key));
        let mut snap = FlushSnapshot::default();
        let mut staged = Vec::new();
        assert!(!cache.snapshot_append(0, key, &mut snap, &mut staged));
        assert!(staged.is_empty());
        assert_eq!(cache.queue_len(), 0);
    }

    #[test]
    fn over_limit_tracks_budget() {
        let cache = StripeCache::new(4, 2);
        cache.set_policy(CachePolicy::WriteBack { max_dirty: 1 });
        cache.write(0, stripe_key(0, 0), 2, 0, &[1; 4]);
        assert!(!cache.over_limit());
        cache.write(1, stripe_key(0, 1), 2, 0, &[2; 4]);
        assert!(cache.over_limit());
        // Requeue puts an errored flush victim back at the front.
        let k = cache.pop_dirty().unwrap();
        cache.requeue(k);
        assert_eq!(cache.pop_dirty(), Some(k));
    }
}
