//! Pluggable storage backends: where the array's bytes actually live.
//!
//! A [`Backend`] exposes a fixed-geometry array of disks, each divided
//! into fixed-size units, with thread-safe unit-granular reads and
//! writes (interior mutability, so an online rebuild can stream from
//! many disks concurrently) and per-disk IO counters — the measurement
//! surface for verifying declustering's (k−1)/(v−1) rebuild-load claim
//! on real traffic.

use crate::error::StoreError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

/// A fixed array of `disks × units_per_disk` units of `unit_size` bytes.
///
/// Implementations must be thread-safe: the rebuilder issues reads to
/// many disks from worker threads. Counters track physical IO per disk
/// (reads/writes of whole units) and are maintained by the backend so
/// every access path — normal, degraded, rebuild — is measured.
pub trait Backend: Send + Sync {
    /// Number of physical disks (including any spares).
    fn disks(&self) -> usize;

    /// Units per disk.
    fn units_per_disk(&self) -> usize;

    /// Bytes per unit.
    fn unit_size(&self) -> usize;

    /// Reads the unit at `(disk, offset)` into `buf` (`unit_size` bytes).
    fn read_unit(&self, disk: usize, offset: usize, buf: &mut [u8]) -> Result<(), StoreError>;

    /// Writes `buf` (`unit_size` bytes) to the unit at `(disk, offset)`.
    fn write_unit(&self, disk: usize, offset: usize, buf: &[u8]) -> Result<(), StoreError>;

    /// Flushes buffered writes to durable storage.
    fn flush(&self) -> Result<(), StoreError>;

    /// Units read from `disk` since construction or the last reset.
    fn read_count(&self, disk: usize) -> u64;

    /// Units written to `disk` since construction or the last reset.
    fn write_count(&self, disk: usize) -> u64;

    /// Zeroes all IO counters.
    fn reset_counters(&self);

    /// Overwrites a whole physical disk with zeroes — the fault
    /// injector's "the medium is gone" primitive. A store must never
    /// read a wiped disk while it is failed; tests wipe on failure so
    /// any stale read surfaces as corruption instead of silent luck.
    fn wipe_disk(&self, disk: usize) -> Result<(), StoreError>;

    /// Durably records the store's logical→physical disk mapping (the
    /// redirect table updated when a rebuild moves a logical disk onto
    /// a spare). Volatile backends keep the default no-op; durable
    /// backends must persist it so a reopened store does not read the
    /// stale pre-rebuild disk.
    fn persist_mapping(&self, redirect: &[usize]) -> Result<(), StoreError> {
        let _ = redirect;
        Ok(())
    }

    /// Loads the mapping saved by [`Backend::persist_mapping`], or
    /// `None` if none was ever saved.
    fn load_mapping(&self) -> Result<Option<Vec<usize>>, StoreError> {
        Ok(None)
    }
}

fn check_geometry(
    disks: usize,
    units: usize,
    disk: usize,
    offset: usize,
    unit_size: usize,
    buf_len: usize,
) -> Result<(), StoreError> {
    if disk >= disks || offset >= units {
        return Err(StoreError::OutOfRange { disk, offset });
    }
    if buf_len != unit_size {
        return Err(StoreError::BadBufferSize { expected: unit_size, got: buf_len });
    }
    Ok(())
}

/// Shared per-disk IO counters.
#[derive(Debug)]
struct Counters {
    reads: Vec<AtomicU64>,
    writes: Vec<AtomicU64>,
}

impl Counters {
    fn new(disks: usize) -> Self {
        Counters {
            reads: (0..disks).map(|_| AtomicU64::new(0)).collect(),
            writes: (0..disks).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn reset(&self) {
        for c in self.reads.iter().chain(&self.writes) {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// In-memory backend: one `Vec<u8>` per disk behind an `RwLock`, so
/// concurrent readers (the rebuild fan-in) never serialize against each
/// other. The reference backend for tests and benchmarks.
#[derive(Debug)]
pub struct MemBackend {
    unit_size: usize,
    units: usize,
    data: Vec<RwLock<Vec<u8>>>,
    counters: Counters,
}

impl MemBackend {
    /// Allocates a zero-filled array.
    ///
    /// # Panics
    /// Panics if any dimension is zero (the infallible constructor is
    /// for in-process geometry; the file-backed path returns
    /// [`StoreError::Geometry`] instead).
    pub fn new(disks: usize, units_per_disk: usize, unit_size: usize) -> Self {
        assert!(disks > 0 && units_per_disk > 0 && unit_size > 0, "empty geometry");
        MemBackend {
            unit_size,
            units: units_per_disk,
            data: (0..disks).map(|_| RwLock::new(vec![0u8; units_per_disk * unit_size])).collect(),
            counters: Counters::new(disks),
        }
    }
}

impl Backend for MemBackend {
    fn disks(&self) -> usize {
        self.data.len()
    }

    fn units_per_disk(&self) -> usize {
        self.units
    }

    fn unit_size(&self) -> usize {
        self.unit_size
    }

    fn read_unit(&self, disk: usize, offset: usize, buf: &mut [u8]) -> Result<(), StoreError> {
        check_geometry(self.data.len(), self.units, disk, offset, self.unit_size, buf.len())?;
        let d = self.data[disk].read().unwrap();
        let at = offset * self.unit_size;
        buf.copy_from_slice(&d[at..at + self.unit_size]);
        self.counters.reads[disk].fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn write_unit(&self, disk: usize, offset: usize, buf: &[u8]) -> Result<(), StoreError> {
        check_geometry(self.data.len(), self.units, disk, offset, self.unit_size, buf.len())?;
        let mut d = self.data[disk].write().unwrap();
        let at = offset * self.unit_size;
        d[at..at + self.unit_size].copy_from_slice(buf);
        self.counters.writes[disk].fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn flush(&self) -> Result<(), StoreError> {
        Ok(())
    }

    fn read_count(&self, disk: usize) -> u64 {
        self.counters.reads[disk].load(Ordering::Relaxed)
    }

    fn write_count(&self, disk: usize) -> u64 {
        self.counters.writes[disk].load(Ordering::Relaxed)
    }

    fn reset_counters(&self) {
        self.counters.reset();
    }

    fn wipe_disk(&self, disk: usize) -> Result<(), StoreError> {
        if disk >= self.data.len() {
            return Err(StoreError::OutOfRange { disk, offset: 0 });
        }
        self.data[disk].write().unwrap().fill(0);
        Ok(())
    }
}

/// File-backed backend: one preallocated file per disk under a
/// directory (`disk-0000.bin`, `disk-0001.bin`, …), reads and writes at
/// `offset * unit_size`. Each file sits behind its own mutex, so IO to
/// different disks proceeds in parallel while IO to one disk is
/// serialized — the same contention model as a real single-actuator
/// drive.
#[derive(Debug)]
pub struct FileBackend {
    dir: PathBuf,
    unit_size: usize,
    units: usize,
    files: Vec<Mutex<File>>,
    counters: Counters,
}

impl FileBackend {
    fn disk_path(dir: &Path, disk: usize) -> PathBuf {
        dir.join(format!("disk-{disk:04}.bin"))
    }

    /// Creates (or truncates) the per-disk files, preallocated to the
    /// full geometry with zeroes.
    pub fn create(
        dir: impl AsRef<Path>,
        disks: usize,
        units_per_disk: usize,
        unit_size: usize,
    ) -> Result<Self, StoreError> {
        if disks == 0 || units_per_disk == 0 || unit_size == 0 {
            return Err(StoreError::Geometry(format!(
                "empty geometry: {disks} disks × {units_per_disk} units × {unit_size} B"
            )));
        }
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        // A fresh array must not inherit the rebuild mapping of a
        // previous array that lived in this directory.
        match std::fs::remove_file(dir.join(Self::MAPPING_FILE)) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let mut files = Vec::with_capacity(disks);
        for d in 0..disks {
            let f = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(Self::disk_path(&dir, d))?;
            f.set_len((units_per_disk * unit_size) as u64)?;
            files.push(Mutex::new(f));
        }
        Ok(FileBackend {
            dir,
            unit_size,
            units: units_per_disk,
            files,
            counters: Counters::new(disks),
        })
    }

    /// Opens an existing array created by [`FileBackend::create`],
    /// validating that every disk file has the expected length.
    pub fn open(
        dir: impl AsRef<Path>,
        disks: usize,
        units_per_disk: usize,
        unit_size: usize,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        let expected = (units_per_disk * unit_size) as u64;
        let mut files = Vec::with_capacity(disks);
        for d in 0..disks {
            let path = Self::disk_path(&dir, d);
            let f = OpenOptions::new().read(true).write(true).open(&path)?;
            let len = f.metadata()?.len();
            if len != expected {
                return Err(StoreError::Corrupt(format!(
                    "{} is {len} bytes, expected {expected}",
                    path.display()
                )));
            }
            files.push(Mutex::new(f));
        }
        Ok(FileBackend {
            dir,
            unit_size,
            units: units_per_disk,
            files,
            counters: Counters::new(disks),
        })
    }

    /// The directory holding the disk files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// File recording the logical→physical disk mapping after rebuilds.
    pub const MAPPING_FILE: &'static str = "mapping.json";
}

impl Backend for FileBackend {
    fn disks(&self) -> usize {
        self.files.len()
    }

    fn units_per_disk(&self) -> usize {
        self.units
    }

    fn unit_size(&self) -> usize {
        self.unit_size
    }

    fn read_unit(&self, disk: usize, offset: usize, buf: &mut [u8]) -> Result<(), StoreError> {
        check_geometry(self.files.len(), self.units, disk, offset, self.unit_size, buf.len())?;
        let mut f = self.files[disk].lock().unwrap();
        f.seek(SeekFrom::Start((offset * self.unit_size) as u64))?;
        f.read_exact(buf)?;
        self.counters.reads[disk].fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn write_unit(&self, disk: usize, offset: usize, buf: &[u8]) -> Result<(), StoreError> {
        check_geometry(self.files.len(), self.units, disk, offset, self.unit_size, buf.len())?;
        let mut f = self.files[disk].lock().unwrap();
        f.seek(SeekFrom::Start((offset * self.unit_size) as u64))?;
        f.write_all(buf)?;
        self.counters.writes[disk].fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn flush(&self) -> Result<(), StoreError> {
        for f in &self.files {
            f.lock().unwrap().sync_data()?;
        }
        Ok(())
    }

    fn read_count(&self, disk: usize) -> u64 {
        self.counters.reads[disk].load(Ordering::Relaxed)
    }

    fn write_count(&self, disk: usize) -> u64 {
        self.counters.writes[disk].load(Ordering::Relaxed)
    }

    fn reset_counters(&self) {
        self.counters.reset();
    }

    fn wipe_disk(&self, disk: usize) -> Result<(), StoreError> {
        if disk >= self.files.len() {
            return Err(StoreError::OutOfRange { disk, offset: 0 });
        }
        let zeros = vec![0u8; self.unit_size];
        let mut f = self.files[disk].lock().unwrap();
        f.seek(SeekFrom::Start(0))?;
        for _ in 0..self.units {
            f.write_all(&zeros)?;
        }
        Ok(())
    }

    fn persist_mapping(&self, redirect: &[usize]) -> Result<(), StoreError> {
        let json = serde_json::to_string(&redirect.to_vec())
            .map_err(|e| StoreError::Corrupt(format!("mapping encode: {e}")))?;
        std::fs::write(self.dir.join(Self::MAPPING_FILE), json)?;
        Ok(())
    }

    fn load_mapping(&self) -> Result<Option<Vec<usize>>, StoreError> {
        let path = self.dir.join(Self::MAPPING_FILE);
        if !path.exists() {
            return Ok(None);
        }
        let json = std::fs::read_to_string(path)?;
        let redirect: Vec<usize> = serde_json::from_str(&json)
            .map_err(|e| StoreError::Corrupt(format!("mapping decode: {e}")))?;
        Ok(Some(redirect))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(backend: &dyn Backend) {
        let us = backend.unit_size();
        let pattern: Vec<u8> = (0..us).map(|i| (i % 251) as u8).collect();
        backend.write_unit(1, 3, &pattern).unwrap();
        let mut out = vec![0u8; us];
        backend.read_unit(1, 3, &mut out).unwrap();
        assert_eq!(out, pattern);
        // untouched units read back as zeroes
        backend.read_unit(0, 0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
        assert_eq!(backend.read_count(1), 1);
        assert_eq!(backend.read_count(0), 1);
        assert_eq!(backend.write_count(1), 1);
        backend.reset_counters();
        assert_eq!(backend.read_count(1), 0);
    }

    #[test]
    fn mem_roundtrip_and_counters() {
        let b = MemBackend::new(3, 8, 64);
        roundtrip(&b);
    }

    #[test]
    fn file_roundtrip_and_counters() {
        let dir = std::env::temp_dir().join(format!("pdl-store-test-{}", std::process::id()));
        let b = FileBackend::create(&dir, 3, 8, 64).unwrap();
        roundtrip(&b);
        b.flush().unwrap();
        drop(b);
        // reopen and confirm persistence
        let b = FileBackend::open(&dir, 3, 8, 64).unwrap();
        let mut out = vec![0u8; 64];
        b.read_unit(1, 3, &mut out).unwrap();
        assert_eq!(out[1], 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_discards_stale_mapping() {
        let dir = std::env::temp_dir().join(format!("pdl-store-stalemap-{}", std::process::id()));
        {
            let b = FileBackend::create(&dir, 3, 4, 32).unwrap();
            b.persist_mapping(&[0, 2, 1]).unwrap();
            assert_eq!(b.load_mapping().unwrap(), Some(vec![0, 2, 1]));
        }
        // A fresh array in the same directory starts with no mapping.
        let b = FileBackend::create(&dir, 3, 4, 32).unwrap();
        assert_eq!(b.load_mapping().unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_bad_length() {
        let dir = std::env::temp_dir().join(format!("pdl-store-badlen-{}", std::process::id()));
        {
            FileBackend::create(&dir, 2, 4, 32).unwrap();
        }
        assert!(matches!(FileBackend::open(&dir, 2, 8, 32), Err(StoreError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bounds_checked() {
        let b = MemBackend::new(2, 4, 16);
        let mut buf = vec![0u8; 16];
        assert!(matches!(b.read_unit(2, 0, &mut buf), Err(StoreError::OutOfRange { .. })));
        assert!(matches!(b.read_unit(0, 4, &mut buf), Err(StoreError::OutOfRange { .. })));
        let mut short = vec![0u8; 15];
        assert!(matches!(b.read_unit(0, 0, &mut short), Err(StoreError::BadBufferSize { .. })));
    }
}
