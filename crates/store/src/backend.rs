//! Pluggable storage backends: where the array's bytes actually live.
//!
//! A [`Backend`] exposes a fixed-geometry array of disks, each divided
//! into fixed-size units, with thread-safe unit-granular *and
//! vectored multi-unit* reads and writes (interior mutability, so an
//! online rebuild can stream from many disks concurrently) and
//! per-disk IO counters — units transferred plus backend calls, the
//! measurement surface for verifying both declustering's (k−1)/(v−1)
//! rebuild-load claim and the store's IO-coalescing guarantees on
//! real traffic.

use crate::error::StoreError;
use crate::obs::DiskCounters;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};

/// Positional read: no seek, no cursor state, so one brief lock
/// suffices per transfer. Note the per-disk mutex is NOT merely a
/// contention model: the vectored scatter/gather paths below
/// ([`read_scatter_at`]/[`write_gather_at`]) still seek the shared
/// file cursor (there is no stable `preadv` in std), so the mutex
/// remains load-bearing for their correctness.
#[cfg(unix)]
fn read_at(f: &File, buf: &mut [u8], at: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    f.read_exact_at(buf, at)
}

#[cfg(unix)]
fn write_at(f: &File, buf: &[u8], at: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    f.write_all_at(buf, at)
}

#[cfg(not(unix))]
fn read_at(mut f: &File, buf: &mut [u8], at: u64) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    f.seek(SeekFrom::Start(at))?;
    f.read_exact(buf)
}

#[cfg(not(unix))]
fn write_at(mut f: &File, buf: &[u8], at: u64) -> std::io::Result<()> {
    use std::io::{Seek, SeekFrom, Write};
    f.seek(SeekFrom::Start(at))?;
    f.write_all(buf)
}

/// One `readv`-style transfer: a contiguous file range scattered into
/// the caller's buffers with no staging copy. Loops on partial reads.
fn read_scatter_at(mut f: &File, bufs: &mut [&mut [u8]], at: u64) -> std::io::Result<()> {
    use std::io::{IoSliceMut, Read, Seek, SeekFrom};
    f.seek(SeekFrom::Start(at))?;
    let mut slices: Vec<IoSliceMut<'_>> = bufs.iter_mut().map(|b| IoSliceMut::new(b)).collect();
    let mut rem: &mut [IoSliceMut<'_>] = &mut slices;
    while !rem.is_empty() {
        let n = f.read_vectored(rem)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "short scatter read",
            ));
        }
        IoSliceMut::advance_slices(&mut rem, n);
    }
    Ok(())
}

/// One `writev`-style transfer: the caller's buffers gathered into a
/// contiguous file range with no staging copy. Loops on partial writes.
fn write_gather_at(mut f: &File, bufs: &[&[u8]], at: u64) -> std::io::Result<()> {
    use std::io::{IoSlice, Seek, SeekFrom, Write};
    f.seek(SeekFrom::Start(at))?;
    let mut slices: Vec<IoSlice<'_>> = bufs.iter().map(|b| IoSlice::new(b)).collect();
    let mut rem: &mut [IoSlice<'_>] = &mut slices;
    while !rem.is_empty() {
        let n = f.write_vectored(rem)?;
        if n == 0 {
            return Err(std::io::Error::new(std::io::ErrorKind::WriteZero, "short gather write"));
        }
        IoSlice::advance_slices(&mut rem, n);
    }
    Ok(())
}

/// A fixed array of `disks × units_per_disk` units of `unit_size` bytes.
///
/// Implementations must be thread-safe: the rebuilder issues reads to
/// many disks from worker threads. Counters track physical IO per disk
/// (reads/writes of whole units) and are maintained by the backend so
/// every access path — normal, degraded, rebuild — is measured.
pub trait Backend: Send + Sync {
    /// Number of physical disks (including any spares).
    fn disks(&self) -> usize;

    /// Units per disk.
    fn units_per_disk(&self) -> usize;

    /// Bytes per unit.
    fn unit_size(&self) -> usize;

    /// Reads the unit at `(disk, offset)` into `buf` (`unit_size` bytes).
    fn read_unit(&self, disk: usize, offset: usize, buf: &mut [u8]) -> Result<(), StoreError>;

    /// Writes `buf` (`unit_size` bytes) to the unit at `(disk, offset)`.
    fn write_unit(&self, disk: usize, offset: usize, buf: &[u8]) -> Result<(), StoreError>;

    /// Reads `buf.len() / unit_size` consecutive units from `disk`
    /// starting at `offset` — the vectored primitive behind the
    /// store's coalesced multi-block transfers. `buf` must be a
    /// nonzero multiple of the unit size. The default implementation
    /// loops [`Backend::read_unit`] (one call per unit); backends
    /// should override it with a single span transfer.
    fn read_units(&self, disk: usize, offset: usize, buf: &mut [u8]) -> Result<(), StoreError> {
        let n = span_units(self.unit_size(), buf.len())?;
        for (i, chunk) in buf.chunks_exact_mut(self.unit_size()).enumerate().take(n) {
            self.read_unit(disk, offset + i, chunk)?;
        }
        Ok(())
    }

    /// Writes `buf.len() / unit_size` consecutive units to `disk`
    /// starting at `offset` (vectored twin of [`Backend::read_units`];
    /// same contract, same coalescing default).
    fn write_units(&self, disk: usize, offset: usize, buf: &[u8]) -> Result<(), StoreError> {
        let n = span_units(self.unit_size(), buf.len())?;
        for (i, chunk) in buf.chunks_exact(self.unit_size()).enumerate().take(n) {
            self.write_unit(disk, offset + i, chunk)?;
        }
        Ok(())
    }

    /// Scatter read: one contiguous span of units starting at
    /// `offset`, delivered into the caller's (unit-multiple-sized)
    /// buffers in order — `readv` semantics, so the store's coalesced
    /// multi-block reads land directly in caller memory with no
    /// staging copy. The default loops [`Backend::read_units`] per
    /// buffer; backends should override with a single transfer.
    fn read_units_scatter(
        &self,
        disk: usize,
        offset: usize,
        bufs: &mut [&mut [u8]],
    ) -> Result<(), StoreError> {
        let mut at = offset;
        for buf in bufs {
            self.read_units(disk, at, buf)?;
            at += buf.len() / self.unit_size();
        }
        Ok(())
    }

    /// Gather write: the caller's (unit-multiple-sized) buffers
    /// written as one contiguous span of units starting at `offset` —
    /// `writev` semantics, the twin of [`Backend::read_units_scatter`].
    fn write_units_gather(
        &self,
        disk: usize,
        offset: usize,
        bufs: &[&[u8]],
    ) -> Result<(), StoreError> {
        let mut at = offset;
        for buf in bufs {
            self.write_units(disk, at, buf)?;
            at += buf.len() / self.unit_size();
        }
        Ok(())
    }

    /// Flushes buffered writes to durable storage.
    fn flush(&self) -> Result<(), StoreError>;

    /// Units read from `disk` since construction or the last reset.
    fn read_count(&self, disk: usize) -> u64;

    /// Units written to `disk` since construction or the last reset.
    fn write_count(&self, disk: usize) -> u64;

    /// Backend *calls* (operations) that served reads on `disk` — a
    /// vectored transfer counts once here and once per unit in
    /// [`Backend::read_count`]. The default equals the unit count,
    /// which is exact for backends that never coalesce; coalescing
    /// backends must track calls separately.
    fn read_calls(&self, disk: usize) -> u64 {
        self.read_count(disk)
    }

    /// Backend calls that served writes on `disk` (see
    /// [`Backend::read_calls`]).
    fn write_calls(&self, disk: usize) -> u64 {
        self.write_count(disk)
    }

    /// Whether reading a small unwanted hole to keep a run in one
    /// backend call beats splitting the run in two. True for
    /// syscall- or seek-bound backends (files, real disks, networks),
    /// where a call costs far more than a few extra units; memory-
    /// speed backends return false — their per-call cost is a lock
    /// acquisition, so bridged holes are pure wasted copying.
    fn prefers_gap_bridging(&self) -> bool {
        true
    }

    /// Zeroes all IO counters.
    fn reset_counters(&self);

    /// Overwrites a whole physical disk with zeroes — the fault
    /// injector's "the medium is gone" primitive. A store must never
    /// read a wiped disk while it is failed; tests wipe on failure so
    /// any stale read surfaces as corruption instead of silent luck.
    fn wipe_disk(&self, disk: usize) -> Result<(), StoreError>;

    /// Durably records the store's logical→physical disk mapping (the
    /// redirect table updated when a rebuild moves a logical disk onto
    /// a spare). Volatile backends keep the default no-op; durable
    /// backends must persist it so a reopened store does not read the
    /// stale pre-rebuild disk.
    fn persist_mapping(&self, redirect: &[usize]) -> Result<(), StoreError> {
        let _ = redirect;
        Ok(())
    }

    /// Loads the mapping saved by [`Backend::persist_mapping`], or
    /// `None` if none was ever saved.
    fn load_mapping(&self) -> Result<Option<Vec<usize>>, StoreError> {
        Ok(None)
    }

    /// Resizes every disk to `units` units — the reshape engine's
    /// geometry primitive: growing opens the zero-filled scratch
    /// region the target world migrates into; shrinking trims it away
    /// after the commit. New units **must read back as zeroes**.
    /// Callers must quiesce I/O first (the store resizes only under
    /// its exclusive state guard). Backends with immutable geometry
    /// keep the default error.
    fn set_units_per_disk(&self, units: usize) -> Result<(), StoreError> {
        let _ = units;
        Err(StoreError::Geometry("backend does not support resizing".into()))
    }
}

/// Validates a multi-unit buffer length, returning the unit count.
fn span_units(unit_size: usize, buf_len: usize) -> Result<usize, StoreError> {
    if buf_len == 0 || !buf_len.is_multiple_of(unit_size) {
        return Err(StoreError::BadBufferSize { expected: unit_size, got: buf_len });
    }
    Ok(buf_len / unit_size)
}

fn check_geometry(
    disks: usize,
    units: usize,
    disk: usize,
    offset: usize,
    unit_size: usize,
    buf_len: usize,
) -> Result<(), StoreError> {
    if disk >= disks || offset >= units {
        return Err(StoreError::OutOfRange { disk, offset });
    }
    if buf_len != unit_size {
        return Err(StoreError::BadBufferSize { expected: unit_size, got: buf_len });
    }
    Ok(())
}

/// Validates a multi-unit span against the geometry, returning the
/// unit count.
fn check_span(
    disks: usize,
    units: usize,
    disk: usize,
    offset: usize,
    unit_size: usize,
    buf_len: usize,
) -> Result<usize, StoreError> {
    let n = span_units(unit_size, buf_len)?;
    if disk >= disks || offset >= units || n > units - offset {
        return Err(StoreError::OutOfRange { disk, offset: offset + n.saturating_sub(1) });
    }
    Ok(n)
}

/// Validates a scatter/gather buffer list (each a nonzero unit
/// multiple) against the geometry, returning the total unit count.
fn check_scatter<'a>(
    disks: usize,
    units: usize,
    disk: usize,
    offset: usize,
    unit_size: usize,
    lens: impl Iterator<Item = usize> + 'a,
) -> Result<usize, StoreError> {
    let mut total = 0usize;
    for len in lens {
        // Single-unit buffers — the common shape the store's write
        // plans and scatter reads produce — skip the division.
        total += if len == unit_size { 1 } else { span_units(unit_size, len)? };
    }
    if total == 0 {
        return Err(StoreError::BadBufferSize { expected: unit_size, got: 0 });
    }
    if disk >= disks || offset >= units || total > units - offset {
        return Err(StoreError::OutOfRange { disk, offset: offset + total.saturating_sub(1) });
    }
    Ok(total)
}

/// In-memory backend: one `Vec<u8>` per disk behind an `RwLock`, so
/// concurrent readers (the rebuild fan-in) never serialize against each
/// other. The reference backend for tests and benchmarks.
#[derive(Debug)]
pub struct MemBackend {
    unit_size: usize,
    /// Units per disk — atomic so a reshape can grow/trim the
    /// geometry through `&self` (resizes happen only with I/O
    /// quiesced; see [`Backend::set_units_per_disk`]).
    units: AtomicUsize,
    data: Vec<RwLock<Vec<u8>>>,
    counters: DiskCounters,
}

impl MemBackend {
    /// Allocates a zero-filled array.
    ///
    /// # Panics
    /// Panics if any dimension is zero (the infallible constructor is
    /// for in-process geometry; the file-backed path returns
    /// [`StoreError::Geometry`] instead).
    pub fn new(disks: usize, units_per_disk: usize, unit_size: usize) -> Self {
        assert!(disks > 0 && units_per_disk > 0 && unit_size > 0, "empty geometry");
        MemBackend {
            unit_size,
            units: AtomicUsize::new(units_per_disk),
            data: (0..disks).map(|_| RwLock::new(vec![0u8; units_per_disk * unit_size])).collect(),
            counters: DiskCounters::new(disks),
        }
    }

    fn units(&self) -> usize {
        self.units.load(Ordering::Acquire)
    }
}

impl Backend for MemBackend {
    fn disks(&self) -> usize {
        self.data.len()
    }

    fn units_per_disk(&self) -> usize {
        self.units()
    }

    fn unit_size(&self) -> usize {
        self.unit_size
    }

    fn read_unit(&self, disk: usize, offset: usize, buf: &mut [u8]) -> Result<(), StoreError> {
        check_geometry(self.data.len(), self.units(), disk, offset, self.unit_size, buf.len())?;
        let d = self.data[disk].read().unwrap();
        let at = offset * self.unit_size;
        buf.copy_from_slice(&d[at..at + self.unit_size]);
        self.counters.add_read(disk, 1);
        Ok(())
    }

    fn write_unit(&self, disk: usize, offset: usize, buf: &[u8]) -> Result<(), StoreError> {
        check_geometry(self.data.len(), self.units(), disk, offset, self.unit_size, buf.len())?;
        let mut d = self.data[disk].write().unwrap();
        let at = offset * self.unit_size;
        d[at..at + self.unit_size].copy_from_slice(buf);
        self.counters.add_write(disk, 1);
        Ok(())
    }

    fn read_units(&self, disk: usize, offset: usize, buf: &mut [u8]) -> Result<(), StoreError> {
        let n = check_span(self.data.len(), self.units(), disk, offset, self.unit_size, buf.len())?;
        let d = self.data[disk].read().unwrap();
        let at = offset * self.unit_size;
        buf.copy_from_slice(&d[at..at + buf.len()]);
        self.counters.add_read(disk, n as u64);
        Ok(())
    }

    fn write_units(&self, disk: usize, offset: usize, buf: &[u8]) -> Result<(), StoreError> {
        let n = check_span(self.data.len(), self.units(), disk, offset, self.unit_size, buf.len())?;
        let mut d = self.data[disk].write().unwrap();
        let at = offset * self.unit_size;
        d[at..at + buf.len()].copy_from_slice(buf);
        self.counters.add_write(disk, n as u64);
        Ok(())
    }

    fn read_units_scatter(
        &self,
        disk: usize,
        offset: usize,
        bufs: &mut [&mut [u8]],
    ) -> Result<(), StoreError> {
        let n = check_scatter(
            self.data.len(),
            self.units(),
            disk,
            offset,
            self.unit_size,
            bufs.iter().map(|b| b.len()),
        )?;
        let d = self.data[disk].read().unwrap();
        let mut at = offset * self.unit_size;
        for buf in bufs {
            buf.copy_from_slice(&d[at..at + buf.len()]);
            at += buf.len();
        }
        self.counters.add_read(disk, n as u64);
        Ok(())
    }

    fn write_units_gather(
        &self,
        disk: usize,
        offset: usize,
        bufs: &[&[u8]],
    ) -> Result<(), StoreError> {
        let n = check_scatter(
            self.data.len(),
            self.units(),
            disk,
            offset,
            self.unit_size,
            bufs.iter().map(|b| b.len()),
        )?;
        let mut d = self.data[disk].write().unwrap();
        let mut at = offset * self.unit_size;
        for buf in bufs {
            d[at..at + buf.len()].copy_from_slice(buf);
            at += buf.len();
        }
        self.counters.add_write(disk, n as u64);
        Ok(())
    }

    fn flush(&self) -> Result<(), StoreError> {
        Ok(())
    }

    fn read_count(&self, disk: usize) -> u64 {
        self.counters.read_units(disk)
    }

    fn write_count(&self, disk: usize) -> u64 {
        self.counters.write_units(disk)
    }

    fn read_calls(&self, disk: usize) -> u64 {
        self.counters.read_calls(disk)
    }

    fn write_calls(&self, disk: usize) -> u64 {
        self.counters.write_calls(disk)
    }

    fn reset_counters(&self) {
        self.counters.reset();
    }

    fn prefers_gap_bridging(&self) -> bool {
        false
    }

    fn wipe_disk(&self, disk: usize) -> Result<(), StoreError> {
        if disk >= self.data.len() {
            return Err(StoreError::OutOfRange { disk, offset: 0 });
        }
        self.data[disk].write().unwrap().fill(0);
        Ok(())
    }

    fn set_units_per_disk(&self, units: usize) -> Result<(), StoreError> {
        if units == 0 {
            return Err(StoreError::Geometry("cannot resize to zero units".into()));
        }
        // Grow zero-fills (fresh scratch units read as zeroes); shrink
        // truncates. Per-disk write locks serialize against any
        // straggler I/O; the store only calls this quiesced.
        for d in &self.data {
            d.write().unwrap().resize(units * self.unit_size, 0);
        }
        self.units.store(units, Ordering::Release);
        Ok(())
    }
}

/// File-backed backend: one preallocated file per disk under a
/// directory (`disk-0000.bin`, `disk-0001.bin`, …), positional IO
/// (`pread`/`pwrite`-style, no seek round trip) at
/// `offset * unit_size`. Each file sits behind its own mutex, so IO to
/// different disks proceeds in parallel while IO to one disk is
/// serialized — the same contention model as a real single-actuator
/// drive.
#[derive(Debug)]
pub struct FileBackend {
    dir: PathBuf,
    unit_size: usize,
    /// Units per disk — atomic so a reshape can grow/trim the file
    /// geometry through `&self` (see [`Backend::set_units_per_disk`]).
    units: AtomicUsize,
    files: Vec<Mutex<File>>,
    counters: DiskCounters,
}

impl FileBackend {
    fn disk_path(dir: &Path, disk: usize) -> PathBuf {
        dir.join(format!("disk-{disk:04}.bin"))
    }

    /// Creates (or truncates) the per-disk files, preallocated to the
    /// full geometry with zeroes.
    pub fn create(
        dir: impl AsRef<Path>,
        disks: usize,
        units_per_disk: usize,
        unit_size: usize,
    ) -> Result<Self, StoreError> {
        if disks == 0 || units_per_disk == 0 || unit_size == 0 {
            return Err(StoreError::Geometry(format!(
                "empty geometry: {disks} disks × {units_per_disk} units × {unit_size} B"
            )));
        }
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        // A fresh array must not inherit the rebuild mapping of a
        // previous array that lived in this directory.
        match std::fs::remove_file(dir.join(Self::MAPPING_FILE)) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let mut files = Vec::with_capacity(disks);
        for d in 0..disks {
            let f = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(Self::disk_path(&dir, d))?;
            f.set_len((units_per_disk * unit_size) as u64)?;
            files.push(Mutex::new(f));
        }
        Ok(FileBackend {
            dir,
            unit_size,
            units: AtomicUsize::new(units_per_disk),
            files,
            counters: DiskCounters::new(disks),
        })
    }

    /// Opens an existing array created by [`FileBackend::create`],
    /// validating that every disk file has the expected length.
    pub fn open(
        dir: impl AsRef<Path>,
        disks: usize,
        units_per_disk: usize,
        unit_size: usize,
    ) -> Result<Self, StoreError> {
        Self::open_inner(dir, disks, units_per_disk, unit_size, false)
    }

    /// Opens an existing array, **truncating** disk files that are
    /// longer than the expected geometry (files shorter than expected
    /// are still [`StoreError::Corrupt`]). This is the self-healing
    /// open a committed reshape relies on: a crash after the final
    /// metadata write but before the scratch-region trim leaves the
    /// files longer than the metadata says, and the excess is — by
    /// the commit protocol — exactly the dead scratch region.
    pub fn open_trimming(
        dir: impl AsRef<Path>,
        disks: usize,
        units_per_disk: usize,
        unit_size: usize,
    ) -> Result<Self, StoreError> {
        Self::open_inner(dir, disks, units_per_disk, unit_size, true)
    }

    fn open_inner(
        dir: impl AsRef<Path>,
        disks: usize,
        units_per_disk: usize,
        unit_size: usize,
        trim: bool,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        let expected = (units_per_disk * unit_size) as u64;
        let mut files = Vec::with_capacity(disks);
        for d in 0..disks {
            let path = Self::disk_path(&dir, d);
            let f = OpenOptions::new().read(true).write(true).open(&path)?;
            let len = f.metadata()?.len();
            if len > expected && trim {
                f.set_len(expected)?;
            } else if len != expected {
                return Err(StoreError::Corrupt(format!(
                    "{} is {len} bytes, expected {expected}",
                    path.display()
                )));
            }
            files.push(Mutex::new(f));
        }
        Ok(FileBackend {
            dir,
            unit_size,
            units: AtomicUsize::new(units_per_disk),
            files,
            counters: DiskCounters::new(disks),
        })
    }

    /// The directory holding the disk files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn units(&self) -> usize {
        self.units.load(Ordering::Acquire)
    }

    /// File recording the logical→physical disk mapping after rebuilds.
    pub const MAPPING_FILE: &'static str = "mapping.json";

    /// Zero-buffer size for [`Backend::wipe_disk`] (1 MiB of zeroes
    /// per write call instead of one call per unit).
    const WIPE_CHUNK: usize = 1 << 20;
}

impl Backend for FileBackend {
    fn disks(&self) -> usize {
        self.files.len()
    }

    fn units_per_disk(&self) -> usize {
        self.units()
    }

    fn unit_size(&self) -> usize {
        self.unit_size
    }

    fn set_units_per_disk(&self, units: usize) -> Result<(), StoreError> {
        if units == 0 {
            return Err(StoreError::Geometry("cannot resize to zero units".into()));
        }
        let len = (units * self.unit_size) as u64;
        for f in &self.files {
            f.lock().unwrap().set_len(len)?;
        }
        self.units.store(units, Ordering::Release);
        Ok(())
    }

    fn read_unit(&self, disk: usize, offset: usize, buf: &mut [u8]) -> Result<(), StoreError> {
        check_geometry(self.files.len(), self.units(), disk, offset, self.unit_size, buf.len())?;
        let f = self.files[disk].lock().unwrap();
        read_at(&f, buf, (offset * self.unit_size) as u64)?;
        self.counters.add_read(disk, 1);
        Ok(())
    }

    fn write_unit(&self, disk: usize, offset: usize, buf: &[u8]) -> Result<(), StoreError> {
        check_geometry(self.files.len(), self.units(), disk, offset, self.unit_size, buf.len())?;
        let f = self.files[disk].lock().unwrap();
        write_at(&f, buf, (offset * self.unit_size) as u64)?;
        self.counters.add_write(disk, 1);
        Ok(())
    }

    fn read_units(&self, disk: usize, offset: usize, buf: &mut [u8]) -> Result<(), StoreError> {
        let n =
            check_span(self.files.len(), self.units(), disk, offset, self.unit_size, buf.len())?;
        let f = self.files[disk].lock().unwrap();
        read_at(&f, buf, (offset * self.unit_size) as u64)?;
        self.counters.add_read(disk, n as u64);
        Ok(())
    }

    fn write_units(&self, disk: usize, offset: usize, buf: &[u8]) -> Result<(), StoreError> {
        let n =
            check_span(self.files.len(), self.units(), disk, offset, self.unit_size, buf.len())?;
        let f = self.files[disk].lock().unwrap();
        write_at(&f, buf, (offset * self.unit_size) as u64)?;
        self.counters.add_write(disk, n as u64);
        Ok(())
    }

    fn read_units_scatter(
        &self,
        disk: usize,
        offset: usize,
        bufs: &mut [&mut [u8]],
    ) -> Result<(), StoreError> {
        let n = check_scatter(
            self.files.len(),
            self.units(),
            disk,
            offset,
            self.unit_size,
            bufs.iter().map(|b| b.len()),
        )?;
        let f = self.files[disk].lock().unwrap();
        read_scatter_at(&f, bufs, (offset * self.unit_size) as u64)?;
        self.counters.add_read(disk, n as u64);
        Ok(())
    }

    fn write_units_gather(
        &self,
        disk: usize,
        offset: usize,
        bufs: &[&[u8]],
    ) -> Result<(), StoreError> {
        let n = check_scatter(
            self.files.len(),
            self.units(),
            disk,
            offset,
            self.unit_size,
            bufs.iter().map(|b| b.len()),
        )?;
        let f = self.files[disk].lock().unwrap();
        write_gather_at(&f, bufs, (offset * self.unit_size) as u64)?;
        self.counters.add_write(disk, n as u64);
        Ok(())
    }

    fn flush(&self) -> Result<(), StoreError> {
        for f in &self.files {
            f.lock().unwrap().sync_data()?;
        }
        Ok(())
    }

    fn read_count(&self, disk: usize) -> u64 {
        self.counters.read_units(disk)
    }

    fn write_count(&self, disk: usize) -> u64 {
        self.counters.write_units(disk)
    }

    fn read_calls(&self, disk: usize) -> u64 {
        self.counters.read_calls(disk)
    }

    fn write_calls(&self, disk: usize) -> u64 {
        self.counters.write_calls(disk)
    }

    fn reset_counters(&self) {
        self.counters.reset();
    }

    fn wipe_disk(&self, disk: usize) -> Result<(), StoreError> {
        if disk >= self.files.len() {
            return Err(StoreError::OutOfRange { disk, offset: 0 });
        }
        // One zero buffer reused in large chunks: the fault injector
        // wipes whole disks on every injected failure, so this runs
        // hot in the fault-injection schedules.
        let total = self.units() * self.unit_size;
        let zeros = vec![0u8; total.min(Self::WIPE_CHUNK)];
        let f = self.files[disk].lock().unwrap();
        let mut at = 0usize;
        while at < total {
            let len = zeros.len().min(total - at);
            write_at(&f, &zeros[..len], at as u64)?;
            at += len;
        }
        Ok(())
    }

    fn persist_mapping(&self, redirect: &[usize]) -> Result<(), StoreError> {
        let json = serde_json::to_string(&redirect.to_vec())
            .map_err(|e| StoreError::Corrupt(format!("mapping encode: {e}")))?;
        std::fs::write(self.dir.join(Self::MAPPING_FILE), json)?;
        Ok(())
    }

    fn load_mapping(&self) -> Result<Option<Vec<usize>>, StoreError> {
        let path = self.dir.join(Self::MAPPING_FILE);
        if !path.exists() {
            return Ok(None);
        }
        let json = std::fs::read_to_string(path)?;
        let redirect: Vec<usize> = serde_json::from_str(&json)
            .map_err(|e| StoreError::Corrupt(format!("mapping decode: {e}")))?;
        Ok(Some(redirect))
    }
}

/// [`FileBackend`] in **async-engine mode**: the same one-file-per-
/// disk positional I/O, packaged for use behind the submit-and-
/// complete [`crate::engine::Engine`] with one worker thread per
/// disk, so N disks' `pread`/`pwrite` calls progress concurrently
/// even when the caller is a single thread.
///
/// The wrapper delegates every [`Backend`] method to the inner
/// [`FileBackend`] unchanged — the concurrency comes entirely from
/// the engine's per-disk workers issuing the positional syscalls in
/// parallel (each disk's `File` sits behind its own mutex, so
/// per-disk workers never contend). Start the engine with
/// [`AsyncFileBackend::engine_config`], which requests one worker
/// per disk.
#[derive(Debug)]
pub struct AsyncFileBackend(FileBackend);

impl AsyncFileBackend {
    /// Creates a fresh array; see [`FileBackend::create`].
    pub fn create(
        dir: impl AsRef<Path>,
        disks: usize,
        units_per_disk: usize,
        unit_size: usize,
    ) -> Result<Self, StoreError> {
        FileBackend::create(dir, disks, units_per_disk, unit_size).map(AsyncFileBackend)
    }

    /// Opens an existing array; see [`FileBackend::open`].
    pub fn open(
        dir: impl AsRef<Path>,
        disks: usize,
        units_per_disk: usize,
        unit_size: usize,
    ) -> Result<Self, StoreError> {
        FileBackend::open(dir, disks, units_per_disk, unit_size).map(AsyncFileBackend)
    }

    /// Wraps an already-constructed [`FileBackend`].
    pub fn from_file_backend(inner: FileBackend) -> Self {
        AsyncFileBackend(inner)
    }

    /// The inner [`FileBackend`].
    pub fn inner(&self) -> &FileBackend {
        &self.0
    }

    /// The engine configuration this mode is designed for: one
    /// worker per disk (`workers: 0`), so every disk has a dedicated
    /// thread parked on its queue.
    pub fn engine_config() -> crate::engine::EngineConfig {
        crate::engine::EngineConfig { workers: 0, ..Default::default() }
    }
}

impl Backend for AsyncFileBackend {
    fn disks(&self) -> usize {
        self.0.disks()
    }

    fn units_per_disk(&self) -> usize {
        self.0.units_per_disk()
    }

    fn unit_size(&self) -> usize {
        self.0.unit_size()
    }

    fn set_units_per_disk(&self, units: usize) -> Result<(), StoreError> {
        self.0.set_units_per_disk(units)
    }

    fn read_unit(&self, disk: usize, offset: usize, buf: &mut [u8]) -> Result<(), StoreError> {
        self.0.read_unit(disk, offset, buf)
    }

    fn write_unit(&self, disk: usize, offset: usize, buf: &[u8]) -> Result<(), StoreError> {
        self.0.write_unit(disk, offset, buf)
    }

    fn read_units(&self, disk: usize, offset: usize, buf: &mut [u8]) -> Result<(), StoreError> {
        self.0.read_units(disk, offset, buf)
    }

    fn write_units(&self, disk: usize, offset: usize, buf: &[u8]) -> Result<(), StoreError> {
        self.0.write_units(disk, offset, buf)
    }

    fn read_units_scatter(
        &self,
        disk: usize,
        offset: usize,
        bufs: &mut [&mut [u8]],
    ) -> Result<(), StoreError> {
        self.0.read_units_scatter(disk, offset, bufs)
    }

    fn write_units_gather(
        &self,
        disk: usize,
        offset: usize,
        bufs: &[&[u8]],
    ) -> Result<(), StoreError> {
        self.0.write_units_gather(disk, offset, bufs)
    }

    fn flush(&self) -> Result<(), StoreError> {
        self.0.flush()
    }

    fn prefers_gap_bridging(&self) -> bool {
        self.0.prefers_gap_bridging()
    }

    fn read_count(&self, disk: usize) -> u64 {
        self.0.read_count(disk)
    }

    fn write_count(&self, disk: usize) -> u64 {
        self.0.write_count(disk)
    }

    fn read_calls(&self, disk: usize) -> u64 {
        self.0.read_calls(disk)
    }

    fn write_calls(&self, disk: usize) -> u64 {
        self.0.write_calls(disk)
    }

    fn reset_counters(&self) {
        self.0.reset_counters()
    }

    fn wipe_disk(&self, disk: usize) -> Result<(), StoreError> {
        self.0.wipe_disk(disk)
    }

    fn persist_mapping(&self, redirect: &[usize]) -> Result<(), StoreError> {
        self.0.persist_mapping(redirect)
    }

    fn load_mapping(&self) -> Result<Option<Vec<usize>>, StoreError> {
        self.0.load_mapping()
    }
}

/// Fault-injection knobs for [`FaultyBackend`]. All rates are
/// probabilities in `[0, 1]`, evaluated per backend call (or per unit
/// for corruption) from the seeded generator, so a given seed replays
/// the same fault schedule.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Seed for the fault schedule.
    pub seed: u64,
    /// Probability a call fails with a *transient* I/O error
    /// (`ErrorKind::Interrupted`) before touching the inner backend —
    /// the kind the store's retry layer absorbs.
    pub transient_rate: f64,
    /// Probability a written unit is silently corrupted (one byte
    /// flipped) while the call still reports success — the latent
    /// sector error checksums exist to catch.
    pub corrupt_rate: f64,
    /// Probability a multi-unit write tears: a prefix of the units
    /// lands, then the call fails with a **non-transient** error.
    pub torn_rate: f64,
    /// Probability a call sleeps [`FaultConfig::slow_us`] first (a
    /// stalling disk).
    pub slow_rate: f64,
    /// Stall duration for slow calls, in microseconds.
    pub slow_us: u64,
}

impl FaultConfig {
    /// A schedule with every fault disabled (rates 0) under `seed`.
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            transient_rate: 0.0,
            corrupt_rate: 0.0,
            torn_rate: 0.0,
            slow_rate: 0.0,
            slow_us: 50,
        }
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A seeded fault-injecting wrapper over any [`Backend`] — the fault
/// model every integrity claim in this crate is tested against.
/// Composable over [`MemBackend`] and [`FileBackend`] alike; geometry,
/// counters, and management ops (wipe, mapping, resize, flush)
/// delegate untouched, data-path calls roll the seeded dice first:
///
/// * **transient errors** surface as `ErrorKind::Interrupted` before
///   the inner call runs (nothing written) — retryable;
/// * **silent corruption** flips one byte of a written unit while the
///   call reports success, and logs the `(disk, offset)` so tests can
///   assert every injected error was later found and repaired;
/// * **torn writes** land a strict prefix of a multi-unit write, then
///   fail non-transiently (the crash-window shape `write_units`
///   callers must survive);
/// * **slow calls** sleep before proceeding (a stalling spindle).
///
/// Targeted hooks — [`FaultyBackend::corrupt_unit`] and
/// [`FaultyBackend::fail_next`] — inject one specific fault
/// deterministically, for tests that need a fault *here, now* rather
/// than a statistical schedule. [`FaultyBackend::set_armed`] pauses
/// the whole schedule during test setup.
#[derive(Debug)]
pub struct FaultyBackend<B> {
    inner: B,
    cfg: FaultConfig,
    armed: std::sync::atomic::AtomicBool,
    rng: std::sync::atomic::AtomicU64,
    /// Next-N-calls forced-transient budget ([`FaultyBackend::fail_next`]).
    forced_transients: std::sync::atomic::AtomicU64,
    injected_transients: std::sync::atomic::AtomicU64,
    injected_torn: std::sync::atomic::AtomicU64,
    /// `(disk, offset)` of every silently corrupted unit.
    corruptions: Mutex<Vec<(usize, usize)>>,
}

impl<B: Backend> FaultyBackend<B> {
    /// Wraps `inner` with the fault schedule `cfg`, armed.
    pub fn new(inner: B, cfg: FaultConfig) -> Self {
        FaultyBackend {
            inner,
            cfg,
            armed: std::sync::atomic::AtomicBool::new(true),
            rng: std::sync::atomic::AtomicU64::new(splitmix64(cfg.seed)),
            forced_transients: std::sync::atomic::AtomicU64::new(0),
            injected_transients: std::sync::atomic::AtomicU64::new(0),
            injected_torn: std::sync::atomic::AtomicU64::new(0),
            corruptions: Mutex::new(Vec::new()),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Arms or pauses the whole fault schedule (paused, every call
    /// delegates cleanly — use around test setup).
    pub fn set_armed(&self, on: bool) {
        self.armed.store(on, Ordering::SeqCst);
    }

    /// Forces the next `n` data-path calls to fail transiently,
    /// regardless of rates (still requires the schedule armed).
    pub fn fail_next(&self, n: u64) {
        self.forced_transients.store(n, Ordering::SeqCst);
    }

    /// Deterministically corrupts the stored unit at `(disk, offset)`
    /// in place (one byte flipped on the medium, schedule not
    /// consulted) and logs it like a schedule-injected corruption.
    pub fn corrupt_unit(&self, disk: usize, offset: usize) -> Result<(), StoreError> {
        let mut buf = vec![0u8; self.inner.unit_size()];
        self.inner.read_unit(disk, offset, &mut buf)?;
        let at = (splitmix64(self.roll()) as usize) % buf.len();
        buf[at] ^= 0xA5;
        self.inner.write_unit(disk, offset, &buf)?;
        self.corruptions.lock().unwrap_or_else(|e| e.into_inner()).push((disk, offset));
        Ok(())
    }

    /// `(disk, offset)` of every unit silently corrupted so far —
    /// the ground truth a repair test sweeps against.
    pub fn corruptions(&self) -> Vec<(usize, usize)> {
        self.corruptions.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Transient errors injected so far.
    pub fn injected_transients(&self) -> u64 {
        self.injected_transients.load(Ordering::Relaxed)
    }

    /// Torn multi-unit writes injected so far.
    pub fn injected_torn(&self) -> u64 {
        self.injected_torn.load(Ordering::Relaxed)
    }

    fn roll(&self) -> u64 {
        splitmix64(self.rng.fetch_add(0x9E3779B97F4A7C15, Ordering::Relaxed))
    }

    fn chance(&self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        rate >= 1.0 || ((self.roll() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < rate
    }

    /// Rolls the pre-call faults (forced/scheduled transient, slow
    /// stall). `Err` means the call fails before touching the medium.
    fn pre_call(&self) -> Result<(), StoreError> {
        if !self.armed.load(Ordering::Relaxed) {
            return Ok(());
        }
        let forced = self
            .forced_transients
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok();
        if forced || self.chance(self.cfg.transient_rate) {
            self.injected_transients.fetch_add(1, Ordering::Relaxed);
            return Err(StoreError::Io(std::io::Error::from(std::io::ErrorKind::Interrupted)));
        }
        if self.chance(self.cfg.slow_rate) && self.cfg.slow_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(self.cfg.slow_us));
        }
        Ok(())
    }

    /// Writes one unit, possibly silently corrupting it (logged).
    fn write_unit_corruptible(
        &self,
        disk: usize,
        offset: usize,
        buf: &[u8],
    ) -> Result<(), StoreError> {
        if self.armed.load(Ordering::Relaxed) && self.chance(self.cfg.corrupt_rate) {
            let mut evil = buf.to_vec();
            let at = (self.roll() as usize) % evil.len().max(1);
            evil[at] ^= 0xA5;
            self.inner.write_unit(disk, offset, &evil)?;
            self.corruptions.lock().unwrap_or_else(|e| e.into_inner()).push((disk, offset));
            return Ok(());
        }
        self.inner.write_unit(disk, offset, buf)
    }

    /// Shared torn/corrupt path for multi-unit writes: `units` is the
    /// span length; `write_prefix(n)` must land exactly the first `n`
    /// units.
    fn torn_or_full(
        &self,
        units: usize,
        write_prefix: impl FnOnce(usize) -> Result<(), StoreError>,
        write_full: impl FnOnce() -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        if self.armed.load(Ordering::Relaxed) && units > 1 && self.chance(self.cfg.torn_rate) {
            let keep = 1 + (self.roll() as usize) % (units - 1);
            write_prefix(keep)?;
            self.injected_torn.fetch_add(1, Ordering::Relaxed);
            return Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "injected torn write",
            )));
        }
        write_full()
    }
}

impl<B: Backend> Backend for FaultyBackend<B> {
    fn disks(&self) -> usize {
        self.inner.disks()
    }

    fn units_per_disk(&self) -> usize {
        self.inner.units_per_disk()
    }

    fn unit_size(&self) -> usize {
        self.inner.unit_size()
    }

    fn read_unit(&self, disk: usize, offset: usize, buf: &mut [u8]) -> Result<(), StoreError> {
        self.pre_call()?;
        self.inner.read_unit(disk, offset, buf)
    }

    fn write_unit(&self, disk: usize, offset: usize, buf: &[u8]) -> Result<(), StoreError> {
        self.pre_call()?;
        self.write_unit_corruptible(disk, offset, buf)
    }

    fn read_units(&self, disk: usize, offset: usize, buf: &mut [u8]) -> Result<(), StoreError> {
        self.pre_call()?;
        self.inner.read_units(disk, offset, buf)
    }

    fn write_units(&self, disk: usize, offset: usize, buf: &[u8]) -> Result<(), StoreError> {
        self.pre_call()?;
        let us = self.inner.unit_size();
        let units = buf.len().checked_div(us).unwrap_or(0);
        self.torn_or_full(
            units,
            |keep| self.inner.write_units(disk, offset, &buf[..keep * us]),
            || {
                if self.armed.load(Ordering::Relaxed) && self.cfg.corrupt_rate > 0.0 {
                    for (i, unit) in buf.chunks_exact(us).enumerate() {
                        self.write_unit_corruptible(disk, offset + i, unit)?;
                    }
                    Ok(())
                } else {
                    self.inner.write_units(disk, offset, buf)
                }
            },
        )
    }

    fn read_units_scatter(
        &self,
        disk: usize,
        offset: usize,
        bufs: &mut [&mut [u8]],
    ) -> Result<(), StoreError> {
        self.pre_call()?;
        self.inner.read_units_scatter(disk, offset, bufs)
    }

    fn write_units_gather(
        &self,
        disk: usize,
        offset: usize,
        bufs: &[&[u8]],
    ) -> Result<(), StoreError> {
        self.pre_call()?;
        let us = self.inner.unit_size();
        let units: usize = bufs.iter().map(|b| b.len() / us.max(1)).sum();
        self.torn_or_full(
            units,
            |keep| {
                // Land exactly `keep` units: whole leading buffers
                // plus a prefix of the buffer the tear lands in.
                let mut left = keep;
                let mut at = offset;
                for b in bufs {
                    if left == 0 {
                        break;
                    }
                    let n = (b.len() / us).min(left);
                    self.inner.write_units(disk, at, &b[..n * us])?;
                    at += n;
                    left -= n;
                }
                Ok(())
            },
            || {
                if self.armed.load(Ordering::Relaxed) && self.cfg.corrupt_rate > 0.0 {
                    let mut at = offset;
                    for b in bufs {
                        for unit in b.chunks_exact(us) {
                            self.write_unit_corruptible(disk, at, unit)?;
                            at += 1;
                        }
                    }
                    Ok(())
                } else {
                    self.inner.write_units_gather(disk, offset, bufs)
                }
            },
        )
    }

    fn flush(&self) -> Result<(), StoreError> {
        self.inner.flush()
    }

    fn read_count(&self, disk: usize) -> u64 {
        self.inner.read_count(disk)
    }

    fn write_count(&self, disk: usize) -> u64 {
        self.inner.write_count(disk)
    }

    fn read_calls(&self, disk: usize) -> u64 {
        self.inner.read_calls(disk)
    }

    fn write_calls(&self, disk: usize) -> u64 {
        self.inner.write_calls(disk)
    }

    fn prefers_gap_bridging(&self) -> bool {
        self.inner.prefers_gap_bridging()
    }

    fn reset_counters(&self) {
        self.inner.reset_counters()
    }

    fn wipe_disk(&self, disk: usize) -> Result<(), StoreError> {
        self.inner.wipe_disk(disk)
    }

    fn persist_mapping(&self, redirect: &[usize]) -> Result<(), StoreError> {
        self.inner.persist_mapping(redirect)
    }

    fn load_mapping(&self) -> Result<Option<Vec<usize>>, StoreError> {
        self.inner.load_mapping()
    }

    fn set_units_per_disk(&self, units: usize) -> Result<(), StoreError> {
        self.inner.set_units_per_disk(units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(backend: &dyn Backend) {
        let us = backend.unit_size();
        let pattern: Vec<u8> = (0..us).map(|i| (i % 251) as u8).collect();
        backend.write_unit(1, 3, &pattern).unwrap();
        let mut out = vec![0u8; us];
        backend.read_unit(1, 3, &mut out).unwrap();
        assert_eq!(out, pattern);
        // untouched units read back as zeroes
        backend.read_unit(0, 0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
        assert_eq!(backend.read_count(1), 1);
        assert_eq!(backend.read_count(0), 1);
        assert_eq!(backend.write_count(1), 1);
        backend.reset_counters();
        assert_eq!(backend.read_count(1), 0);
    }

    #[test]
    fn mem_roundtrip_and_counters() {
        let b = MemBackend::new(3, 8, 64);
        roundtrip(&b);
    }

    #[test]
    fn file_roundtrip_and_counters() {
        let dir = std::env::temp_dir().join(format!("pdl-store-test-{}", std::process::id()));
        let b = FileBackend::create(&dir, 3, 8, 64).unwrap();
        roundtrip(&b);
        b.flush().unwrap();
        drop(b);
        // reopen and confirm persistence
        let b = FileBackend::open(&dir, 3, 8, 64).unwrap();
        let mut out = vec![0u8; 64];
        b.read_unit(1, 3, &mut out).unwrap();
        assert_eq!(out[1], 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_discards_stale_mapping() {
        let dir = std::env::temp_dir().join(format!("pdl-store-stalemap-{}", std::process::id()));
        {
            let b = FileBackend::create(&dir, 3, 4, 32).unwrap();
            b.persist_mapping(&[0, 2, 1]).unwrap();
            assert_eq!(b.load_mapping().unwrap(), Some(vec![0, 2, 1]));
        }
        // A fresh array in the same directory starts with no mapping.
        let b = FileBackend::create(&dir, 3, 4, 32).unwrap();
        assert_eq!(b.load_mapping().unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_bad_length() {
        let dir = std::env::temp_dir().join(format!("pdl-store-badlen-{}", std::process::id()));
        {
            FileBackend::create(&dir, 2, 4, 32).unwrap();
        }
        assert!(matches!(FileBackend::open(&dir, 2, 8, 32), Err(StoreError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bounds_checked() {
        let b = MemBackend::new(2, 4, 16);
        let mut buf = vec![0u8; 16];
        assert!(matches!(b.read_unit(2, 0, &mut buf), Err(StoreError::OutOfRange { .. })));
        assert!(matches!(b.read_unit(0, 4, &mut buf), Err(StoreError::OutOfRange { .. })));
        let mut short = vec![0u8; 15];
        assert!(matches!(b.read_unit(0, 0, &mut short), Err(StoreError::BadBufferSize { .. })));
    }

    fn vectored_roundtrip(backend: &dyn Backend) {
        let us = backend.unit_size();
        // Write 3 units in one call, read them back in one call and
        // per-unit; both views agree and counters track units + calls.
        let span: Vec<u8> = (0..3 * us).map(|i| (i % 249) as u8).collect();
        backend.write_units(0, 2, &span).unwrap();
        assert_eq!(backend.write_count(0), 3, "3 units written");
        assert_eq!(backend.write_calls(0), 1, "in one backend call");
        let mut got = vec![0u8; 3 * us];
        backend.read_units(0, 2, &mut got).unwrap();
        assert_eq!(got, span);
        assert_eq!(backend.read_count(0), 3);
        assert_eq!(backend.read_calls(0), 1);
        let mut one = vec![0u8; us];
        backend.read_unit(0, 3, &mut one).unwrap();
        assert_eq!(one, span[us..2 * us]);
        // Span bounds: runs past the end of the disk are rejected.
        let mut over = vec![0u8; 4 * us];
        assert!(matches!(backend.read_units(0, 6, &mut over), Err(StoreError::OutOfRange { .. })));
        let mut ragged = vec![0u8; us + 1];
        assert!(matches!(
            backend.read_units(0, 0, &mut ragged),
            Err(StoreError::BadBufferSize { .. })
        ));
        assert!(matches!(backend.read_units(0, 0, &mut []), Err(StoreError::BadBufferSize { .. })));
    }

    #[test]
    fn mem_vectored_roundtrip() {
        let b = MemBackend::new(2, 8, 32);
        vectored_roundtrip(&b);
    }

    #[test]
    fn file_vectored_roundtrip_and_bulk_wipe() {
        let dir = std::env::temp_dir().join(format!("pdl-store-vec-{}", std::process::id()));
        let b = FileBackend::create(&dir, 2, 8, 32).unwrap();
        vectored_roundtrip(&b);
        // wipe_disk zeroes the whole disk in bulk writes.
        b.wipe_disk(0).unwrap();
        let mut got = vec![1u8; 8 * 32];
        b.read_units(0, 0, &mut got).unwrap();
        assert!(got.iter().all(|&x| x == 0), "wiped disk reads back as zeroes");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faulty_backend_quiet_delegates_cleanly() {
        let b = FaultyBackend::new(MemBackend::new(3, 8, 64), FaultConfig::quiet(7));
        roundtrip(&b);
        vectored_roundtrip(&b);
        assert_eq!(b.injected_transients(), 0);
        assert!(b.corruptions().is_empty());
    }

    #[test]
    fn faulty_backend_forced_transients_and_targeted_corruption() {
        let b = FaultyBackend::new(MemBackend::new(2, 8, 32), FaultConfig::quiet(42));
        let unit = vec![0x5au8; 32];
        b.write_unit(0, 0, &unit).unwrap();
        b.fail_next(2);
        let mut out = vec![0u8; 32];
        let e = b.read_unit(0, 0, &mut out).unwrap_err();
        assert!(crate::integrity::is_transient(&e));
        assert!(crate::integrity::is_transient(&b.read_unit(0, 0, &mut out).unwrap_err()));
        b.read_unit(0, 0, &mut out).unwrap();
        assert_eq!(out, unit);
        assert_eq!(b.injected_transients(), 2);
        // Targeted corruption flips the medium but logs the location.
        b.corrupt_unit(0, 0).unwrap();
        b.read_unit(0, 0, &mut out).unwrap();
        assert_ne!(out, unit);
        assert_eq!(b.corruptions(), vec![(0, 0)]);
        // Disarmed, the schedule is silent even with rates maxed.
        let mut cfg = FaultConfig::quiet(1);
        cfg.transient_rate = 1.0;
        let b = FaultyBackend::new(MemBackend::new(1, 2, 16), cfg);
        b.set_armed(false);
        b.write_unit(0, 0, &[1u8; 16]).unwrap();
        assert_eq!(b.injected_transients(), 0);
    }

    #[test]
    fn faulty_backend_torn_write_lands_prefix_then_errors() {
        let mut cfg = FaultConfig::quiet(99);
        cfg.torn_rate = 1.0;
        let b = FaultyBackend::new(MemBackend::new(1, 8, 16), cfg);
        let span: Vec<u8> = (0..4 * 16).map(|i| i as u8).collect();
        let e = b.write_units(0, 0, &span).unwrap_err();
        assert!(!crate::integrity::is_transient(&e), "torn writes are not retryable");
        assert_eq!(b.injected_torn(), 1);
        // Some strict prefix landed; the tail is untouched zeroes.
        b.set_armed(false);
        let mut got = vec![0u8; 4 * 16];
        b.read_units(0, 0, &mut got).unwrap();
        let landed =
            (0..4).take_while(|&u| got[u * 16..(u + 1) * 16] == span[u * 16..(u + 1) * 16]).count();
        assert!((1..4).contains(&landed), "prefix of {landed} units landed");
        assert!(got[landed * 16..].iter().all(|&x| x == 0));
    }

    #[test]
    fn faulty_backend_scheduled_corruption_is_logged_and_silent() {
        let mut cfg = FaultConfig::quiet(5);
        cfg.corrupt_rate = 1.0;
        let b = FaultyBackend::new(MemBackend::new(1, 4, 16), cfg);
        let unit = vec![0x11u8; 16];
        b.write_unit(0, 2, &unit).unwrap(); // reports success
        let mut got = vec![0u8; 16];
        b.set_armed(false);
        b.read_unit(0, 2, &mut got).unwrap();
        assert_ne!(got, unit, "stored bytes were silently corrupted");
        assert_eq!(got.iter().zip(&unit).filter(|(a, b)| a != b).count(), 1, "one byte flipped");
        assert_eq!(b.corruptions(), vec![(0, 2)]);
    }
}
