//! Pluggable storage backends: where the array's bytes actually live.
//!
//! A [`Backend`] exposes a fixed-geometry array of disks, each divided
//! into fixed-size units, with thread-safe unit-granular *and
//! vectored multi-unit* reads and writes (interior mutability, so an
//! online rebuild can stream from many disks concurrently) and
//! per-disk IO counters — units transferred plus backend calls, the
//! measurement surface for verifying both declustering's (k−1)/(v−1)
//! rebuild-load claim and the store's IO-coalescing guarantees on
//! real traffic.

use crate::error::StoreError;
use crate::obs::DiskCounters;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};

/// Positional read: no seek, no cursor state, so one brief lock
/// suffices per transfer. Note the per-disk mutex is NOT merely a
/// contention model: the vectored scatter/gather paths below
/// ([`read_scatter_at`]/[`write_gather_at`]) still seek the shared
/// file cursor (there is no stable `preadv` in std), so the mutex
/// remains load-bearing for their correctness.
#[cfg(unix)]
fn read_at(f: &File, buf: &mut [u8], at: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    f.read_exact_at(buf, at)
}

#[cfg(unix)]
fn write_at(f: &File, buf: &[u8], at: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    f.write_all_at(buf, at)
}

#[cfg(not(unix))]
fn read_at(mut f: &File, buf: &mut [u8], at: u64) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    f.seek(SeekFrom::Start(at))?;
    f.read_exact(buf)
}

#[cfg(not(unix))]
fn write_at(mut f: &File, buf: &[u8], at: u64) -> std::io::Result<()> {
    use std::io::{Seek, SeekFrom, Write};
    f.seek(SeekFrom::Start(at))?;
    f.write_all(buf)
}

/// One `readv`-style transfer: a contiguous file range scattered into
/// the caller's buffers with no staging copy. Loops on partial reads.
fn read_scatter_at(mut f: &File, bufs: &mut [&mut [u8]], at: u64) -> std::io::Result<()> {
    use std::io::{IoSliceMut, Read, Seek, SeekFrom};
    f.seek(SeekFrom::Start(at))?;
    let mut slices: Vec<IoSliceMut<'_>> = bufs.iter_mut().map(|b| IoSliceMut::new(b)).collect();
    let mut rem: &mut [IoSliceMut<'_>] = &mut slices;
    while !rem.is_empty() {
        let n = f.read_vectored(rem)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "short scatter read",
            ));
        }
        IoSliceMut::advance_slices(&mut rem, n);
    }
    Ok(())
}

/// One `writev`-style transfer: the caller's buffers gathered into a
/// contiguous file range with no staging copy. Loops on partial writes.
fn write_gather_at(mut f: &File, bufs: &[&[u8]], at: u64) -> std::io::Result<()> {
    use std::io::{IoSlice, Seek, SeekFrom, Write};
    f.seek(SeekFrom::Start(at))?;
    let mut slices: Vec<IoSlice<'_>> = bufs.iter().map(|b| IoSlice::new(b)).collect();
    let mut rem: &mut [IoSlice<'_>] = &mut slices;
    while !rem.is_empty() {
        let n = f.write_vectored(rem)?;
        if n == 0 {
            return Err(std::io::Error::new(std::io::ErrorKind::WriteZero, "short gather write"));
        }
        IoSlice::advance_slices(&mut rem, n);
    }
    Ok(())
}

/// A fixed array of `disks × units_per_disk` units of `unit_size` bytes.
///
/// Implementations must be thread-safe: the rebuilder issues reads to
/// many disks from worker threads. Counters track physical IO per disk
/// (reads/writes of whole units) and are maintained by the backend so
/// every access path — normal, degraded, rebuild — is measured.
pub trait Backend: Send + Sync {
    /// Number of physical disks (including any spares).
    fn disks(&self) -> usize;

    /// Units per disk.
    fn units_per_disk(&self) -> usize;

    /// Bytes per unit.
    fn unit_size(&self) -> usize;

    /// Reads the unit at `(disk, offset)` into `buf` (`unit_size` bytes).
    fn read_unit(&self, disk: usize, offset: usize, buf: &mut [u8]) -> Result<(), StoreError>;

    /// Writes `buf` (`unit_size` bytes) to the unit at `(disk, offset)`.
    fn write_unit(&self, disk: usize, offset: usize, buf: &[u8]) -> Result<(), StoreError>;

    /// Reads `buf.len() / unit_size` consecutive units from `disk`
    /// starting at `offset` — the vectored primitive behind the
    /// store's coalesced multi-block transfers. `buf` must be a
    /// nonzero multiple of the unit size. The default implementation
    /// loops [`Backend::read_unit`] (one call per unit); backends
    /// should override it with a single span transfer.
    fn read_units(&self, disk: usize, offset: usize, buf: &mut [u8]) -> Result<(), StoreError> {
        let n = span_units(self.unit_size(), buf.len())?;
        for (i, chunk) in buf.chunks_exact_mut(self.unit_size()).enumerate().take(n) {
            self.read_unit(disk, offset + i, chunk)?;
        }
        Ok(())
    }

    /// Writes `buf.len() / unit_size` consecutive units to `disk`
    /// starting at `offset` (vectored twin of [`Backend::read_units`];
    /// same contract, same coalescing default).
    fn write_units(&self, disk: usize, offset: usize, buf: &[u8]) -> Result<(), StoreError> {
        let n = span_units(self.unit_size(), buf.len())?;
        for (i, chunk) in buf.chunks_exact(self.unit_size()).enumerate().take(n) {
            self.write_unit(disk, offset + i, chunk)?;
        }
        Ok(())
    }

    /// Scatter read: one contiguous span of units starting at
    /// `offset`, delivered into the caller's (unit-multiple-sized)
    /// buffers in order — `readv` semantics, so the store's coalesced
    /// multi-block reads land directly in caller memory with no
    /// staging copy. The default loops [`Backend::read_units`] per
    /// buffer; backends should override with a single transfer.
    fn read_units_scatter(
        &self,
        disk: usize,
        offset: usize,
        bufs: &mut [&mut [u8]],
    ) -> Result<(), StoreError> {
        let mut at = offset;
        for buf in bufs {
            self.read_units(disk, at, buf)?;
            at += buf.len() / self.unit_size();
        }
        Ok(())
    }

    /// Gather write: the caller's (unit-multiple-sized) buffers
    /// written as one contiguous span of units starting at `offset` —
    /// `writev` semantics, the twin of [`Backend::read_units_scatter`].
    fn write_units_gather(
        &self,
        disk: usize,
        offset: usize,
        bufs: &[&[u8]],
    ) -> Result<(), StoreError> {
        let mut at = offset;
        for buf in bufs {
            self.write_units(disk, at, buf)?;
            at += buf.len() / self.unit_size();
        }
        Ok(())
    }

    /// Flushes buffered writes to durable storage.
    fn flush(&self) -> Result<(), StoreError>;

    /// Units read from `disk` since construction or the last reset.
    fn read_count(&self, disk: usize) -> u64;

    /// Units written to `disk` since construction or the last reset.
    fn write_count(&self, disk: usize) -> u64;

    /// Backend *calls* (operations) that served reads on `disk` — a
    /// vectored transfer counts once here and once per unit in
    /// [`Backend::read_count`]. The default equals the unit count,
    /// which is exact for backends that never coalesce; coalescing
    /// backends must track calls separately.
    fn read_calls(&self, disk: usize) -> u64 {
        self.read_count(disk)
    }

    /// Backend calls that served writes on `disk` (see
    /// [`Backend::read_calls`]).
    fn write_calls(&self, disk: usize) -> u64 {
        self.write_count(disk)
    }

    /// Whether reading a small unwanted hole to keep a run in one
    /// backend call beats splitting the run in two. True for
    /// syscall- or seek-bound backends (files, real disks, networks),
    /// where a call costs far more than a few extra units; memory-
    /// speed backends return false — their per-call cost is a lock
    /// acquisition, so bridged holes are pure wasted copying.
    fn prefers_gap_bridging(&self) -> bool {
        true
    }

    /// Zeroes all IO counters.
    fn reset_counters(&self);

    /// Overwrites a whole physical disk with zeroes — the fault
    /// injector's "the medium is gone" primitive. A store must never
    /// read a wiped disk while it is failed; tests wipe on failure so
    /// any stale read surfaces as corruption instead of silent luck.
    fn wipe_disk(&self, disk: usize) -> Result<(), StoreError>;

    /// Durably records the store's logical→physical disk mapping (the
    /// redirect table updated when a rebuild moves a logical disk onto
    /// a spare). Volatile backends keep the default no-op; durable
    /// backends must persist it so a reopened store does not read the
    /// stale pre-rebuild disk.
    fn persist_mapping(&self, redirect: &[usize]) -> Result<(), StoreError> {
        let _ = redirect;
        Ok(())
    }

    /// Loads the mapping saved by [`Backend::persist_mapping`], or
    /// `None` if none was ever saved.
    fn load_mapping(&self) -> Result<Option<Vec<usize>>, StoreError> {
        Ok(None)
    }

    /// Resizes every disk to `units` units — the reshape engine's
    /// geometry primitive: growing opens the zero-filled scratch
    /// region the target world migrates into; shrinking trims it away
    /// after the commit. New units **must read back as zeroes**.
    /// Callers must quiesce I/O first (the store resizes only under
    /// its exclusive state guard). Backends with immutable geometry
    /// keep the default error.
    fn set_units_per_disk(&self, units: usize) -> Result<(), StoreError> {
        let _ = units;
        Err(StoreError::Geometry("backend does not support resizing".into()))
    }
}

/// Validates a multi-unit buffer length, returning the unit count.
fn span_units(unit_size: usize, buf_len: usize) -> Result<usize, StoreError> {
    if buf_len == 0 || !buf_len.is_multiple_of(unit_size) {
        return Err(StoreError::BadBufferSize { expected: unit_size, got: buf_len });
    }
    Ok(buf_len / unit_size)
}

fn check_geometry(
    disks: usize,
    units: usize,
    disk: usize,
    offset: usize,
    unit_size: usize,
    buf_len: usize,
) -> Result<(), StoreError> {
    if disk >= disks || offset >= units {
        return Err(StoreError::OutOfRange { disk, offset });
    }
    if buf_len != unit_size {
        return Err(StoreError::BadBufferSize { expected: unit_size, got: buf_len });
    }
    Ok(())
}

/// Validates a multi-unit span against the geometry, returning the
/// unit count.
fn check_span(
    disks: usize,
    units: usize,
    disk: usize,
    offset: usize,
    unit_size: usize,
    buf_len: usize,
) -> Result<usize, StoreError> {
    let n = span_units(unit_size, buf_len)?;
    if disk >= disks || offset >= units || n > units - offset {
        return Err(StoreError::OutOfRange { disk, offset: offset + n.saturating_sub(1) });
    }
    Ok(n)
}

/// Validates a scatter/gather buffer list (each a nonzero unit
/// multiple) against the geometry, returning the total unit count.
fn check_scatter<'a>(
    disks: usize,
    units: usize,
    disk: usize,
    offset: usize,
    unit_size: usize,
    lens: impl Iterator<Item = usize> + 'a,
) -> Result<usize, StoreError> {
    let mut total = 0usize;
    for len in lens {
        // Single-unit buffers — the common shape the store's write
        // plans and scatter reads produce — skip the division.
        total += if len == unit_size { 1 } else { span_units(unit_size, len)? };
    }
    if total == 0 {
        return Err(StoreError::BadBufferSize { expected: unit_size, got: 0 });
    }
    if disk >= disks || offset >= units || total > units - offset {
        return Err(StoreError::OutOfRange { disk, offset: offset + total.saturating_sub(1) });
    }
    Ok(total)
}

/// In-memory backend: one `Vec<u8>` per disk behind an `RwLock`, so
/// concurrent readers (the rebuild fan-in) never serialize against each
/// other. The reference backend for tests and benchmarks.
#[derive(Debug)]
pub struct MemBackend {
    unit_size: usize,
    /// Units per disk — atomic so a reshape can grow/trim the
    /// geometry through `&self` (resizes happen only with I/O
    /// quiesced; see [`Backend::set_units_per_disk`]).
    units: AtomicUsize,
    data: Vec<RwLock<Vec<u8>>>,
    counters: DiskCounters,
}

impl MemBackend {
    /// Allocates a zero-filled array.
    ///
    /// # Panics
    /// Panics if any dimension is zero (the infallible constructor is
    /// for in-process geometry; the file-backed path returns
    /// [`StoreError::Geometry`] instead).
    pub fn new(disks: usize, units_per_disk: usize, unit_size: usize) -> Self {
        assert!(disks > 0 && units_per_disk > 0 && unit_size > 0, "empty geometry");
        MemBackend {
            unit_size,
            units: AtomicUsize::new(units_per_disk),
            data: (0..disks).map(|_| RwLock::new(vec![0u8; units_per_disk * unit_size])).collect(),
            counters: DiskCounters::new(disks),
        }
    }

    fn units(&self) -> usize {
        self.units.load(Ordering::Acquire)
    }
}

impl Backend for MemBackend {
    fn disks(&self) -> usize {
        self.data.len()
    }

    fn units_per_disk(&self) -> usize {
        self.units()
    }

    fn unit_size(&self) -> usize {
        self.unit_size
    }

    fn read_unit(&self, disk: usize, offset: usize, buf: &mut [u8]) -> Result<(), StoreError> {
        check_geometry(self.data.len(), self.units(), disk, offset, self.unit_size, buf.len())?;
        let d = self.data[disk].read().unwrap();
        let at = offset * self.unit_size;
        buf.copy_from_slice(&d[at..at + self.unit_size]);
        self.counters.add_read(disk, 1);
        Ok(())
    }

    fn write_unit(&self, disk: usize, offset: usize, buf: &[u8]) -> Result<(), StoreError> {
        check_geometry(self.data.len(), self.units(), disk, offset, self.unit_size, buf.len())?;
        let mut d = self.data[disk].write().unwrap();
        let at = offset * self.unit_size;
        d[at..at + self.unit_size].copy_from_slice(buf);
        self.counters.add_write(disk, 1);
        Ok(())
    }

    fn read_units(&self, disk: usize, offset: usize, buf: &mut [u8]) -> Result<(), StoreError> {
        let n = check_span(self.data.len(), self.units(), disk, offset, self.unit_size, buf.len())?;
        let d = self.data[disk].read().unwrap();
        let at = offset * self.unit_size;
        buf.copy_from_slice(&d[at..at + buf.len()]);
        self.counters.add_read(disk, n as u64);
        Ok(())
    }

    fn write_units(&self, disk: usize, offset: usize, buf: &[u8]) -> Result<(), StoreError> {
        let n = check_span(self.data.len(), self.units(), disk, offset, self.unit_size, buf.len())?;
        let mut d = self.data[disk].write().unwrap();
        let at = offset * self.unit_size;
        d[at..at + buf.len()].copy_from_slice(buf);
        self.counters.add_write(disk, n as u64);
        Ok(())
    }

    fn read_units_scatter(
        &self,
        disk: usize,
        offset: usize,
        bufs: &mut [&mut [u8]],
    ) -> Result<(), StoreError> {
        let n = check_scatter(
            self.data.len(),
            self.units(),
            disk,
            offset,
            self.unit_size,
            bufs.iter().map(|b| b.len()),
        )?;
        let d = self.data[disk].read().unwrap();
        let mut at = offset * self.unit_size;
        for buf in bufs {
            buf.copy_from_slice(&d[at..at + buf.len()]);
            at += buf.len();
        }
        self.counters.add_read(disk, n as u64);
        Ok(())
    }

    fn write_units_gather(
        &self,
        disk: usize,
        offset: usize,
        bufs: &[&[u8]],
    ) -> Result<(), StoreError> {
        let n = check_scatter(
            self.data.len(),
            self.units(),
            disk,
            offset,
            self.unit_size,
            bufs.iter().map(|b| b.len()),
        )?;
        let mut d = self.data[disk].write().unwrap();
        let mut at = offset * self.unit_size;
        for buf in bufs {
            d[at..at + buf.len()].copy_from_slice(buf);
            at += buf.len();
        }
        self.counters.add_write(disk, n as u64);
        Ok(())
    }

    fn flush(&self) -> Result<(), StoreError> {
        Ok(())
    }

    fn read_count(&self, disk: usize) -> u64 {
        self.counters.read_units(disk)
    }

    fn write_count(&self, disk: usize) -> u64 {
        self.counters.write_units(disk)
    }

    fn read_calls(&self, disk: usize) -> u64 {
        self.counters.read_calls(disk)
    }

    fn write_calls(&self, disk: usize) -> u64 {
        self.counters.write_calls(disk)
    }

    fn reset_counters(&self) {
        self.counters.reset();
    }

    fn prefers_gap_bridging(&self) -> bool {
        false
    }

    fn wipe_disk(&self, disk: usize) -> Result<(), StoreError> {
        if disk >= self.data.len() {
            return Err(StoreError::OutOfRange { disk, offset: 0 });
        }
        self.data[disk].write().unwrap().fill(0);
        Ok(())
    }

    fn set_units_per_disk(&self, units: usize) -> Result<(), StoreError> {
        if units == 0 {
            return Err(StoreError::Geometry("cannot resize to zero units".into()));
        }
        // Grow zero-fills (fresh scratch units read as zeroes); shrink
        // truncates. Per-disk write locks serialize against any
        // straggler I/O; the store only calls this quiesced.
        for d in &self.data {
            d.write().unwrap().resize(units * self.unit_size, 0);
        }
        self.units.store(units, Ordering::Release);
        Ok(())
    }
}

/// File-backed backend: one preallocated file per disk under a
/// directory (`disk-0000.bin`, `disk-0001.bin`, …), positional IO
/// (`pread`/`pwrite`-style, no seek round trip) at
/// `offset * unit_size`. Each file sits behind its own mutex, so IO to
/// different disks proceeds in parallel while IO to one disk is
/// serialized — the same contention model as a real single-actuator
/// drive.
#[derive(Debug)]
pub struct FileBackend {
    dir: PathBuf,
    unit_size: usize,
    /// Units per disk — atomic so a reshape can grow/trim the file
    /// geometry through `&self` (see [`Backend::set_units_per_disk`]).
    units: AtomicUsize,
    files: Vec<Mutex<File>>,
    counters: DiskCounters,
}

impl FileBackend {
    fn disk_path(dir: &Path, disk: usize) -> PathBuf {
        dir.join(format!("disk-{disk:04}.bin"))
    }

    /// Creates (or truncates) the per-disk files, preallocated to the
    /// full geometry with zeroes.
    pub fn create(
        dir: impl AsRef<Path>,
        disks: usize,
        units_per_disk: usize,
        unit_size: usize,
    ) -> Result<Self, StoreError> {
        if disks == 0 || units_per_disk == 0 || unit_size == 0 {
            return Err(StoreError::Geometry(format!(
                "empty geometry: {disks} disks × {units_per_disk} units × {unit_size} B"
            )));
        }
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        // A fresh array must not inherit the rebuild mapping of a
        // previous array that lived in this directory.
        match std::fs::remove_file(dir.join(Self::MAPPING_FILE)) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let mut files = Vec::with_capacity(disks);
        for d in 0..disks {
            let f = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(Self::disk_path(&dir, d))?;
            f.set_len((units_per_disk * unit_size) as u64)?;
            files.push(Mutex::new(f));
        }
        Ok(FileBackend {
            dir,
            unit_size,
            units: AtomicUsize::new(units_per_disk),
            files,
            counters: DiskCounters::new(disks),
        })
    }

    /// Opens an existing array created by [`FileBackend::create`],
    /// validating that every disk file has the expected length.
    pub fn open(
        dir: impl AsRef<Path>,
        disks: usize,
        units_per_disk: usize,
        unit_size: usize,
    ) -> Result<Self, StoreError> {
        Self::open_inner(dir, disks, units_per_disk, unit_size, false)
    }

    /// Opens an existing array, **truncating** disk files that are
    /// longer than the expected geometry (files shorter than expected
    /// are still [`StoreError::Corrupt`]). This is the self-healing
    /// open a committed reshape relies on: a crash after the final
    /// metadata write but before the scratch-region trim leaves the
    /// files longer than the metadata says, and the excess is — by
    /// the commit protocol — exactly the dead scratch region.
    pub fn open_trimming(
        dir: impl AsRef<Path>,
        disks: usize,
        units_per_disk: usize,
        unit_size: usize,
    ) -> Result<Self, StoreError> {
        Self::open_inner(dir, disks, units_per_disk, unit_size, true)
    }

    fn open_inner(
        dir: impl AsRef<Path>,
        disks: usize,
        units_per_disk: usize,
        unit_size: usize,
        trim: bool,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        let expected = (units_per_disk * unit_size) as u64;
        let mut files = Vec::with_capacity(disks);
        for d in 0..disks {
            let path = Self::disk_path(&dir, d);
            let f = OpenOptions::new().read(true).write(true).open(&path)?;
            let len = f.metadata()?.len();
            if len > expected && trim {
                f.set_len(expected)?;
            } else if len != expected {
                return Err(StoreError::Corrupt(format!(
                    "{} is {len} bytes, expected {expected}",
                    path.display()
                )));
            }
            files.push(Mutex::new(f));
        }
        Ok(FileBackend {
            dir,
            unit_size,
            units: AtomicUsize::new(units_per_disk),
            files,
            counters: DiskCounters::new(disks),
        })
    }

    /// The directory holding the disk files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn units(&self) -> usize {
        self.units.load(Ordering::Acquire)
    }

    /// File recording the logical→physical disk mapping after rebuilds.
    pub const MAPPING_FILE: &'static str = "mapping.json";

    /// Zero-buffer size for [`Backend::wipe_disk`] (1 MiB of zeroes
    /// per write call instead of one call per unit).
    const WIPE_CHUNK: usize = 1 << 20;
}

impl Backend for FileBackend {
    fn disks(&self) -> usize {
        self.files.len()
    }

    fn units_per_disk(&self) -> usize {
        self.units()
    }

    fn unit_size(&self) -> usize {
        self.unit_size
    }

    fn set_units_per_disk(&self, units: usize) -> Result<(), StoreError> {
        if units == 0 {
            return Err(StoreError::Geometry("cannot resize to zero units".into()));
        }
        let len = (units * self.unit_size) as u64;
        for f in &self.files {
            f.lock().unwrap().set_len(len)?;
        }
        self.units.store(units, Ordering::Release);
        Ok(())
    }

    fn read_unit(&self, disk: usize, offset: usize, buf: &mut [u8]) -> Result<(), StoreError> {
        check_geometry(self.files.len(), self.units(), disk, offset, self.unit_size, buf.len())?;
        let f = self.files[disk].lock().unwrap();
        read_at(&f, buf, (offset * self.unit_size) as u64)?;
        self.counters.add_read(disk, 1);
        Ok(())
    }

    fn write_unit(&self, disk: usize, offset: usize, buf: &[u8]) -> Result<(), StoreError> {
        check_geometry(self.files.len(), self.units(), disk, offset, self.unit_size, buf.len())?;
        let f = self.files[disk].lock().unwrap();
        write_at(&f, buf, (offset * self.unit_size) as u64)?;
        self.counters.add_write(disk, 1);
        Ok(())
    }

    fn read_units(&self, disk: usize, offset: usize, buf: &mut [u8]) -> Result<(), StoreError> {
        let n =
            check_span(self.files.len(), self.units(), disk, offset, self.unit_size, buf.len())?;
        let f = self.files[disk].lock().unwrap();
        read_at(&f, buf, (offset * self.unit_size) as u64)?;
        self.counters.add_read(disk, n as u64);
        Ok(())
    }

    fn write_units(&self, disk: usize, offset: usize, buf: &[u8]) -> Result<(), StoreError> {
        let n =
            check_span(self.files.len(), self.units(), disk, offset, self.unit_size, buf.len())?;
        let f = self.files[disk].lock().unwrap();
        write_at(&f, buf, (offset * self.unit_size) as u64)?;
        self.counters.add_write(disk, n as u64);
        Ok(())
    }

    fn read_units_scatter(
        &self,
        disk: usize,
        offset: usize,
        bufs: &mut [&mut [u8]],
    ) -> Result<(), StoreError> {
        let n = check_scatter(
            self.files.len(),
            self.units(),
            disk,
            offset,
            self.unit_size,
            bufs.iter().map(|b| b.len()),
        )?;
        let f = self.files[disk].lock().unwrap();
        read_scatter_at(&f, bufs, (offset * self.unit_size) as u64)?;
        self.counters.add_read(disk, n as u64);
        Ok(())
    }

    fn write_units_gather(
        &self,
        disk: usize,
        offset: usize,
        bufs: &[&[u8]],
    ) -> Result<(), StoreError> {
        let n = check_scatter(
            self.files.len(),
            self.units(),
            disk,
            offset,
            self.unit_size,
            bufs.iter().map(|b| b.len()),
        )?;
        let f = self.files[disk].lock().unwrap();
        write_gather_at(&f, bufs, (offset * self.unit_size) as u64)?;
        self.counters.add_write(disk, n as u64);
        Ok(())
    }

    fn flush(&self) -> Result<(), StoreError> {
        for f in &self.files {
            f.lock().unwrap().sync_data()?;
        }
        Ok(())
    }

    fn read_count(&self, disk: usize) -> u64 {
        self.counters.read_units(disk)
    }

    fn write_count(&self, disk: usize) -> u64 {
        self.counters.write_units(disk)
    }

    fn read_calls(&self, disk: usize) -> u64 {
        self.counters.read_calls(disk)
    }

    fn write_calls(&self, disk: usize) -> u64 {
        self.counters.write_calls(disk)
    }

    fn reset_counters(&self) {
        self.counters.reset();
    }

    fn wipe_disk(&self, disk: usize) -> Result<(), StoreError> {
        if disk >= self.files.len() {
            return Err(StoreError::OutOfRange { disk, offset: 0 });
        }
        // One zero buffer reused in large chunks: the fault injector
        // wipes whole disks on every injected failure, so this runs
        // hot in the fault-injection schedules.
        let total = self.units() * self.unit_size;
        let zeros = vec![0u8; total.min(Self::WIPE_CHUNK)];
        let f = self.files[disk].lock().unwrap();
        let mut at = 0usize;
        while at < total {
            let len = zeros.len().min(total - at);
            write_at(&f, &zeros[..len], at as u64)?;
            at += len;
        }
        Ok(())
    }

    fn persist_mapping(&self, redirect: &[usize]) -> Result<(), StoreError> {
        let json = serde_json::to_string(&redirect.to_vec())
            .map_err(|e| StoreError::Corrupt(format!("mapping encode: {e}")))?;
        std::fs::write(self.dir.join(Self::MAPPING_FILE), json)?;
        Ok(())
    }

    fn load_mapping(&self) -> Result<Option<Vec<usize>>, StoreError> {
        let path = self.dir.join(Self::MAPPING_FILE);
        if !path.exists() {
            return Ok(None);
        }
        let json = std::fs::read_to_string(path)?;
        let redirect: Vec<usize> = serde_json::from_str(&json)
            .map_err(|e| StoreError::Corrupt(format!("mapping decode: {e}")))?;
        Ok(Some(redirect))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(backend: &dyn Backend) {
        let us = backend.unit_size();
        let pattern: Vec<u8> = (0..us).map(|i| (i % 251) as u8).collect();
        backend.write_unit(1, 3, &pattern).unwrap();
        let mut out = vec![0u8; us];
        backend.read_unit(1, 3, &mut out).unwrap();
        assert_eq!(out, pattern);
        // untouched units read back as zeroes
        backend.read_unit(0, 0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
        assert_eq!(backend.read_count(1), 1);
        assert_eq!(backend.read_count(0), 1);
        assert_eq!(backend.write_count(1), 1);
        backend.reset_counters();
        assert_eq!(backend.read_count(1), 0);
    }

    #[test]
    fn mem_roundtrip_and_counters() {
        let b = MemBackend::new(3, 8, 64);
        roundtrip(&b);
    }

    #[test]
    fn file_roundtrip_and_counters() {
        let dir = std::env::temp_dir().join(format!("pdl-store-test-{}", std::process::id()));
        let b = FileBackend::create(&dir, 3, 8, 64).unwrap();
        roundtrip(&b);
        b.flush().unwrap();
        drop(b);
        // reopen and confirm persistence
        let b = FileBackend::open(&dir, 3, 8, 64).unwrap();
        let mut out = vec![0u8; 64];
        b.read_unit(1, 3, &mut out).unwrap();
        assert_eq!(out[1], 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_discards_stale_mapping() {
        let dir = std::env::temp_dir().join(format!("pdl-store-stalemap-{}", std::process::id()));
        {
            let b = FileBackend::create(&dir, 3, 4, 32).unwrap();
            b.persist_mapping(&[0, 2, 1]).unwrap();
            assert_eq!(b.load_mapping().unwrap(), Some(vec![0, 2, 1]));
        }
        // A fresh array in the same directory starts with no mapping.
        let b = FileBackend::create(&dir, 3, 4, 32).unwrap();
        assert_eq!(b.load_mapping().unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_bad_length() {
        let dir = std::env::temp_dir().join(format!("pdl-store-badlen-{}", std::process::id()));
        {
            FileBackend::create(&dir, 2, 4, 32).unwrap();
        }
        assert!(matches!(FileBackend::open(&dir, 2, 8, 32), Err(StoreError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bounds_checked() {
        let b = MemBackend::new(2, 4, 16);
        let mut buf = vec![0u8; 16];
        assert!(matches!(b.read_unit(2, 0, &mut buf), Err(StoreError::OutOfRange { .. })));
        assert!(matches!(b.read_unit(0, 4, &mut buf), Err(StoreError::OutOfRange { .. })));
        let mut short = vec![0u8; 15];
        assert!(matches!(b.read_unit(0, 0, &mut short), Err(StoreError::BadBufferSize { .. })));
    }

    fn vectored_roundtrip(backend: &dyn Backend) {
        let us = backend.unit_size();
        // Write 3 units in one call, read them back in one call and
        // per-unit; both views agree and counters track units + calls.
        let span: Vec<u8> = (0..3 * us).map(|i| (i % 249) as u8).collect();
        backend.write_units(0, 2, &span).unwrap();
        assert_eq!(backend.write_count(0), 3, "3 units written");
        assert_eq!(backend.write_calls(0), 1, "in one backend call");
        let mut got = vec![0u8; 3 * us];
        backend.read_units(0, 2, &mut got).unwrap();
        assert_eq!(got, span);
        assert_eq!(backend.read_count(0), 3);
        assert_eq!(backend.read_calls(0), 1);
        let mut one = vec![0u8; us];
        backend.read_unit(0, 3, &mut one).unwrap();
        assert_eq!(one, span[us..2 * us]);
        // Span bounds: runs past the end of the disk are rejected.
        let mut over = vec![0u8; 4 * us];
        assert!(matches!(backend.read_units(0, 6, &mut over), Err(StoreError::OutOfRange { .. })));
        let mut ragged = vec![0u8; us + 1];
        assert!(matches!(
            backend.read_units(0, 0, &mut ragged),
            Err(StoreError::BadBufferSize { .. })
        ));
        assert!(matches!(backend.read_units(0, 0, &mut []), Err(StoreError::BadBufferSize { .. })));
    }

    #[test]
    fn mem_vectored_roundtrip() {
        let b = MemBackend::new(2, 8, 32);
        vectored_roundtrip(&b);
    }

    #[test]
    fn file_vectored_roundtrip_and_bulk_wipe() {
        let dir = std::env::temp_dir().join(format!("pdl-store-vec-{}", std::process::id()));
        let b = FileBackend::create(&dir, 2, 8, 32).unwrap();
        vectored_roundtrip(&b);
        // wipe_disk zeroes the whole disk in bulk writes.
        b.wipe_disk(0).unwrap();
        let mut got = vec![1u8; 8 * 32];
        b.read_units(0, 0, &mut got).unwrap();
        assert!(got.iter().all(|&x| x == 0), "wiped disk reads back as zeroes");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
