//! The block store: real bytes through a parity-declustered layout.
//!
//! A [`BlockStore`] couples a validated [`Layout`], its Condition-4
//! [`AddressMapper`], and a [`Backend`] into a single-failure-tolerant
//! array: every write maintains XOR parity (read-modify-write for small
//! writes, a no-read fast path for full-stripe writes), reads of a
//! failed disk reconstruct from the surviving stripe members, and a
//! spare disk can take over a failed one after an online rebuild
//! ([`crate::Rebuilder`]).

use crate::backend::Backend;
use crate::error::StoreError;
use pdl_core::{AddressMapper, Layout, StripeUnit};
use pdl_sim::{Trace, TraceOp};

/// XORs `src` into `dst` byte-wise.
pub(crate) fn xor_into(dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    // Word-at-a-time: the hot loop of every parity and reconstruction
    // path, worth the chunking boilerplate.
    let (dc, dr) = dst.split_at_mut(dst.len() - dst.len() % 8);
    let (sc, sr) = src.split_at(src.len() - src.len() % 8);
    for (d8, s8) in dc.chunks_exact_mut(8).zip(sc.chunks_exact(8)) {
        let d = u64::from_ne_bytes(d8.try_into().unwrap());
        let s = u64::from_ne_bytes(s8.try_into().unwrap());
        d8.copy_from_slice(&(d ^ s).to_ne_bytes());
    }
    for (d, s) in dr.iter_mut().zip(sr) {
        *d ^= s;
    }
}

/// Outcome counters from replaying a [`Trace`] against the store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Read operations executed.
    pub reads: usize,
    /// Write operations executed.
    pub writes: usize,
    /// Blocks transferred by reads.
    pub blocks_read: usize,
    /// Blocks transferred by writes.
    pub blocks_written: usize,
}

/// A parity-declustered block store over any layout and backend.
///
/// Logical addresses are data blocks of `unit_size` bytes, enumerated
/// in stripe order by the [`AddressMapper`] and tiled down the disks
/// for arrays larger than one layout copy.
#[derive(Debug)]
pub struct BlockStore<B> {
    layout: Layout,
    mapper: AddressMapper,
    backend: B,
    unit_size: usize,
    copies: usize,
    /// Logical disk → physical backend disk (spares swap in here).
    redirect: Vec<usize>,
    failed: Option<usize>,
}

impl<B: Backend> BlockStore<B> {
    /// Builds a store over `backend`. The backend must have at least
    /// `layout.v()` disks (extras serve as spares) and a units-per-disk
    /// that is a nonzero multiple of `layout.size()` (whole layout
    /// copies).
    pub fn new(layout: Layout, backend: B) -> Result<Self, StoreError> {
        let v = layout.v();
        if backend.disks() < v {
            return Err(StoreError::Geometry(format!(
                "layout spans {v} disks but backend has {}",
                backend.disks()
            )));
        }
        let per_disk = backend.units_per_disk();
        if per_disk == 0 || !per_disk.is_multiple_of(layout.size()) {
            return Err(StoreError::Geometry(format!(
                "backend has {per_disk} units per disk, not a positive multiple of the layout \
                 size {}",
                layout.size()
            )));
        }
        let copies = per_disk / layout.size();
        let mapper = AddressMapper::new(&layout);
        let unit_size = backend.unit_size();
        if unit_size == 0 {
            return Err(StoreError::Geometry("backend unit size is zero".into()));
        }
        // A durable backend may carry a logical→physical mapping from
        // rebuilds in a previous process lifetime; honor it, or reads
        // would hit the stale pre-rebuild disks.
        let redirect = match backend.load_mapping()? {
            Some(saved) => {
                let mut seen = vec![false; backend.disks()];
                if saved.len() != v {
                    return Err(StoreError::Corrupt(format!(
                        "persisted mapping covers {} disks, layout has {v}",
                        saved.len()
                    )));
                }
                for &p in &saved {
                    if p >= backend.disks() || seen[p] {
                        return Err(StoreError::Corrupt(format!(
                            "persisted mapping entry {p} is out of range or duplicated"
                        )));
                    }
                    seen[p] = true;
                }
                saved
            }
            None => (0..v).collect(),
        };
        Ok(BlockStore { mapper, backend, unit_size, copies, redirect, failed: None, layout })
    }

    /// The layout this store declusters over.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The Condition-4 address mapper.
    pub fn mapper(&self) -> &AddressMapper {
        &self.mapper
    }

    /// The backend (e.g. to inspect IO counters).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Bytes per logical block.
    pub fn unit_size(&self) -> usize {
        self.unit_size
    }

    /// Layout copies tiled down the disks.
    pub fn copies(&self) -> usize {
        self.copies
    }

    /// Store capacity in logical data blocks.
    pub fn blocks(&self) -> usize {
        self.copies * self.mapper.data_units_per_copy()
    }

    /// Number of logical disks (the layout's `v`).
    pub fn v(&self) -> usize {
        self.layout.v()
    }

    /// The currently failed logical disk, if any.
    pub fn failed_disk(&self) -> Option<usize> {
        self.failed
    }

    /// True when a disk is failed and not yet rebuilt.
    pub fn is_degraded(&self) -> bool {
        self.failed.is_some()
    }

    /// Physical backend disk currently serving logical disk `d`.
    pub fn physical_disk(&self, d: usize) -> usize {
        self.redirect[d]
    }

    pub(crate) fn complete_rebuild(
        &mut self,
        failed: usize,
        spare: usize,
    ) -> Result<(), StoreError> {
        self.redirect[failed] = spare;
        self.failed = None;
        // Durable backends record the new mapping so a reopened store
        // reads the spare, not the stale failed disk.
        self.backend.persist_mapping(&self.redirect)
    }

    /// Marks a logical disk failed. Subsequent reads of its units are
    /// served degraded (reconstructed from surviving stripe members);
    /// writes keep parity consistent so no data is lost. At most one
    /// disk may be failed at a time (XOR parity).
    pub fn fail_disk(&mut self, disk: usize) -> Result<(), StoreError> {
        if disk >= self.layout.v() {
            return Err(StoreError::OutOfRange { disk, offset: 0 });
        }
        match self.failed {
            Some(already) if already != disk => {
                Err(StoreError::TooManyFailures { already, requested: disk })
            }
            _ => {
                self.failed = Some(disk);
                Ok(())
            }
        }
    }

    /// Per-logical-disk units read since the last counter reset.
    pub fn read_counts(&self) -> Vec<u64> {
        (0..self.layout.v()).map(|d| self.backend.read_count(self.redirect[d])).collect()
    }

    /// Per-logical-disk units written since the last counter reset.
    pub fn write_counts(&self) -> Vec<u64> {
        (0..self.layout.v()).map(|d| self.backend.write_count(self.redirect[d])).collect()
    }

    /// Zeroes the backend IO counters.
    pub fn reset_counters(&self) {
        self.backend.reset_counters();
    }

    /// Flushes the backend.
    pub fn flush(&self) -> Result<(), StoreError> {
        self.backend.flush()
    }

    fn check_addr(&self, addr: usize) -> Result<(), StoreError> {
        if addr >= self.blocks() {
            return Err(StoreError::AddressOutOfRange { addr, blocks: self.blocks() });
        }
        Ok(())
    }

    fn check_block_buf(&self, len: usize) -> Result<(), StoreError> {
        if len != self.unit_size {
            return Err(StoreError::BadBufferSize { expected: self.unit_size, got: len });
        }
        Ok(())
    }

    fn read_phys(&self, u: StripeUnit, buf: &mut [u8]) -> Result<(), StoreError> {
        self.backend.read_unit(self.redirect[u.disk as usize], u.offset as usize, buf)
    }

    fn write_phys(&self, u: StripeUnit, buf: &[u8]) -> Result<(), StoreError> {
        self.backend.write_unit(self.redirect[u.disk as usize], u.offset as usize, buf)
    }

    /// Stripe members (tiled into the unit's copy) of the stripe owning
    /// physical position `(disk, offset)`.
    fn stripe_members(&self, disk: usize, offset: usize) -> (Vec<StripeUnit>, usize) {
        let size = self.layout.size();
        let copy = offset / size;
        let base = offset % size;
        let r = self.layout.unit_ref(disk, base);
        let stripe = &self.layout.stripes()[r.stripe as usize];
        let shift = (copy * size) as u32;
        let members = stripe
            .units()
            .iter()
            .map(|u| StripeUnit { disk: u.disk, offset: u.offset + shift })
            .collect();
        (members, stripe.parity_slot())
    }

    /// Reconstructs the unit at `(disk, offset)` from the surviving
    /// members of its stripe (disk may be failed or simply absent).
    /// This is the degraded-read / rebuild primitive.
    pub(crate) fn reconstruct_unit(
        &self,
        disk: usize,
        offset: usize,
        out: &mut [u8],
    ) -> Result<(), StoreError> {
        let mut tmp = vec![0u8; self.unit_size];
        self.reconstruct_unit_into(disk, offset, out, &mut tmp)
    }

    /// Allocation-free variant for hot loops: the caller supplies the
    /// `unit_size` scratch buffer (reused across calls by the rebuild
    /// workers), and stripe members are walked without materializing.
    pub(crate) fn reconstruct_unit_into(
        &self,
        disk: usize,
        offset: usize,
        out: &mut [u8],
        tmp: &mut [u8],
    ) -> Result<(), StoreError> {
        self.check_block_buf(out.len())?;
        self.check_block_buf(tmp.len())?;
        out.fill(0);
        let size = self.layout.size();
        let copy = offset / size;
        let base = offset % size;
        let r = self.layout.unit_ref(disk, base);
        let shift = (copy * size) as u32;
        for u in self.layout.stripes()[r.stripe as usize].units() {
            if u.disk as usize == disk {
                continue;
            }
            if self.failed == Some(u.disk as usize) {
                // Two failures in one stripe: unreconstructable.
                return Err(StoreError::DiskFailed(u.disk as usize));
            }
            self.read_phys(StripeUnit { disk: u.disk, offset: u.offset + shift }, tmp)?;
            xor_into(out, tmp);
        }
        Ok(())
    }

    /// Reads logical block `addr` into `buf` (`unit_size` bytes),
    /// reconstructing from parity when the owning disk is failed.
    pub fn read_block(&self, addr: usize, buf: &mut [u8]) -> Result<(), StoreError> {
        self.check_addr(addr)?;
        self.check_block_buf(buf.len())?;
        let u = self.mapper.locate(addr);
        if self.failed == Some(u.disk as usize) {
            self.reconstruct_unit(u.disk as usize, u.offset as usize, buf)
        } else {
            self.read_phys(u, buf)
        }
    }

    /// Writes logical block `addr` from `data` (`unit_size` bytes),
    /// maintaining stripe parity. Small writes cost two reads + two
    /// writes (read-modify-write); use [`BlockStore::write_blocks`] for
    /// the full-stripe fast path.
    pub fn write_block(&mut self, addr: usize, data: &[u8]) -> Result<(), StoreError> {
        self.check_addr(addr)?;
        self.check_block_buf(data.len())?;
        let u = self.mapper.locate(addr);
        let p = self.mapper.parity_of(addr, &self.layout);
        let udisk = u.disk as usize;
        let pdisk = p.disk as usize;
        match self.failed {
            Some(f) if f == udisk => {
                // Lost data unit: fold the new value into parity so a
                // degraded read (and the eventual rebuild) returns it.
                // parity = new_data XOR (all other data units).
                let (members, parity_slot) = self.stripe_members(udisk, u.offset as usize);
                let mut parity = data.to_vec();
                let mut tmp = vec![0u8; self.unit_size];
                for (slot, m) in members.iter().enumerate() {
                    if slot == parity_slot || *m == u {
                        continue;
                    }
                    self.read_phys(*m, &mut tmp)?;
                    xor_into(&mut parity, &tmp);
                }
                self.write_phys(p, &parity)
            }
            Some(f) if f == pdisk => {
                // Lost parity: just write the data; parity is restored
                // wholesale by rebuild.
                self.write_phys(u, data)
            }
            _ => {
                // Healthy small write: RMW parity update.
                let mut old = vec![0u8; self.unit_size];
                self.read_phys(u, &mut old)?;
                let mut parity = vec![0u8; self.unit_size];
                self.read_phys(p, &mut parity)?;
                xor_into(&mut parity, &old);
                xor_into(&mut parity, data);
                self.write_phys(u, data)?;
                self.write_phys(p, &parity)
            }
        }
    }

    /// Reads `buf.len() / unit_size` consecutive logical blocks
    /// starting at `start` (buf length must be a block multiple).
    pub fn read_blocks(&self, start: usize, buf: &mut [u8]) -> Result<(), StoreError> {
        if !buf.len().is_multiple_of(self.unit_size) {
            return Err(StoreError::BadBufferSize { expected: self.unit_size, got: buf.len() });
        }
        for (i, chunk) in buf.chunks_exact_mut(self.unit_size).enumerate() {
            self.read_block(start + i, chunk)?;
        }
        Ok(())
    }

    /// Writes consecutive logical blocks starting at `start`,
    /// recognizing runs that cover a whole stripe's data units and
    /// writing those with freshly computed parity and **zero reads**
    /// (the paper's Condition-5 large-write optimization); partial
    /// stripes fall back to read-modify-write.
    pub fn write_blocks(&mut self, start: usize, data: &[u8]) -> Result<(), StoreError> {
        if data.is_empty() {
            return Ok(());
        }
        if !data.len().is_multiple_of(self.unit_size) {
            return Err(StoreError::BadBufferSize { expected: self.unit_size, got: data.len() });
        }
        let n = data.len() / self.unit_size;
        self.check_addr(start)?;
        self.check_addr(start + n - 1)?;
        let per_copy = self.mapper.data_units_per_copy();
        let mut i = 0usize;
        while i < n {
            let addr = start + i;
            let stripe_idx = self.mapper.stripe_of(addr);
            let k_data = self.layout.stripes()[stripe_idx].len() - 1;
            // Runs never span copies: stripe_of works within one copy.
            let within = addr % per_copy;
            let is_stripe_head = within == 0 || self.mapper.stripe_of(addr - 1) != stripe_idx;
            let run = (n - i).min(k_data);
            let covers_stripe = is_stripe_head
                && run == k_data
                && (within + run <= per_copy)
                && self.mapper.stripe_of(addr + run - 1) == stripe_idx;
            if covers_stripe {
                self.write_full_stripe(
                    addr,
                    &data[i * self.unit_size..(i + run) * self.unit_size],
                )?;
                i += run;
            } else {
                self.write_block(addr, &data[i * self.unit_size..(i + 1) * self.unit_size])?;
                i += 1;
            }
        }
        Ok(())
    }

    /// Writes all `k−1` data blocks of one stripe (addresses
    /// `start .. start + k−1`, which the caller has verified cover the
    /// stripe) plus recomputed parity, without reading anything.
    fn write_full_stripe(&mut self, start: usize, data: &[u8]) -> Result<(), StoreError> {
        let k_data = data.len() / self.unit_size;
        let mut parity = vec![0u8; self.unit_size];
        for chunk in data.chunks_exact(self.unit_size) {
            xor_into(&mut parity, chunk);
        }
        for (j, chunk) in data.chunks_exact(self.unit_size).enumerate() {
            let u = self.mapper.locate(start + j);
            if self.failed == Some(u.disk as usize) {
                // The lost unit's content is encoded in the new parity;
                // nothing to write on the failed disk.
                continue;
            }
            self.write_phys(u, chunk)?;
        }
        let p = self.mapper.parity_of(start, &self.layout);
        debug_assert_eq!(self.mapper.parity_of(start + k_data - 1, &self.layout), p);
        if self.failed != Some(p.disk as usize) {
            self.write_phys(p, &parity)?;
        }
        Ok(())
    }

    /// Replays a [`Trace`] (block-granular ops) against the store.
    /// Write payloads are a deterministic function of `(addr, op
    /// index)`, so two replays produce identical on-disk content.
    pub fn replay(&mut self, trace: &Trace) -> Result<ReplayStats, StoreError> {
        let mut stats = ReplayStats::default();
        let mut buf = vec![0u8; self.unit_size];
        for (i, op) in trace.ops.iter().enumerate() {
            match *op {
                TraceOp::Read { addr, len } => {
                    for a in addr..addr + len {
                        self.read_block(a, &mut buf)?;
                    }
                    stats.reads += 1;
                    stats.blocks_read += len;
                }
                TraceOp::Write { addr, len } => {
                    let mut data = vec![0u8; len * self.unit_size];
                    for (j, chunk) in data.chunks_exact_mut(self.unit_size).enumerate() {
                        fill_pattern(addr + j, i as u64, chunk);
                    }
                    self.write_blocks(addr, &data)?;
                    stats.writes += 1;
                    stats.blocks_written += len;
                }
            }
        }
        Ok(stats)
    }

    /// Scans every stripe and verifies its XOR invariant (the parity
    /// unit equals the XOR of its data units). Failed disks make
    /// verification impossible; call on a healthy array.
    pub fn verify_parity(&self) -> Result<(), StoreError> {
        if let Some(f) = self.failed {
            return Err(StoreError::DiskFailed(f));
        }
        let size = self.layout.size();
        let mut acc = vec![0u8; self.unit_size];
        let mut tmp = vec![0u8; self.unit_size];
        for copy in 0..self.copies {
            let shift = (copy * size) as u32;
            for (si, stripe) in self.layout.stripes().iter().enumerate() {
                acc.fill(0);
                for u in stripe.units() {
                    let phys = StripeUnit { disk: u.disk, offset: u.offset + shift };
                    self.read_phys(phys, &mut tmp)?;
                    xor_into(&mut acc, &tmp);
                }
                if acc.iter().any(|&b| b != 0) {
                    return Err(StoreError::Corrupt(format!(
                        "stripe {si} (copy {copy}) fails its XOR parity invariant"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Deterministic block payload used by [`BlockStore::replay`].
pub fn fill_pattern(addr: usize, salt: u64, buf: &mut [u8]) {
    let mut x =
        (addr as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ salt.wrapping_mul(0xd1b54a32d192ed03);
    for chunk in buf.chunks_mut(8) {
        x ^= x >> 32;
        x = x.wrapping_mul(0xff51afd7ed558ccd);
        x ^= x >> 29;
        let b = x.to_le_bytes();
        chunk.copy_from_slice(&b[..chunk.len()]);
    }
}
