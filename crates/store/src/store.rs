//! The block store: real bytes through a parity-declustered layout.
//!
//! A [`BlockStore`] couples a validated [`Layout`], a scheme-aware
//! [`StripeMap`], and a [`Backend`] into a fault-tolerant array whose
//! redundancy level is set by its [`ParityScheme`]:
//!
//! * **XOR** (single parity) — every write maintains the stripe XOR
//!   invariant; any one disk may fail.
//! * **P+Q** (double parity) — every write additionally maintains a
//!   Reed–Solomon Q unit over `GF(2^8)`; any two disks may fail
//!   concurrently.
//!
//! Reads of failed disks reconstruct from the surviving stripe
//! members (one- or two-erasure decode); writes keep all surviving
//! parity consistent so no acknowledged data is ever lost while the
//! array is degraded; and spare disks take over failed ones after an
//! online rebuild ([`crate::Rebuilder`]).
//!
//! ## Concurrency model
//!
//! Every data-path operation — reads, writes, degraded decodes,
//! rebuild chunks — takes `&self`, so one store serves many client
//! threads at once (`BlockStore<B>: Sync` whenever `B: Backend`).
//! Three mechanisms make that safe:
//!
//! 1. **A stripe-sharded lock table** (`StripeLockTable`). Parity
//!    maintenance is a multi-unit read-modify-write over one stripe,
//!    so each `(copy, stripe)` hashes to one of a fixed number of
//!    shard `RwLock`s. Writers (and rebuild workers) lock every shard
//!    their stripes hash to *before touching any byte*, always in
//!    ascending shard order — two-phase ordered acquisition, so
//!    multi-stripe batches cannot deadlock. Degraded reads take the
//!    same shards *shared*, which lets concurrent decodes overlap
//!    while still excluding writers mid-update.
//! 2. **An `RwLock` epoch around the failure state**
//!    ([`BlockStore::epoch`]). The logical→physical redirect table,
//!    the [`FailureSet`], and the active-rebuild registration live in
//!    one `RwLock`: every data-path op pins a read guard (a stable
//!    snapshot) for its whole duration, while `fail_disk`,
//!    `restore_disk`, and rebuild begin/complete take the write lock —
//!    so a failure transition waits for in-flight I/O to drain and is
//!    never observed half-applied.
//! 3. **Per-disk atomic I/O counters** (see [`Backend`]): counting
//!    never serializes the data path, and counters stay monotonic
//!    across failure events — `fail_disk`/`restore_disk` error paths
//!    touch no counter.
//! 4. **The write-back stripe cache** ([`crate::cache`]) is sharded
//!    by the same `(copy, stripe)` key as the lock table: entries
//!    mutate only under their stripe's exclusive shard lock, reads
//!    probe them lock-free (one atomic when clean), flushes hold the
//!    shard lock and remove the entry only after the backend writes
//!    land, and every failure-state transition drains the cache
//!    under the exclusive state guard before changing anything.
//!
//! Healthy single-unit reads skip the stripe locks entirely: the
//! backend guarantees unit-granular atomicity, and a read that races
//! a write may see the old or the new unit, never a torn one. A
//! multi-block call is atomic per block, not across blocks.
//!
//! ## The failure/rebuild state machine
//!
//! ```text
//!            fail_disk(d)                fail_disk(d')     (P+Q only)
//! Healthy ───────────────▶ Degraded(1) ───────────────▶ Degraded(2)
//!    ▲                      │      ▲                        │
//!    │   rebuild → spare    │      │   rebuild → spare      │
//!    └──────────────────────┘      └────────────────────────┘
//! ```
//!
//! `fail_disk` on an already-failed disk is an error
//! ([`StoreError::AlreadyFailed`]); exceeding the scheme's tolerance is
//! [`StoreError::TooManyFailures`]. [`BlockStore::restore_disk`] undoes
//! a *transient* failure (contents intact); a rebuild
//! ([`crate::Rebuilder`]) redirects the logical disk onto a spare and
//! removes it from the failure set. A rebuild may run **concurrently
//! with live traffic**: while it is registered, writes that would
//! have to skip a unit on the rebuilding disk are *written through*
//! to its spare (see `spare_for`), so the spare is bit-exact when the
//! redirect flips.
//!
//! ## Decode policy
//!
//! Reconstruction always reads **every** surviving member of the
//! stripe — under P+Q this occasionally includes a parity unit the
//! erasure count does not strictly require. The extra unit buys an
//! exactly uniform rebuild load: every stripe crossing the failed disk
//! charges one read to each of its surviving disks, so a declustered
//! rebuild reads `(k−1)/(v−1)` of every survivor per failed disk — the
//! paper's ratio — with zero spread (see the rebuild-balance tests).
//!
//! ## Observability
//!
//! Every store owns a [`Metrics`] registry ([`BlockStore::metrics`])
//! and an optional [`crate::EventSink`]
//! ([`BlockStore::set_event_sink`]); [`BlockStore::stats`] snapshots
//! everything. Which operations record which [`OpKind`]s and emit
//! which [`Event`]s:
//!
//! | operation | op kinds recorded | events emitted |
//! |---|---|---|
//! | [`BlockStore::read_block`] / [`BlockStore::read_blocks`] | `Read`, or `DegradedRead` for blocks on failed disks | `OpBegin`/`OpEnd` |
//! | [`BlockStore::write_block`] / [`BlockStore::write_blocks`] | `Write`, or `DegradedWrite` when the stripe (single) / array (batch) has a failure | `OpBegin`/`OpEnd`, `LockContention` (single-block, contended shard) |
//! | [`BlockStore::fail_disk`] | — (degraded window opens) | `DiskFailed` |
//! | [`BlockStore::restore_disk`] | — (degraded window closes) | `DiskRestored` |
//! | rebuild begin/complete/abort | — (window closes on complete) | `RebuildBegan`/`RebuildCompleted`/`RebuildAborted` |
//! | rebuild chunks ([`crate::Rebuilder`]) | `RebuildRead` + `SpareWrite` (timed per chunk) | — |
//! | cache flush batches | `CacheFlush` (units = dirty units flushed) | `CacheFlush` |
//!
//! `OpBegin`/`OpEnd` spans are emitted only while a sink is
//! installed; an op that fails mid-flight leaves its span unclosed.
//! Latency histograms sample 1 in [`Metrics::SAMPLE_EVERY`] ops
//! (every op while a sink forces span timing); counters are exact.

use crate::backend::Backend;
use crate::cache::{key_parts, stripe_key, CachePolicy, FlushSnapshot, StripeCache};
use crate::error::StoreError;
use crate::integrity::{xxh64, ChecksumTable, Integrity, RetryPolicy};
use crate::maintenance::MaintState;
use crate::meta::StoreMeta;
use crate::obs::{
    DiskStatSnapshot, Event, EventHub, EventSink, Metrics, OpKind, RebuildProgress, RebuildTracker,
    StatsSnapshot,
};
use crate::reshape::ReshapeRuntime;
use crate::scheme::{AddrRef, FailureSet, ParityScheme, StripeMap};
use pdl_algebra::gf256::{self, xor_slice};
use pdl_core::{DoubleParityLayout, Layout, StripeUnit};
use pdl_sim::{Trace, TraceOp};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

/// Names which [`Scratch`] buffer holds a decoded value, so decode
/// results carry no borrow and callers can keep using the scratch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum DecodedBuf {
    /// The P (XOR syndrome) accumulator.
    P,
    /// The Q (`GF(2^8)` syndrome) accumulator.
    Q,
}

/// A decode result: up to two `(lost slot, holding buffer)` pairs; the
/// values live in the caller's [`Scratch`] until its next decode.
pub(crate) type Decoded = [Option<(usize, DecodedBuf)>; 2];

/// Largest hole (in units) a coalesced read run will bridge — units
/// in a bridged gap are read into a discard buffer so the run stays
/// one backend call. Small single-parity holes merge; larger holes
/// (e.g. a layout's clustered parity region) split the run instead,
/// because reading a wide hole through the page cache costs more in
/// moved bytes than the saved backend call is worth.
const READ_GAP_BRIDGE: usize = 2;

/// The stripe-sharded lock table: parity updates are multi-unit
/// read-modify-writes over one stripe, so each `(copy, stripe)` pair
/// hashes to one of [`StripeLockTable::SHARDS`] `RwLock` shards.
///
/// Locking discipline (deadlock freedom by construction):
///
/// * an operation computes the full shard set of every stripe it will
///   touch **up front**, sorts and dedups it, and acquires the shards
///   in ascending index order (two-phase: acquire all, then operate,
///   then release all);
/// * writers and the parity-consistency scan take shards *exclusive*;
///   degraded decodes and rebuild prefetches take them *shared* —
///   readers never mutate stripe bytes, so they may overlap freely
///   while any writer still excludes them;
/// * shard locks nest strictly inside the store's state read guard
///   and strictly outside the backend's per-disk locks, and no path
///   acquires them in any other order.
///
/// Two distinct stripes may hash to one shard; that only coarsens the
/// exclusion (false sharing of a lock), never breaks it.
#[derive(Debug)]
pub(crate) struct StripeLockTable {
    shards: Box<[RwLock<()>]>,
}

impl StripeLockTable {
    /// Shard count — a power of two so the hash reduces with a shift.
    /// 64 shards keep the table at one cache line per lock word while
    /// making same-shard collisions of independent stripes rare for
    /// the thread counts a single store realistically serves.
    const SHARDS: usize = 64;

    pub(crate) fn new() -> StripeLockTable {
        StripeLockTable { shards: (0..Self::SHARDS).map(|_| RwLock::new(())).collect() }
    }

    /// Shard of a `(copy, stripe)` pair (Fibonacci hash, top bits).
    pub(crate) fn shard_of(&self, copy: usize, stripe: usize) -> usize {
        const { assert!(StripeLockTable::SHARDS.is_power_of_two()) };
        let key = ((copy as u64) << 32) | stripe as u64;
        (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> (64 - Self::SHARDS.trailing_zeros())) as usize
    }

    /// Exclusive guard over one shard that also reports whether the
    /// acquisition had to wait (a contention sample for the metrics
    /// registry): a failed `try_write` means another thread held the
    /// shard at that instant.
    pub(crate) fn lock_one_counting(&self, shard: usize) -> (RwLockWriteGuard<'_, ()>, bool) {
        match self.shards[shard].try_write() {
            Ok(g) => (g, false),
            Err(_) => (self.shards[shard].write().unwrap(), true),
        }
    }

    pub(crate) fn lock_one_shared(&self, shard: usize) -> RwLockReadGuard<'_, ()> {
        self.shards[shard].read().unwrap()
    }

    /// Exclusive guards over a **sorted, deduplicated** shard set (the
    /// ordered-acquisition phase of a multi-stripe write).
    pub(crate) fn lock_sorted(&self, shards: &[usize]) -> Vec<RwLockWriteGuard<'_, ()>> {
        debug_assert!(shards.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
        shards.iter().map(|&s| self.shards[s].write().unwrap()).collect()
    }

    /// Shared guards over a sorted, deduplicated shard set (degraded
    /// batch decodes, rebuild chunk prefetches).
    fn lock_sorted_shared(&self, shards: &[usize]) -> Vec<RwLockReadGuard<'_, ()>> {
        debug_assert!(shards.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
        shards.iter().map(|&s| self.shards[s].read().unwrap()).collect()
    }
}

/// Sorts and dedups a shard id list in place (the "compute the lock
/// set up front" phase of two-phase acquisition).
pub(crate) fn sort_shard_set(shards: &mut Vec<usize>) {
    shards.sort_unstable();
    shards.dedup();
}

/// One *world*: a layout, its address map, and the per-disk stale
/// markers that go with it. The store always serves traffic from the
/// current world in [`ArrayState`]; an online reshape builds a second
/// (target) world in the backend's scratch region and swaps it in
/// atomically at commit — which is why everything here lives behind
/// the state `RwLock` instead of being plain `BlockStore` fields.
#[derive(Debug)]
pub(crate) struct World {
    pub(crate) layout: Arc<Layout>,
    pub(crate) smap: Arc<StripeMap>,
    /// `(P, Q)` slot pairs per stripe when the scheme is P+Q.
    pub(crate) pq_slots: Option<Vec<(usize, usize)>>,
    /// Layout copies tiled down the disks.
    pub(crate) copies: usize,
    /// Per-logical-disk *stale medium* markers: a write skipped (or
    /// wrote through past) a unit on the disk while it was failed, so
    /// its bytes no longer match the parity equations and only a
    /// rebuild (never [`BlockStore::restore_disk`]) may bring it
    /// back. `0` = fresh; otherwise a witness `(copy, stripe)` cache
    /// key (packed, +1) naming a stripe whose write skipped the disk
    /// — the context [`StoreError::RebuildRequired`] reports. Atomic
    /// so the write path can set a marker under the shared state
    /// guard; markers are only *read and cleared* under the exclusive
    /// state guard, which orders them against transitions.
    pub(crate) stale: Vec<AtomicU64>,
}

impl World {
    pub(crate) fn new(
        layout: Arc<Layout>,
        pq_slots: Option<Vec<(usize, usize)>>,
        copies: usize,
    ) -> World {
        let smap = Arc::new(StripeMap::new(&layout, pq_slots.as_deref()));
        let stale = (0..layout.v()).map(|_| AtomicU64::new(0)).collect();
        World { layout, smap, pq_slots, copies, stale }
    }
}

/// The store's failure-epoch state: everything a failure transition
/// mutates, behind one `RwLock` so data-path operations pin a
/// consistent snapshot and transitions wait for in-flight I/O.
#[derive(Debug)]
pub(crate) struct ArrayState {
    /// The world traffic is currently served from (swapped only by a
    /// reshape commit, under the exclusive guard).
    pub(crate) world: Arc<World>,
    /// Logical disk → physical backend disk (spares swap in here).
    pub(crate) redirect: Vec<usize>,
    pub(crate) failed: FailureSet,
    /// An online rebuild in progress: `(logical disk, physical
    /// spare)`. While registered, writes that cannot land on the
    /// failed disk are written through to the spare.
    pub(crate) rebuilding: Option<(usize, usize)>,
    /// An online reshape in progress: while registered, every write
    /// additionally lands in the target world (see [`crate::reshape`])
    /// and rebuilds are refused.
    pub(crate) reshape: Option<Arc<ReshapeRuntime>>,
    /// Bumped on every failure-state transition (fail, restore,
    /// rebuild begin/complete/abort, reshape begin/commit) — an
    /// observable generation number for tests and monitoring.
    pub(crate) epoch: u64,
}

/// Where a deferred full-stripe unit write takes its bytes from: the
/// caller's data buffer or the plan's parity staging area, both
/// indexed in whole units. Packed into one word (high bit = parity)
/// so a plan bucket entry is 8 bytes, not 24 — the buckets are
/// written, scanned, and resolved once per planned unit, so their
/// footprint is hot-path memory traffic.
#[derive(Clone, Copy, Debug)]
pub(crate) struct WriteSrc(u32);

impl WriteSrc {
    const PARITY: u32 = 1 << 31;

    pub(crate) fn data(i: usize) -> WriteSrc {
        debug_assert!((i as u32) < Self::PARITY);
        WriteSrc(i as u32)
    }

    pub(crate) fn parity(i: usize) -> WriteSrc {
        debug_assert!((i as u32) < Self::PARITY);
        WriteSrc(i as u32 | Self::PARITY)
    }
}

/// The deferred full-stripe write plan: per-physical-disk buckets of
/// `(offset, source)` unit writes plus the parity staging buffer the
/// stripe accumulators live in. Sequential writes push offsets in
/// increasing order per disk, so flushing usually skips the sort.
#[derive(Debug)]
pub(crate) struct WritePlan {
    pub(crate) by_disk: Vec<Vec<(u32, WriteSrc)>>,
    pub(crate) parity: Vec<u8>,
    pub(crate) unsorted: bool,
}

impl WritePlan {
    pub(crate) fn new(disks: usize) -> WritePlan {
        WritePlan { by_disk: vec![Vec::new(); disks], parity: Vec::new(), unsorted: false }
    }

    /// A plan pre-sized for `stripes` full stripes of `units` total
    /// unit writes: the parity staging and the per-disk buckets are
    /// reserved up front, so planning a large batch never reallocates
    /// (the staging area in particular would otherwise regrow — and
    /// recopy — once per stripe).
    pub(crate) fn with_capacity(
        disks: usize,
        stripes: usize,
        units: usize,
        parity_unit_bytes: usize,
    ) -> Self {
        let per_disk = (units / disks.max(1)) + 2;
        WritePlan {
            by_disk: (0..disks).map(|_| Vec::with_capacity(per_disk)).collect(),
            parity: Vec::with_capacity(stripes * parity_unit_bytes),
            unsorted: false,
        }
    }

    /// Empties the plan, keeping its buckets' and staging area's
    /// capacity — cache flush loops plan one stripe at a time and
    /// reuse one plan across all of them.
    pub(crate) fn reset(&mut self) {
        for bucket in &mut self.by_disk {
            bucket.clear();
        }
        self.parity.clear();
        self.unsorted = false;
    }
}

/// Reusable decode buffers: one P accumulator, one Q accumulator, one
/// transfer buffer. Rebuild workers hold one per thread; the store's
/// data paths borrow them from a [`ScratchPool`].
#[derive(Debug)]
pub(crate) struct Scratch {
    pub(crate) acc_p: Vec<u8>,
    pub(crate) acc_q: Vec<u8>,
    pub(crate) tmp: Vec<u8>,
}

impl Scratch {
    pub(crate) fn new(unit_size: usize) -> Scratch {
        Scratch {
            acc_p: vec![0u8; unit_size],
            acc_q: vec![0u8; unit_size],
            tmp: vec![0u8; unit_size],
        }
    }

    /// The buffer a decode left a value in.
    pub(crate) fn decoded(&self, which: DecodedBuf) -> &[u8] {
        match which {
            DecodedBuf::P => &self.acc_p,
            DecodedBuf::Q => &self.acc_q,
        }
    }
}

/// A lock-free-enough pool of [`Scratch`] sets: steady-state reads and
/// writes check one out, use it, and return it, so no data-path
/// operation allocates after warm-up. Capped so a burst of concurrent
/// readers cannot pin unbounded memory.
#[derive(Debug)]
pub(crate) struct ScratchPool {
    unit_size: usize,
    pool: Mutex<Vec<Scratch>>,
}

impl ScratchPool {
    const CAP: usize = 16;

    fn new(unit_size: usize) -> ScratchPool {
        ScratchPool { unit_size, pool: Mutex::new(Vec::new()) }
    }

    pub(crate) fn get(&self) -> Scratch {
        self.pool.lock().unwrap().pop().unwrap_or_else(|| Scratch::new(self.unit_size))
    }

    pub(crate) fn put(&self, scratch: Scratch) {
        let mut pool = self.pool.lock().unwrap();
        if pool.len() < Self::CAP {
            pool.push(scratch);
        }
    }
}

/// A prefetched set of physical units: the rebuild workers list every
/// surviving stripe member a chunk of decodes will need, read each
/// disk's units in coalesced runs (one vectored backend call per run),
/// and then decode entirely from memory. Reused across chunks so the
/// steady-state rebuild loop is allocation-free.
#[derive(Debug, Default)]
pub(crate) struct UnitCache {
    /// `(physical disk, offset)` wanted keys; sorted by [`UnitCache::fill`].
    pub(crate) wants: Vec<(u32, u32)>,
    /// Unit payloads, index-aligned with `wants` after `fill`.
    data: Vec<u8>,
    unit_size: usize,
}

impl UnitCache {
    pub(crate) fn new() -> UnitCache {
        UnitCache::default()
    }

    pub(crate) fn push_want(&mut self, disk: u32, offset: u32) {
        self.wants.push((disk, offset));
    }

    /// Sorts the want-list and reads it in per-disk coalesced runs,
    /// with transient-fault retry per run.
    pub(crate) fn fill<B: Backend>(
        &mut self,
        backend: &B,
        unit_size: usize,
        integrity: &crate::integrity::Integrity,
    ) -> Result<(), StoreError> {
        self.unit_size = unit_size;
        self.wants.sort_unstable();
        debug_assert!(
            self.wants.windows(2).all(|w| w[0] != w[1]),
            "stripes never share units, so the want-list has no duplicates"
        );
        self.data.resize(self.wants.len() * unit_size, 0);
        let (wants, data) = (&self.wants, &mut self.data);
        let mut i = 0;
        while i < wants.len() {
            let (disk, offset) = wants[i];
            let mut j = i + 1;
            while j < wants.len() && wants[j] == (disk, offset + (j - i) as u32) {
                j += 1;
            }
            let span = &mut data[i * unit_size..j * unit_size];
            integrity.retrying(disk as usize, || {
                backend.read_units(disk as usize, offset as usize, &mut *span)
            })?;
            i = j;
        }
        Ok(())
    }

    /// [`UnitCache::fill`] through the async engine: submits every
    /// per-disk coalesced run at [`crate::engine::Priority`]
    /// `Maintenance` **before** waiting on any, so the whole
    /// prefetch band progresses on all touched disks at once (the
    /// rebuild/decode band-read pattern). Identical retry/health
    /// semantics — the engine workers run each call under the same
    /// integrity wrapper.
    pub(crate) fn fill_engine<B: Backend>(
        &mut self,
        eng: &crate::engine::Engine<B>,
        unit_size: usize,
    ) -> Result<(), StoreError> {
        use crate::engine::Priority;
        self.unit_size = unit_size;
        self.wants.sort_unstable();
        debug_assert!(
            self.wants.windows(2).all(|w| w[0] != w[1]),
            "stripes never share units, so the want-list has no duplicates"
        );
        self.data.resize(self.wants.len() * unit_size, 0);
        let wants = &self.wants;
        let mut runs: Vec<(usize, usize, crate::engine::Completion)> = Vec::new();
        let mut i = 0;
        while i < wants.len() {
            let (disk, offset) = wants[i];
            let mut j = i + 1;
            while j < wants.len() && wants[j] == (disk, offset + (j - i) as u32) {
                j += 1;
            }
            let c = eng.submit_read_units(
                disk as usize,
                offset as usize,
                j - i,
                Priority::Maintenance,
            )?;
            runs.push((i, j, c));
            i = j;
        }
        for (s, e, c) in runs {
            let bytes = c.wait()?;
            self.data[s * unit_size..e * unit_size].copy_from_slice(&bytes);
        }
        Ok(())
    }

    /// The `i`-th cached unit's bytes (index-aligned with `wants`).
    pub(crate) fn unit(&self, i: usize) -> &[u8] {
        &self.data[i * self.unit_size..(i + 1) * self.unit_size]
    }

    /// Copies the cached unit `(disk, offset)` into `out`.
    pub(crate) fn copy_to(&self, disk: u32, offset: u32, out: &mut [u8]) -> Result<(), StoreError> {
        let i = self.wants.binary_search(&(disk, offset)).map_err(|_| {
            StoreError::Corrupt(format!(
                "unit (disk {disk}, offset {offset}) missing from the rebuild read cache"
            ))
        })?;
        out.copy_from_slice(&self.data[i * self.unit_size..(i + 1) * self.unit_size]);
        Ok(())
    }
}

/// Outcome counters from replaying a [`Trace`] against the store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Read operations executed.
    pub reads: usize,
    /// Write operations executed.
    pub writes: usize,
    /// Blocks transferred by reads.
    pub blocks_read: usize,
    /// Blocks transferred by writes.
    pub blocks_written: usize,
    /// Disks failed by `Fail` events.
    pub disks_failed: usize,
    /// Disks restored by `Restore` events.
    pub disks_restored: usize,
    /// Rebuilds completed by `Rebuild` events.
    pub rebuilds: usize,
}

/// A parity-declustered block store over any layout and backend.
///
/// Logical addresses are data blocks of `unit_size` bytes, enumerated
/// in stripe order by the [`StripeMap`] and tiled down the disks for
/// arrays larger than one layout copy.
///
/// All operations — including writes — take `&self`: share a store
/// across threads with `std::thread::scope` or an `Arc` and issue
/// traffic from every thread at once. Synchronization is internal
/// (see the [module docs](self) for the locking model).
#[derive(Debug)]
pub struct BlockStore<B> {
    pub(crate) scheme: ParityScheme,
    /// The storage backend, shared with the optional async engine's
    /// worker threads (plain `Arc` deref on every synchronous call).
    pub(crate) backend: Arc<B>,
    pub(crate) unit_size: usize,
    /// Current world + redirect table + failure set + active rebuild
    /// and reshape, behind the epoch `RwLock` (see module docs).
    pub(crate) state: RwLock<ArrayState>,
    /// Store capacity in logical data blocks. Atomic because a
    /// reshape commit may raise it (never lower it) while readers
    /// check addresses against it lock-free.
    pub(crate) capacity: AtomicUsize,
    /// The stripe-sharded write lock table.
    pub(crate) locks: StripeLockTable,
    /// Reusable decode/accumulator buffers: steady-state reads and
    /// writes are allocation-free.
    pub(crate) scratch: ScratchPool,
    /// The write-back stripe cache (write-combining of small writes;
    /// inert under the default [`CachePolicy::WriteThrough`]). Shares
    /// the lock table's shard indexing, so a cache entry is only ever
    /// mutated under its stripe's exclusive shard lock.
    pub(crate) cache: StripeCache,
    /// The metrics registry (see [`crate::obs`] and the
    /// [module docs](self) "Observability" table).
    pub(crate) metrics: Metrics,
    /// Dispatch point for the optional structured-event sink.
    pub(crate) events: EventHub,
    /// Live-progress state of the registered rebuild, if any.
    pub(crate) rb_tracker: RebuildTracker,
    /// Durable-metadata writer installed by the file-store
    /// constructors: a reshape persists its migration checkpoints and
    /// the final committed geometry through this hook. `None` for
    /// memory-backed stores (nothing survives the process anyway).
    pub(crate) meta_persister: Option<MetaPersister>,
    /// End-to-end integrity state: the per-physical-unit checksum
    /// table, the transient-retry policy, the per-disk health
    /// monitor, and the global repair counters (see
    /// [`crate::integrity`]). Shared with the async engine's workers
    /// so queued I/O retries with identical policy and health
    /// accounting.
    pub(crate) integrity: Arc<Integrity>,
    /// The optional submit-and-complete I/O engine (see
    /// [`crate::engine`]): `None` until [`BlockStore::start_engine`].
    /// Behind an `RwLock` so hot paths can clone the `Arc` under a
    /// read lock; gated by the lock-free `engine_on` flag so the
    /// engine-off cost is one relaxed load.
    pub(crate) engine: RwLock<Option<Arc<crate::engine::Engine<B>>>>,
    /// Lock-free fast-path gate for [`BlockStore::engine`].
    pub(crate) engine_on: AtomicBool,
    /// The scrub position: stripes (global index across layout
    /// copies) already verified in the current pass, `0` when no pass
    /// is mid-flight. Checkpointed into [`StoreMeta`] (schema v4) by
    /// the scrubber so a crashed pass resumes where it stopped; reset
    /// by a reshape commit (the geometry it indexed is gone).
    pub(crate) scrub_cursor: AtomicU64,
    /// One scrub at a time (foreground or background) — see
    /// [`crate::scrub`].
    pub(crate) scrub_active: AtomicBool,
    /// Where the checksum-table sidecar lives for file-backed stores
    /// (`None` for memory stores). `flush` and scrub checkpoints
    /// persist it (base table plus an incremental dirty-entry log, see
    /// [`BlockStore::persist_sums`]) so a reopened store verifies
    /// against the sums it last made durable.
    pub(crate) sums_path: Option<std::path::PathBuf>,
    /// Background-maintenance scheduler state (reshape driver +
    /// continuous scrub), see [`crate::maintenance`].
    pub(crate) maint: MaintState,
    /// Serializes sidecar persists: `flush`, scrub checkpoints, and
    /// maintenance threads may all call [`BlockStore::persist_sums`]
    /// concurrently, and interleaved log appends would corrupt the
    /// record stream.
    pub(crate) sums_persist_lock: Mutex<()>,
    /// Bytes currently in the incremental sidecar log — drives the
    /// compaction heuristic.
    pub(crate) sums_log_len: AtomicU64,
    /// Forces the next [`BlockStore::persist_sums`] to rewrite the
    /// whole base table (set at build, after a geometry change, and
    /// when a log append fails).
    pub(crate) sums_full_rewrite: AtomicBool,
}

/// Signature of a metadata-persistence hook: atomically durably write
/// the given [`StoreMeta`], or fail the operation that needed it.
pub(crate) type MetaPersistFn = Box<dyn Fn(&StoreMeta) -> Result<(), StoreError> + Send + Sync>;

/// Boxed metadata-persistence hook (see [`BlockStore::meta_persister`]).
pub(crate) struct MetaPersister(pub(crate) MetaPersistFn);

impl fmt::Debug for MetaPersister {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("MetaPersister")
    }
}

impl<B: Backend> BlockStore<B> {
    /// Builds a single-parity (XOR) store over `backend`, using the
    /// layout's own parity units. The backend must have at least
    /// `layout.v()` disks (extras serve as spares) and a units-per-disk
    /// that is a nonzero multiple of `layout.size()` (whole layout
    /// copies).
    pub fn new(layout: Layout, backend: B) -> Result<Self, StoreError> {
        Self::build(layout, None, backend)
    }

    /// Builds a double-parity (P+Q) store over `backend`: every stripe
    /// carries the XOR parity P and the `GF(2^8)` Reed–Solomon parity Q
    /// at the slots chosen by `dp` (the generalized Theorem 14 flow),
    /// and the array tolerates any two concurrent disk failures.
    pub fn new_pq(dp: DoubleParityLayout, backend: B) -> Result<Self, StoreError> {
        let slots = dp.all_parity_slots().to_vec();
        Self::build(dp.layout().clone(), Some(slots), backend)
    }

    fn build(
        layout: Layout,
        pq_slots: Option<Vec<(usize, usize)>>,
        backend: B,
    ) -> Result<Self, StoreError> {
        Self::build_inner(layout, pq_slots, backend, None)
    }

    /// [`BlockStore::build`] for a store reopened **mid-reshape**: the
    /// backend is grown to the scratch geometry, so units-per-disk is
    /// larger than `copies × layout.size()` — the caller passes the
    /// source world's copy count explicitly and per-disk validation
    /// relaxes to "at least that many copies".
    pub(crate) fn build_resuming(
        layout: Layout,
        pq_slots: Option<Vec<(usize, usize)>>,
        backend: B,
        copies: usize,
    ) -> Result<Self, StoreError> {
        Self::build_inner(layout, pq_slots, backend, Some(copies))
    }

    fn build_inner(
        layout: Layout,
        pq_slots: Option<Vec<(usize, usize)>>,
        backend: B,
        copies_override: Option<usize>,
    ) -> Result<Self, StoreError> {
        let v = layout.v();
        if backend.disks() < v {
            return Err(StoreError::Geometry(format!(
                "layout spans {v} disks but backend has {}",
                backend.disks()
            )));
        }
        let per_disk = backend.units_per_disk();
        match copies_override {
            None if per_disk == 0 || !per_disk.is_multiple_of(layout.size()) => {
                return Err(StoreError::Geometry(format!(
                    "backend has {per_disk} units per disk, not a positive multiple of the \
                     layout size {}",
                    layout.size()
                )));
            }
            Some(c) if c == 0 || per_disk < c * layout.size() => {
                return Err(StoreError::Geometry(format!(
                    "backend has {per_disk} units per disk, fewer than the {c} resumed layout \
                     copies of size {} need",
                    layout.size()
                )));
            }
            _ => {}
        }
        if pq_slots.is_some() {
            // The Q coefficient of data slot j is g^j; slots must stay
            // below the generator's order for the coefficients (and the
            // two-erasure solve) to remain distinct.
            if let Some(bad) = layout.stripes().iter().position(|s| s.len() > 255) {
                return Err(StoreError::Geometry(format!(
                    "stripe {bad} has {} units; P+Q supports at most 255",
                    layout.stripes()[bad].len()
                )));
            }
        }
        let copies = copies_override.unwrap_or(per_disk / layout.size());
        let scheme = if pq_slots.is_some() { ParityScheme::PQ } else { ParityScheme::Xor };
        let unit_size = backend.unit_size();
        if unit_size == 0 {
            return Err(StoreError::Geometry("backend unit size is zero".into()));
        }
        // A durable backend may carry a logical→physical mapping from
        // rebuilds in a previous process lifetime; honor it, or reads
        // would hit the stale pre-rebuild disks.
        let redirect = match backend.load_mapping()? {
            Some(saved) => {
                let mut seen = vec![false; backend.disks()];
                if saved.len() != v {
                    return Err(StoreError::Corrupt(format!(
                        "persisted mapping covers {} disks, layout has {v}",
                        saved.len()
                    )));
                }
                for &p in &saved {
                    if p >= backend.disks() || seen[p] {
                        return Err(StoreError::Corrupt(format!(
                            "persisted mapping entry {p} is out of range or duplicated"
                        )));
                    }
                    seen[p] = true;
                }
                saved
            }
            None => (0..v).collect(),
        };
        let world = Arc::new(World::new(Arc::new(layout), pq_slots, copies));
        let capacity = copies * world.smap.data_units_per_copy();
        let integrity = Arc::new(Integrity::new(backend.disks(), per_disk));
        Ok(BlockStore {
            scheme,
            backend: Arc::new(backend),
            unit_size,
            state: RwLock::new(ArrayState {
                world,
                redirect,
                failed: FailureSet::new(),
                rebuilding: None,
                reshape: None,
                epoch: 0,
            }),
            capacity: AtomicUsize::new(capacity),
            locks: StripeLockTable::new(),
            scratch: ScratchPool::new(unit_size),
            cache: StripeCache::new(unit_size, StripeLockTable::SHARDS),
            metrics: Metrics::default(),
            events: EventHub::default(),
            rb_tracker: RebuildTracker::default(),
            meta_persister: None,
            integrity,
            scrub_cursor: AtomicU64::new(0),
            scrub_active: AtomicBool::new(false),
            sums_path: None,
            maint: MaintState::default(),
            sums_persist_lock: Mutex::new(()),
            sums_log_len: AtomicU64::new(0),
            sums_full_rewrite: AtomicBool::new(true),
            engine: RwLock::new(None),
            engine_on: AtomicBool::new(false),
        })
    }

    /// The layout this store declusters over (the *current* world's —
    /// a completed reshape swaps in the target layout).
    pub fn layout(&self) -> Arc<Layout> {
        self.state_read().world.layout.clone()
    }

    /// The parity scheme (and therefore the fault tolerance).
    pub fn scheme(&self) -> ParityScheme {
        self.scheme
    }

    /// Maximum number of concurrently failed disks the store survives.
    pub fn fault_tolerance(&self) -> usize {
        self.scheme.fault_tolerance()
    }

    /// The scheme-aware Condition-4 address map (the current world's).
    pub fn stripe_map(&self) -> Arc<StripeMap> {
        self.state_read().world.smap.clone()
    }

    /// The per-stripe `(P, Q)` slot pairs under [`ParityScheme::PQ`],
    /// `None` under XOR. This is the assignment persisted by
    /// [`crate::StoreMeta`] so a reopened store decodes with the exact
    /// parity placement it was created with.
    pub fn pq_parity_slots(&self) -> Option<Vec<(usize, usize)>> {
        self.state_read().world.pq_slots.clone()
    }

    /// The backend (e.g. to inspect IO counters).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Whether the async I/O engine is currently running.
    pub fn engine_running(&self) -> bool {
        self.engine_on.load(Ordering::Acquire)
    }

    /// The running engine, if any — the hot paths' dispatch gate.
    /// One relaxed load when the engine is off; a read-lock +
    /// `Arc` clone when on.
    #[inline]
    pub(crate) fn engine_if_on(&self) -> Option<Arc<crate::engine::Engine<B>>> {
        if !self.engine_on.load(Ordering::Relaxed) {
            return None;
        }
        self.engine.read().unwrap().clone()
    }

    /// Starts the submit-and-complete async I/O engine (see
    /// [`crate::engine`]): hot paths switch from issuing per-disk
    /// backend calls serially to submitting every per-disk span at
    /// once and overlapping completions with parity/decode compute.
    /// Replaces a previously running engine (which is drained
    /// first). The `'static` bound is what lets the engine's worker
    /// threads share the backend beyond any caller's stack frame.
    pub fn start_engine(&self, cfg: crate::engine::EngineConfig)
    where
        B: Send + Sync + 'static,
    {
        let eng = crate::engine::Engine::start(
            Arc::clone(&self.backend),
            Arc::clone(&self.integrity),
            cfg,
        );
        let old = self.engine.write().unwrap().replace(eng);
        self.engine_on.store(true, Ordering::Release);
        if let Some(old) = old {
            old.stop();
        }
    }

    /// Stops the async engine (if running): drains its queues, joins
    /// the workers, and returns the store to fully synchronous
    /// backend calls. Idempotent.
    pub fn stop_engine(&self) {
        self.engine_on.store(false, Ordering::Release);
        let eng = self.engine.write().unwrap().take();
        if let Some(eng) = eng {
            eng.stop();
        }
    }

    /// Bytes per logical block.
    pub fn unit_size(&self) -> usize {
        self.unit_size
    }

    /// Layout copies tiled down the disks (the current world's).
    pub fn copies(&self) -> usize {
        self.state_read().world.copies
    }

    /// Store capacity in logical data blocks. Never shrinks; a
    /// completed `add_disks` reshape raises it.
    pub fn blocks(&self) -> usize {
        self.capacity.load(Ordering::Acquire)
    }

    /// Number of logical disks (the current layout's `v`).
    pub fn v(&self) -> usize {
        self.state_read().world.layout.v()
    }

    pub(crate) fn state_read(&self) -> RwLockReadGuard<'_, ArrayState> {
        self.state.read().unwrap()
    }

    pub(crate) fn state_write(&self) -> RwLockWriteGuard<'_, ArrayState> {
        self.state.write().unwrap()
    }

    /// The currently failed logical disks, ascending (a snapshot; the
    /// set may change the moment this returns if other threads fail
    /// or rebuild disks).
    pub fn failed_disks(&self) -> FailureSet {
        self.state_read().failed.clone()
    }

    /// The lowest-numbered currently failed logical disk, if any.
    pub fn failed_disk(&self) -> Option<usize> {
        self.state_read().failed.first()
    }

    /// True when at least one disk is failed and not yet rebuilt.
    pub fn is_degraded(&self) -> bool {
        !self.state_read().failed.is_empty()
    }

    /// Physical backend disk currently serving logical disk `d`.
    pub fn physical_disk(&self, d: usize) -> usize {
        self.state_read().redirect[d]
    }

    /// The failure-state generation: bumped by every `fail_disk`,
    /// `restore_disk`, and rebuild begin/complete/abort. Two equal
    /// observations bracket a window with no failure transition.
    pub fn epoch(&self) -> u64 {
        self.state_read().epoch
    }

    /// The rebuild currently registered against live traffic, as
    /// `(logical disk, physical spare)` — `None` when no rebuild is
    /// running.
    pub fn rebuilding(&self) -> Option<(usize, usize)> {
        self.state_read().rebuilding
    }

    /// Marks `disk`'s medium stale: a write to `(copy, stripe)`
    /// skipped (or wrote through past) one of its units while it was
    /// failed. The stripe is kept as the witness
    /// [`StoreError::RebuildRequired`] reports (last writer wins —
    /// any skipping stripe is a valid witness). Set under the shared
    /// state guard; read/cleared only under the exclusive one.
    fn mark_stale(&self, st: &ArrayState, disk: usize, copy: usize, stripe: usize) {
        st.world.stale[disk].store(stripe_key(copy, stripe) + 1, Ordering::Release);
    }

    /// The physical spare that writes to failed disk `disk` must be
    /// written through to — `Some` only while a rebuild of exactly
    /// that disk is registered. Values written through are either
    /// overwritten later by the rebuild's own decode of the stripe
    /// (not-yet-rebuilt region: both produce the same post-write
    /// bytes, serialized by the stripe lock) or land on an
    /// already-reconstructed unit (keeping it fresh) — so the spare
    /// is bit-exact at completion either way.
    fn spare_for(st: &ArrayState, disk: usize) -> Option<usize> {
        st.rebuilding.and_then(|(d, spare)| (d == disk).then_some(spare))
    }

    /// Registers a rebuild of `failed` onto physical `spare`,
    /// validating both under the exclusive state guard (so two
    /// rebuilds cannot race each other, and the spare cannot be
    /// concurrently mapped). Pairs with `complete_rebuild` or
    /// `abort_rebuild`.
    pub(crate) fn begin_rebuild(&self, failed: usize, spare: usize) -> Result<(), StoreError> {
        let mut st = self.state_write();
        if let Some((d, _)) = st.rebuilding {
            return Err(StoreError::RebuildInProgress(d));
        }
        if st.reshape.is_some() {
            return Err(StoreError::ReshapeInProgress);
        }
        if !st.failed.contains(failed) {
            return Err(StoreError::NotFailed(failed));
        }
        if spare >= self.backend.disks() || st.redirect.contains(&spare) {
            return Err(StoreError::InvalidSpare(spare));
        }
        // Flush-before-transition: the rebuild's chunk decodes assume
        // the backend holds every acknowledged write of the pre-
        // registration era; writes issued *after* registration are
        // either flushed through the write-through path or reconciled
        // by the post-completion flush.
        self.flush_cache_locked(&st)?;
        st.rebuilding = Some((failed, spare));
        st.epoch += 1;
        // Arm live progress: units-per-disk to reconstruct, and the
        // per-logical-disk read counts to diff against (the rebuild's
        // read-distribution baseline).
        let baseline =
            (0..st.world.layout.v()).map(|d| self.backend.read_count(st.redirect[d])).collect();
        self.rb_tracker.start(failed, spare, self.backend.units_per_disk() as u64, baseline);
        self.events.emit(|| Event::RebuildBegan {
            disk: failed as u32,
            spare: spare as u32,
            epoch: st.epoch,
        });
        Ok(())
    }

    /// Unregisters a failed rebuild attempt; the store stays degraded.
    pub(crate) fn abort_rebuild(&self) {
        let mut st = self.state_write();
        st.rebuilding = None;
        st.epoch += 1;
        self.rb_tracker.finish();
        self.events.emit(|| Event::RebuildAborted { epoch: st.epoch });
    }

    pub(crate) fn complete_rebuild(&self, failed: usize, spare: usize) -> Result<(), StoreError> {
        let mut st = self.state_write();
        debug_assert_eq!(st.rebuilding, Some((failed, spare)), "completion matches registration");
        st.redirect[failed] = spare;
        st.failed.remove(failed);
        st.rebuilding = None;
        st.epoch += 1;
        self.rb_tracker.finish();
        // The degraded window this rebuild serviced closes here (or
        // steps down from two erasures to one).
        self.metrics.degraded_transition(
            st.failed.len() + 1,
            st.failed.len(),
            self.metrics.total_ops(),
        );
        self.events.emit(|| Event::RebuildCompleted {
            disk: failed as u32,
            spare: spare as u32,
            epoch: st.epoch,
        });
        // The spare carries a full reconstruction (plus any writes
        // written through while it raced traffic): the medium is
        // fresh again.
        st.world.stale[failed].store(0, Ordering::Release);
        // Durable backends record the new mapping so a reopened store
        // reads the spare, not the stale failed disk. Persisted under
        // the exclusive guard: no in-flight op can observe the new
        // redirect before it is durable.
        self.backend.persist_mapping(&st.redirect)
    }

    /// Marks a logical disk failed. Subsequent reads of its units are
    /// served degraded (reconstructed from surviving stripe members);
    /// writes keep all surviving parity consistent so no data is lost.
    /// At most [`BlockStore::fault_tolerance`] disks may be failed at a
    /// time; re-failing an already-failed disk is
    /// [`StoreError::AlreadyFailed`].
    ///
    /// Takes the exclusive state guard, so it **waits for in-flight
    /// I/O to drain** and no operation ever observes a half-applied
    /// failure. Error paths mutate nothing: in particular the
    /// per-disk I/O counters ([`BlockStore::read_counts`]/
    /// [`BlockStore::write_counts`]) are untouched by failure events,
    /// successful or not — counters only move when units move.
    pub fn fail_disk(&self, disk: usize) -> Result<(), StoreError> {
        let mut st = self.state_write();
        if disk >= st.world.layout.v() {
            return Err(StoreError::OutOfRange { disk, offset: 0 });
        }
        if st.failed.contains(disk) {
            return Err(StoreError::AlreadyFailed(disk));
        }
        let tolerance = self.scheme.fault_tolerance();
        if st.failed.len() >= tolerance {
            return Err(StoreError::TooManyFailures { requested: disk, tolerance });
        }
        // Flush-before-transition: every write acknowledged before
        // this failure becomes durable on the still-current media,
        // under the exclusive guard (no client I/O in flight). Error
        // paths above flush nothing.
        self.flush_cache_locked(&st)?;
        st.failed.insert(disk);
        st.epoch += 1;
        self.metrics.degraded_transition(
            st.failed.len() - 1,
            st.failed.len(),
            self.metrics.total_ops(),
        );
        self.events.emit(|| Event::DiskFailed { disk: disk as u32, epoch: st.epoch });
        Ok(())
    }

    /// Clears a *transient* failure: marks `disk` healthy again without
    /// a rebuild. The disk's stored bytes must be exactly as they were
    /// at the moment of failure (nothing is re-synced) — use a
    /// [`crate::Rebuilder`] if the medium was lost or wiped. If any
    /// write skipped a unit on the disk while it was failed, its
    /// medium is stale relative to the parity equations and restoring
    /// it is refused ([`StoreError::RebuildRequired`]); while a
    /// rebuild of the disk is running, restoring is refused too
    /// ([`StoreError::RebuildInProgress`]). Error paths leave the
    /// failure state and the I/O counters untouched.
    pub fn restore_disk(&self, disk: usize) -> Result<(), StoreError> {
        let mut st = self.state_write();
        if disk >= st.world.layout.v() {
            return Err(StoreError::OutOfRange { disk, offset: 0 });
        }
        if !st.failed.contains(disk) {
            return Err(StoreError::NotFailed(disk));
        }
        if let Some((d, _)) = st.rebuilding {
            if d == disk {
                return Err(StoreError::RebuildInProgress(disk));
            }
        }
        // Flush-before-transition, and *before* the stale check: a
        // deferred write whose stripe crosses this disk must skip it
        // (marking the medium stale) exactly as a write-through write
        // would have — so restore is refused for the same histories.
        self.flush_cache_locked(&st)?;
        // Stale markers are only read under the exclusive guard, which
        // orders this load after every write that could have set one.
        let stale = st.world.stale[disk].load(Ordering::Acquire);
        if stale != 0 {
            let (copy, stripe) = key_parts(stale - 1);
            return Err(StoreError::RebuildRequired { disk, copy, stripe });
        }
        st.failed.remove(disk);
        st.epoch += 1;
        self.metrics.degraded_transition(
            st.failed.len() + 1,
            st.failed.len(),
            self.metrics.total_ops(),
        );
        self.events.emit(|| Event::DiskRestored { disk: disk as u32, epoch: st.epoch });
        Ok(())
    }

    /// Per-logical-disk units read since the last counter reset.
    ///
    /// Counters are per-disk atomics maintained by the backend: they
    /// increase monotonically under concurrent traffic and across
    /// failure events (`fail_disk`/`restore_disk` never touch them),
    /// and only [`BlockStore::reset_counters`] moves them down.
    pub fn read_counts(&self) -> Vec<u64> {
        let st = self.state_read();
        (0..st.world.layout.v()).map(|d| self.backend.read_count(st.redirect[d])).collect()
    }

    /// Per-logical-disk units written since the last counter reset
    /// (same monotonicity contract as [`BlockStore::read_counts`]).
    pub fn write_counts(&self) -> Vec<u64> {
        let st = self.state_read();
        (0..st.world.layout.v()).map(|d| self.backend.write_count(st.redirect[d])).collect()
    }

    /// Zeroes the backend IO counters. Each per-disk counter is an
    /// atomic store, so a reset concurrent with live traffic is safe;
    /// it is **not** a single linearization point across disks —
    /// in-flight operations may land increments on some disks after
    /// their reset and before others'. Quiesce traffic first when an
    /// exact all-zero snapshot matters (as the accounting tests do).
    pub fn reset_counters(&self) {
        self.backend.reset_counters();
    }

    /// The store's metrics registry — per-op-kind counters, sampled
    /// latency histograms, the recent read/write mix, and the
    /// degraded-window clock. Always on; disable with
    /// [`Metrics::set_enabled`] to measure the registry's own cost.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Installs (or, with `None`, removes) the structured-event sink.
    /// While a sink is installed every public op emits
    /// `OpBegin`/`OpEnd` spans (forcing per-op timing) and the
    /// failure/rebuild/cache events of the [module docs](self) table;
    /// with no sink the data path pays one relaxed load. The bundled
    /// sink is [`crate::TraceLog`]; tests plug in their own.
    pub fn set_event_sink(&self, sink: Option<Arc<dyn EventSink>>) {
        self.events.set(sink);
    }

    /// Enables or disables checksum verification (on by default).
    /// Off, reads skip hashing and writes skip recording — the
    /// integrity-overhead control the benches measure against.
    pub fn set_checksums_enabled(&self, on: bool) {
        self.integrity.verify.store(on, Ordering::Relaxed);
    }

    /// Whether per-unit checksums are verified on read and recorded
    /// on write.
    pub fn checksums_enabled(&self) -> bool {
        self.integrity.verifying()
    }

    /// Sets the disk-health auto-fail threshold: a physical disk
    /// whose `hard errors + checksum repairs` score reaches `n` is
    /// queued and auto-failed at the next operation epilogue, handing
    /// it to the ordinary rebuild machinery. `0` (the default)
    /// disables the policy.
    pub fn set_health_threshold(&self, n: u64) {
        self.integrity.health.set_threshold(n);
    }

    /// Sets the *rate-based* disk-health auto-fail policy: a physical
    /// disk accumulating `threshold` recent errors (hard errors +
    /// checksum repairs, decaying by half every `window_ms`
    /// milliseconds) is queued and auto-failed at the next operation
    /// epilogue — a predictive complement to the cumulative
    /// [`BlockStore::set_health_threshold`]: an error *burst* trips
    /// it while the same count spread over a long window does not.
    /// `threshold == 0` (the default) disables it.
    pub fn set_health_rate_policy(&self, threshold: u64, window_ms: u64) {
        self.integrity.health.set_rate_policy(threshold, window_ms);
    }

    /// Installs the transient-error retry policy applied around every
    /// backend call the store issues.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        self.integrity.max_retries.store(policy.max_retries, Ordering::Relaxed);
        self.integrity.backoff_us.store(policy.backoff_us, Ordering::Relaxed);
    }

    /// The installed [`RetryPolicy`].
    pub fn retry_policy(&self) -> RetryPolicy {
        self.integrity.retry_policy()
    }

    /// Applies queued auto-fail decisions from the health monitor.
    /// Runs at operation epilogues **after every guard is dropped**:
    /// the counters that queued the disk were bumped under the shared
    /// state guard, while `fail_disk` needs it exclusively — calling
    /// this with any state guard held would self-deadlock.
    pub(crate) fn apply_pending_health(&self) {
        for pd in self.integrity.health.take_pending() {
            // Map the physical disk back to its logical slot; a disk
            // no longer mapped (already swapped out for a spare) has
            // nothing left to fail.
            let logical = {
                let st = self.state_read();
                st.redirect.iter().position(|&p| p == pd)
            };
            let Some(d) = logical else { continue };
            match self.fail_disk(d) {
                Ok(()) => {
                    self.integrity.health.note_auto_failed(pd);
                    let score = self.integrity.health.score(pd);
                    self.events.emit(|| Event::DiskAutoFailed { disk: pd as u32, score });
                }
                // Someone (or an earlier epilogue) beat us to it.
                Err(StoreError::AlreadyFailed(_)) => {}
                // Cannot fail it *now* (reshape running, failure
                // budget exhausted, flush error): keep it queued and
                // retry at a later epilogue.
                Err(_) => self.integrity.health.requeue(pd),
            }
        }
    }

    /// Live progress of the registered rebuild — units done/total,
    /// ETA from the moving rate, and the per-surviving-disk read
    /// distribution (so the paper's `(k−1)/(v−1)` claim is observable
    /// *while* the rebuild races traffic). `None` when no rebuild is
    /// running.
    pub fn rebuild_progress(&self) -> Option<RebuildProgress> {
        let reads = self.read_counts();
        self.rb_tracker.progress(&reads)
    }

    /// A point-in-time [`StatsSnapshot`] of everything the store
    /// measures: per-op-kind counters and histograms, per-logical-disk
    /// backend I/O, cache statistics, degraded-window accounting
    /// (including the currently open window), lock contention, the
    /// failure epoch, and live rebuild progress. Safe to call from
    /// any thread at any time; under concurrent traffic each counter
    /// is exact but the set is not one linearization point.
    pub fn stats(&self) -> StatsSnapshot {
        let (ops, degraded, lock_contention) = self.metrics.snapshot();
        let st = self.state_read();
        let disks = (0..st.world.layout.v())
            .map(|d| {
                let p = st.redirect[d];
                DiskStatSnapshot {
                    disk: d,
                    read_units: self.backend.read_count(p),
                    write_units: self.backend.write_count(p),
                    read_calls: self.backend.read_calls(p),
                    write_calls: self.backend.write_calls(p),
                }
            })
            .collect();
        let epoch = st.epoch;
        let reshape = st.reshape.as_ref().map(|rs| rs.progress_snapshot());
        drop(st);
        let mut cache = self.cache.stats_snapshot();
        cache.bypassed_writes = self.metrics.bypassed_writes();
        let mut integrity = self.integrity.snapshot();
        integrity.scrub_cursor = self.scrub_cursor.load(Ordering::Relaxed);
        StatsSnapshot {
            ops,
            disks,
            cache,
            degraded,
            lock_contention,
            epoch,
            rebuild: self.rebuild_progress(),
            reshape,
            integrity,
            maintenance: self.maint.snapshot(),
            engine: self.engine_if_on().map(|e| e.snapshot()),
        }
    }

    /// Flushes the write-back stripe cache (combined parity updates,
    /// see [`crate::cache`]) and then the backend, so every
    /// acknowledged write is durable on return.
    pub fn flush(&self) -> Result<(), StoreError> {
        {
            let st = self.state_read();
            self.flush_cache_locked(&st)?;
        }
        self.backend.flush()?;
        self.persist_sums()
    }

    /// Restores the scrub position saved in a version-4 [`StoreMeta`]
    /// so the next scrub pass resumes where the crashed one stopped.
    pub(crate) fn restore_scrub_state(&mut self, cursor: u64, passes: u64) {
        self.scrub_cursor.store(cursor, Ordering::Release);
        self.integrity.scrub_passes.store(passes, Ordering::Release);
    }

    /// Seeds the checksum table from a serialized sidecar (see
    /// [`crate::meta::SUMS_FILE`]). Malformed or geometry-mismatched
    /// bytes are ignored — the table simply stays unset and fills
    /// back in as units are written. Returns whether the bytes were
    /// accepted, so the opener knows if incremental persistence may
    /// build on the base table.
    pub(crate) fn load_checksums(&self, bytes: &[u8]) -> bool {
        self.integrity.sums.load_bytes(bytes)
    }

    /// Magic prefix of one incremental sidecar-log record.
    pub(crate) const SUMS_LOG_MAGIC: &'static [u8; 4] = b"PSL1";

    /// Persists the checksum-table sidecar, when one is configured
    /// and verification is on. Called from [`BlockStore::flush`] and
    /// from scrub checkpoints.
    ///
    /// Rather than rewriting the whole table every time (continuous
    /// scrubbing would turn that into continuous full-table
    /// rewrites), entries dirtied since the last persist are appended
    /// as one self-checksummed record to an adjacent log file
    /// (`checksums.log`): `"PSL1" + disks u32 + units u32 + count
    /// u32 + count × (disk u32, offset u32, sum u64) +
    /// xxh64(entries)`.
    /// The base table is fully rewritten (tmp + rename, then the log
    /// is discarded) only when forced — first persist, geometry
    /// change, failed append — or when the log outgrows half the base
    /// size (compaction). A torn tail from a crash mid-append is
    /// detected on replay by the record checksum and ignored; sums
    /// are best-effort and self-heal through read-repair.
    pub(crate) fn persist_sums(&self) -> Result<(), StoreError> {
        let Some(path) = &self.sums_path else {
            return Ok(());
        };
        if !self.integrity.verifying() {
            return Ok(());
        }
        let _serial = self.sums_persist_lock.lock().unwrap_or_else(|e| e.into_inner());
        let (disks, units) = self.integrity.sums.geometry();
        let base_len = 24 + (disks * units * 8) as u64;
        let log_path = path.with_extension("log");
        let full = self.sums_full_rewrite.swap(false, Ordering::AcqRel)
            || self.sums_log_len.load(Ordering::Acquire) > base_len / 2;
        if full {
            // Drain (and discard) the dirty set first: everything it
            // covers is in the table we are about to write whole.
            self.integrity.sums.drain_dirty(|_, _, _| {});
            let res: Result<(), StoreError> = (|| {
                let tmp = path.with_extension("bin.tmp");
                std::fs::write(&tmp, self.integrity.sums.to_bytes())?;
                std::fs::rename(&tmp, path)?;
                // Remove the now-stale log *after* the base rename: a
                // crash between the two leaves a log whose replay is
                // idempotent over the new base.
                match std::fs::remove_file(&log_path) {
                    Err(e) if e.kind() != std::io::ErrorKind::NotFound => return Err(e.into()),
                    _ => {}
                }
                self.sums_log_len.store(0, Ordering::Release);
                Ok(())
            })();
            if res.is_err() {
                self.sums_full_rewrite.store(true, Ordering::Release);
            }
            return res;
        }
        let mut entries = Vec::new();
        let mut count = 0u32;
        self.integrity.sums.drain_dirty(|d, o, s| {
            entries.extend_from_slice(&(d as u32).to_le_bytes());
            entries.extend_from_slice(&(o as u32).to_le_bytes());
            entries.extend_from_slice(&s.to_le_bytes());
            count += 1;
        });
        if count == 0 {
            return Ok(());
        }
        let mut rec = Vec::with_capacity(16 + entries.len() + 8);
        rec.extend_from_slice(Self::SUMS_LOG_MAGIC);
        rec.extend_from_slice(&(disks as u32).to_le_bytes());
        rec.extend_from_slice(&(units as u32).to_le_bytes());
        rec.extend_from_slice(&count.to_le_bytes());
        rec.extend_from_slice(&entries);
        rec.extend_from_slice(
            &ChecksumTable::encode(xxh64(ChecksumTable::SEED, &entries)).to_le_bytes(),
        );
        let res: Result<(), StoreError> = (|| {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new().create(true).append(true).open(&log_path)?;
            f.write_all(&rec)?;
            f.sync_data()?;
            Ok(())
        })();
        match res {
            Ok(()) => {
                self.sums_log_len.fetch_add(rec.len() as u64, Ordering::AcqRel);
                Ok(())
            }
            Err(e) => {
                // The drained entries may be half-appended; force the
                // next persist to re-establish a clean base.
                self.sums_full_rewrite.store(true, Ordering::Release);
                Err(e)
            }
        }
    }

    /// Replays an incremental sidecar log (see
    /// [`BlockStore::persist_sums`]) over the already-loaded base
    /// table, returning the number of bytes consumed. Stops — without
    /// erroring — at the first malformed or checksum-failing record
    /// (a torn tail from a crash mid-append); records whose geometry
    /// header disagrees with the current table (written before a
    /// reshape changed the world) are skipped, not applied.
    pub(crate) fn replay_sums_log(&self, bytes: &[u8]) -> usize {
        let (disks, units) = self.integrity.sums.geometry();
        let mut at = 0usize;
        while bytes.len() - at >= 24 {
            let rec = &bytes[at..];
            if &rec[..4] != Self::SUMS_LOG_MAGIC {
                break;
            }
            let rd32 = |b: &[u8]| u32::from_le_bytes(b[..4].try_into().unwrap());
            let count = rd32(&rec[12..]) as usize;
            let body_end = 16 + count * 16;
            if rec.len() < body_end + 8 {
                break;
            }
            let entries = &rec[16..body_end];
            let want = u64::from_le_bytes(rec[body_end..body_end + 8].try_into().unwrap());
            if ChecksumTable::encode(xxh64(ChecksumTable::SEED, entries)) != want {
                break;
            }
            let geometry_ok =
                rd32(&rec[4..]) as usize == disks && rd32(&rec[8..]) as usize == units;
            if geometry_ok {
                for e in entries.chunks_exact(16) {
                    let d = rd32(e) as usize;
                    let o = rd32(&e[4..]) as usize;
                    let s = u64::from_le_bytes(e[8..16].try_into().unwrap());
                    self.integrity.sums.set_raw(d, o, s);
                }
            }
            at += body_end + 8;
        }
        at
    }

    /// The installed [`CachePolicy`].
    pub fn cache_policy(&self) -> CachePolicy {
        self.cache.policy()
    }

    /// Installs a [`CachePolicy`]. Switching write-back **off**
    /// flushes every dirty stripe first, so no cached write is
    /// stranded; switching it on takes effect immediately.
    pub fn set_cache_policy(&self, policy: CachePolicy) -> Result<(), StoreError> {
        self.cache.set_policy(policy);
        if !policy.is_write_back() {
            let st = self.state_read();
            self.flush_cache_locked(&st)?;
        }
        Ok(())
    }

    /// Stripes currently dirty in the write-back cache (0 under
    /// write-through).
    pub fn dirty_cache_stripes(&self) -> usize {
        self.cache.dirty_stripes()
    }

    /// The cache coordinates of a resolved address: `(shard, packed
    /// key, data-slot index within the stripe's cache entry, data
    /// units in the stripe)`. Shard ids are the lock table's, so the
    /// cache is sharded by the same `(copy, stripe)` key as the
    /// stripe locks.
    fn cache_coords(
        &self,
        st: &ArrayState,
        m: &AddrRef,
        addr: usize,
    ) -> (usize, u64, usize, usize) {
        let (lo, k_data) = st.world.smap.stripe_data_range(m.stripe);
        let j = addr - m.copy * st.world.smap.data_units_per_copy() - lo;
        (self.locks.shard_of(m.copy, m.stripe), stripe_key(m.copy, m.stripe), j, k_data)
    }

    /// Stripes a full cache drain flushes under one ordered shard
    /// acquisition (and one combined write plan).
    const FLUSH_BATCH: usize = 128;

    /// Drains every stripe that was dirty **when the flush began**,
    /// in batches of [`Self::FLUSH_BATCH`] **address-sorted**
    /// stripes: fully dirty stripes accumulate into one combined
    /// write plan, so adjacent hot stripes coalesce into per-disk
    /// gather writes instead of one backend call per unit. The drain
    /// is bounded by the queue length at entry — stripes dirtied by
    /// writers racing the flush stay queued for the next one, so a
    /// flush under sustained write-back traffic terminates. The
    /// caller holds a state guard — shared for explicit flushes,
    /// **exclusive** inside failure-state transitions, where no
    /// client I/O is in flight (and the drain is therefore complete,
    /// not just a snapshot).
    pub(crate) fn flush_cache_locked(&self, st: &ArrayState) -> Result<(), StoreError> {
        if !self.cache.maybe_dirty() {
            return Ok(());
        }
        let mut budget = self.cache.queue_len();
        let mut snap = FlushSnapshot::default();
        let mut plan = WritePlan::new(self.backend.disks());
        let mut staged: Vec<u8> = Vec::new();
        let mut keys: Vec<u64> = Vec::with_capacity(Self::FLUSH_BATCH);
        while budget > 0 {
            keys.clear();
            while keys.len() < Self::FLUSH_BATCH.min(budget) {
                match self.cache.pop_dirty() {
                    Some(k) => keys.push(k),
                    None => break,
                }
            }
            if keys.is_empty() {
                return Ok(());
            }
            budget -= keys.len();
            // Address order: the packed key sorts by (copy, stripe),
            // which is physical-offset order per disk — the flush
            // walks the media sequentially.
            keys.sort_unstable();
            keys.dedup();
            self.flush_batch(st, &keys, &mut snap, &mut plan, &mut staged)?;
        }
        Ok(())
    }

    /// Flushes one sorted batch of cached stripes under a single
    /// two-phase ordered shard acquisition. Fully dirty stripes plan
    /// into one combined gather plan (flushed at the end, entries
    /// removed after the backend writes land); partially dirty and
    /// degraded stripes take their per-stripe paths inline. On error
    /// every key of the batch is re-queued — already-flushed entries
    /// are gone and skip harmlessly on the retry.
    fn flush_batch(
        &self,
        st: &ArrayState,
        keys: &[u64],
        snap: &mut FlushSnapshot,
        plan: &mut WritePlan,
        staged: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        let mut shards: Vec<usize> = keys
            .iter()
            .map(|&k| {
                let (copy, si) = key_parts(k);
                self.locks.shard_of(copy, si)
            })
            .collect();
        sort_shard_set(&mut shards);
        let _guards = self.locks.lock_sorted(&shards);
        self.flush_batch_locked(st, keys, snap, plan, staged)
    }

    /// [`BlockStore::flush_batch`] with the batch's shard locks
    /// **already held** by the caller — the reshape migration flushes
    /// covered stripes under the exclusive shard locks it holds for
    /// the whole batch copy.
    pub(crate) fn flush_batch_locked(
        &self,
        st: &ArrayState,
        keys: &[u64],
        snap: &mut FlushSnapshot,
        plan: &mut WritePlan,
        staged: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        plan.reset();
        staged.clear();
        let us = self.unit_size;
        let t0 = Instant::now();
        let mut flushed_stripes = 0u32;
        let mut flushed_units = 0u32;
        let mut planned: Vec<u64> = Vec::new();
        let res = (|| -> Result<(), StoreError> {
            for &key in keys {
                let (copy, si) = key_parts(key);
                let shard = self.locks.shard_of(copy, si);
                // The entry's data units land in `staged` at `base`
                // (one copy, entry left in place for readers); the
                // plan records indices into `staged`, so later
                // appends never invalidate earlier planning.
                let base = staged.len() / us;
                if !self.cache.snapshot_append(shard, key, snap, staged) {
                    continue; // discarded by a full-stripe overwrite
                }
                flushed_stripes += 1;
                flushed_units += snap.ndirty as u32;
                let (lo, k_data) = st.world.smap.stripe_data_range(si);
                let start = copy * st.world.smap.data_units_per_copy() + lo;
                let stripe_bytes = &staged[base * us..(base + k_data) * us];
                if snap.ndirty == k_data {
                    // Fully dirty: zero-read full-stripe planning into
                    // the combined plan.
                    self.plan_full_stripe(st, start, stripe_bytes, base, plan)?;
                    planned.push(key);
                } else if st.world.layout.stripes()[si]
                    .units()
                    .iter()
                    .any(|u| st.failed.contains(u.disk as usize))
                {
                    // Degraded stripe: the per-unit path keeps every
                    // surviving parity consistent, marks stale media,
                    // and writes through to a racing rebuild's spare.
                    // Units flush in ascending address order, so a
                    // second lost unit decoded by a later iteration
                    // sees the values earlier iterations already
                    // folded into parity.
                    (0..k_data).filter(|&j| snap.dirty[j]).try_for_each(|j| {
                        self.write_block_locked(st, start + j, &stripe_bytes[j * us..(j + 1) * us])
                    })?;
                    self.cache.remove_flushed(shard, key);
                } else {
                    // A clean unit failing its checksum would fold
                    // corrupt bytes into the recomputed parity:
                    // repair the stripe (the shard lock is held
                    // exclusive) and retry the flush once.
                    match self.flush_partial_stripe(st, si, copy, start, snap, stripe_bytes) {
                        Err(StoreError::ChecksumMismatch { .. }) => {
                            self.repair_stripe_locked(st, copy, si)?;
                            self.flush_partial_stripe(st, si, copy, start, snap, stripe_bytes)?;
                        }
                        r => r?,
                    }
                    self.cache.remove_flushed(shard, key);
                }
            }
            self.flush_write_plan(plan, staged)?;
            for &key in &planned {
                let (copy, si) = key_parts(key);
                self.cache.remove_flushed(self.locks.shard_of(copy, si), key);
            }
            Ok(())
        })();
        if res.is_err() {
            for &key in keys {
                self.cache.requeue(key);
            }
        } else if flushed_stripes > 0 {
            self.cache.note_flush(flushed_stripes as u64, flushed_units as u64);
            self.metrics.record_op(
                OpKind::CacheFlush,
                flushed_units as u64,
                t0.elapsed().as_nanos() as u64,
            );
            self.events.emit(|| Event::CacheFlush {
                stripes: flushed_stripes,
                dirty_units: flushed_units,
            });
        }
        res
    }

    /// Most victim stripes one write evicts — enough to outpace the
    /// single stripe a write can dirty, while bounding any one
    /// caller's eviction work when many writers push the cache over
    /// budget at once.
    const EVICT_MAX: usize = 8;

    /// Oldest-first eviction until the dirty count is back under the
    /// write-back budget (or this call's [`Self::EVICT_MAX`] work
    /// bound is spent — backpressure is shared across writers, not
    /// absorbed by whoever shows up first). Runs on the write path
    /// **after** the triggering stripe's shard lock is released —
    /// one victim stripe is flushed at a time, so eviction never
    /// holds two shard locks and cannot deadlock with concurrent
    /// writers.
    fn evict_over_limit(&self, st: &ArrayState) -> Result<(), StoreError> {
        if !self.cache.over_limit() {
            return Ok(());
        }
        let mut snap = FlushSnapshot::default();
        let mut plan = WritePlan::new(self.backend.disks());
        let mut staged: Vec<u8> = Vec::new();
        let mut evicted = 0usize;
        while evicted < Self::EVICT_MAX && self.cache.over_limit() {
            let Some(key) = self.cache.pop_dirty() else { break };
            self.flush_batch(st, &[key], &mut snap, &mut plan, &mut staged)?;
            evicted += 1;
        }
        self.cache.note_evictions(evicted as u64);
        Ok(())
    }

    /// Combined flush of a **healthy**, partially dirty stripe —
    /// **idempotent by construction**, so an errored flush simply
    /// retries: parity is recomputed *fresh* over the stripe's
    /// current data vector (clean units read from the backend once,
    /// dirty units taken from the cache snapshot) and never depends
    /// on the previous on-disk parity. A retry after any partial
    /// failure therefore converges to the same final state — a
    /// parity-delta RMW would instead cancel its own half-applied
    /// update on the second pass. It is also cheaper for the stripe
    /// shapes in play: `k_data − ndirty` reads instead of
    /// `ndirty + parity_count`, still at most one backend call per
    /// touched disk, however many client writes the entry absorbed.
    fn flush_partial_stripe(
        &self,
        st: &ArrayState,
        si: usize,
        copy: usize,
        start: usize,
        snap: &FlushSnapshot,
        data: &[u8],
    ) -> Result<(), StoreError> {
        let us = self.unit_size;
        let is_pq = self.scheme == ParityScheme::PQ;
        let w = st.world.clone();
        let units = w.layout.stripes()[si].units();
        let (p_slot, q_slot) = w.smap.parity_slots(si);
        let shift = (copy * w.layout.size()) as u32;
        let shifted = |u: StripeUnit| StripeUnit { disk: u.disk, offset: u.offset + shift };
        let mut acc = self.scratch.get();
        let res = (|| {
            let Scratch { acc_p, acc_q, tmp } = &mut acc;
            acc_p.fill(0);
            acc_q.fill(0);
            for (j, &dirty) in snap.dirty.iter().enumerate() {
                let m = w.smap.locate_full(start + j);
                let val: &[u8] = if dirty {
                    &data[j * us..(j + 1) * us]
                } else {
                    self.read_phys(st, m.unit, tmp)?;
                    tmp
                };
                xor_slice(acc_p, val);
                if is_pq {
                    gf256::mul_add_slice(acc_q, val, gf256::gen_pow(m.slot));
                }
            }
            self.write_phys(st, shifted(units[p_slot]), acc_p)?;
            if let Some(qs) = q_slot {
                self.write_phys(st, shifted(units[qs]), acc_q)?;
            }
            for (j, &dirty) in snap.dirty.iter().enumerate() {
                if !dirty {
                    continue;
                }
                let m = w.smap.locate_full(start + j);
                self.write_phys(st, m.unit, &data[j * us..(j + 1) * us])?;
            }
            Ok(())
        })();
        self.scratch.put(acc);
        res
    }

    fn check_addr(&self, addr: usize) -> Result<(), StoreError> {
        if addr >= self.blocks() {
            return Err(StoreError::AddressOutOfRange { addr, blocks: self.blocks() });
        }
        Ok(())
    }

    fn check_block_buf(&self, len: usize) -> Result<(), StoreError> {
        if len != self.unit_size {
            return Err(StoreError::BadBufferSize { expected: self.unit_size, got: len });
        }
        Ok(())
    }

    /// Physical unit read without checksum verification (the repair
    /// path must read possibly-corrupt bytes without erroring), still
    /// under the transient-retry policy.
    fn read_phys_raw(
        &self,
        st: &ArrayState,
        u: StripeUnit,
        buf: &mut [u8],
    ) -> Result<(), StoreError> {
        let (pd, off) = (st.redirect[u.disk as usize], u.offset as usize);
        self.integrity.retrying(pd, || self.backend.read_unit(pd, off, &mut *buf))
    }

    /// Physical unit read: retried on transient errors and verified
    /// against the unit's recorded checksum. A mismatch surfaces as
    /// [`StoreError::ChecksumMismatch`], which the public paths catch
    /// and convert into a stripe repair (see `repair_stripe_locked`).
    fn read_phys(&self, st: &ArrayState, u: StripeUnit, buf: &mut [u8]) -> Result<(), StoreError> {
        self.read_phys_raw(st, u, buf)?;
        let (pd, off) = (st.redirect[u.disk as usize], u.offset as usize);
        if self.integrity.verifying() && !self.integrity.sums.check(pd, off, buf) {
            return Err(StoreError::ChecksumMismatch { disk: pd, offset: off });
        }
        Ok(())
    }

    /// Physical unit write: retried on transient errors, the unit's
    /// checksum recorded on success.
    fn write_phys(&self, st: &ArrayState, u: StripeUnit, buf: &[u8]) -> Result<(), StoreError> {
        let (pd, off) = (st.redirect[u.disk as usize], u.offset as usize);
        self.integrity.retrying(pd, || self.backend.write_unit(pd, off, buf))?;
        if self.integrity.verifying() {
            self.integrity.sums.record(pd, off, buf);
        }
        Ok(())
    }

    /// Raw spare-disk read for the write-through delta path: retried,
    /// never checksum-verified — pre-rebuild spare bytes are
    /// arbitrary by contract.
    fn read_spare(&self, spare: usize, off: usize, buf: &mut [u8]) -> Result<(), StoreError> {
        self.integrity.retrying(spare, || self.backend.read_unit(spare, off, &mut *buf))
    }

    /// Spare-disk write: retried, checksum recorded — the spare
    /// becomes the live medium when the rebuild's redirect flips, so
    /// its sums must be fresh by then.
    fn write_spare(&self, spare: usize, off: usize, buf: &[u8]) -> Result<(), StoreError> {
        self.integrity.retrying(spare, || self.backend.write_unit(spare, off, buf))?;
        if self.integrity.verifying() {
            self.integrity.sums.record(spare, off, buf);
        }
        Ok(())
    }

    /// Verifies one stripe and repairs what it can, **under the
    /// stripe's exclusive shard lock** (held by the caller): every
    /// unit on a live disk is read raw and checked against its
    /// recorded checksum; mismatched units are treated as erasures
    /// *on top of* the failed disks, erasure-decoded from the
    /// verified survivors, and rewritten in place (read-repair). When
    /// every unit verifies and no disk is failed, the parity
    /// equations themselves are checked and — data being
    /// authoritative — recomputed and rewritten on mismatch; units
    /// with no recorded checksum then have one adopted, so a scrub
    /// pass leaves the whole stripe covered. Returns `(checksum
    /// repairs, parity repairs)` performed on this stripe; more
    /// erasures than the scheme tolerates is
    /// [`StoreError::ChecksumMismatch`] naming the corrupt unit.
    pub(crate) fn repair_stripe_locked(
        &self,
        st: &ArrayState,
        copy: usize,
        si: usize,
    ) -> Result<(u32, u32), StoreError> {
        let w = st.world.clone();
        let us = self.unit_size;
        let units = w.layout.stripes()[si].units();
        let (p_slot, q_slot) = w.smap.parity_slots(si);
        let shift = (copy * w.layout.size()) as u32;
        let phys = |slot: usize| {
            let u = units[slot];
            (st.redirect[u.disk as usize], (u.offset + shift) as usize)
        };
        // Read every live unit raw; classify each as verified,
        // mismatched, or unset (no checksum recorded yet).
        let mut bytes = vec![0u8; units.len() * us];
        let mut mismatched: Vec<usize> = Vec::new();
        let mut unset: Vec<usize> = Vec::new();
        let mut nfailed = 0usize;
        if let Some(eng) = self.engine_if_on() {
            // Scrub burst: every live unit of the stripe is submitted
            // to the per-disk queues at once (maintenance priority, so
            // client ops still outrank it) and the reads complete in
            // parallel across spindles.
            let mut waits: Vec<(usize, crate::engine::Completion)> = Vec::new();
            for (slot, u) in units.iter().enumerate() {
                if st.failed.contains(u.disk as usize) {
                    nfailed += 1;
                    continue;
                }
                let (pd, off) = phys(slot);
                let c = eng.submit_read_units(pd, off, 1, crate::engine::Priority::Maintenance)?;
                waits.push((slot, c));
            }
            for (slot, c) in waits {
                let data = c.wait()?;
                bytes[slot * us..(slot + 1) * us].copy_from_slice(&data);
                let (pd, off) = phys(slot);
                if !self.integrity.sums.recorded(pd, off) {
                    unset.push(slot);
                } else if !self.integrity.sums.check(pd, off, &bytes[slot * us..(slot + 1) * us]) {
                    mismatched.push(slot);
                }
            }
        } else {
            for (slot, u) in units.iter().enumerate() {
                if st.failed.contains(u.disk as usize) {
                    nfailed += 1;
                    continue;
                }
                let (pd, off) = phys(slot);
                let buf = &mut bytes[slot * us..(slot + 1) * us];
                self.integrity.retrying(pd, || self.backend.read_unit(pd, off, &mut *buf))?;
                if !self.integrity.sums.recorded(pd, off) {
                    unset.push(slot);
                } else if !self.integrity.sums.check(pd, off, buf) {
                    mismatched.push(slot);
                }
            }
        }
        if nfailed + mismatched.len() > self.scheme.parity_per_stripe() {
            // Corruption past the redundancy: unrepairable. Name the
            // first corrupt unit (the failed disks are already known
            // to the caller).
            let (pd, off) = phys(mismatched[0]);
            return Err(StoreError::ChecksumMismatch { disk: pd, offset: off });
        }
        let t0 = Instant::now();
        let mut fixed = 0u32;
        let mut fixed_parity = 0u32;
        if !mismatched.is_empty() {
            // Decode the mismatched units (the failed disks ride
            // along in the lost set but have no medium to rewrite)
            // from the verified survivors — served from the bytes
            // already read above, no second backend pass.
            let mut scratch = self.scratch.get();
            let res = (|| -> Result<(), StoreError> {
                let solved = self.decode_stripe_with(
                    st,
                    si,
                    shift,
                    &mismatched,
                    &mut scratch,
                    |pu, buf| {
                        let slot = units
                            .iter()
                            .position(|m| m.disk == pu.disk && m.offset + shift == pu.offset)
                            .expect("decode reads only this stripe's members");
                        buf.copy_from_slice(&bytes[slot * us..(slot + 1) * us]);
                        Ok(())
                    },
                )?;
                for (slot, which) in solved.into_iter().flatten() {
                    if !mismatched.contains(&slot) {
                        continue; // a failed disk's unit: no medium
                    }
                    let (pd, off) = phys(slot);
                    let repaired = scratch.decoded(which);
                    self.integrity.retrying(pd, || self.backend.write_unit(pd, off, repaired))?;
                    self.integrity.sums.record(pd, off, repaired);
                    bytes[slot * us..(slot + 1) * us].copy_from_slice(repaired);
                    self.integrity.checksum_repairs.fetch_add(1, Ordering::Relaxed);
                    self.integrity.health.note_repair(pd);
                    self.events
                        .emit(|| Event::ChecksumRepair { disk: pd as u32, offset: off as u64 });
                    fixed += 1;
                }
                Ok(())
            })();
            self.scratch.put(scratch);
            res?;
        } else if nfailed == 0 {
            // Every unit verified (or is unset) and the whole stripe
            // is present: check the parity equations themselves. Data
            // is authoritative — a mismatching parity unit is
            // recomputed and rewritten.
            let is_pq = self.scheme == ParityScheme::PQ;
            let mut acc_p = vec![0u8; us];
            let mut acc_q = vec![0u8; us];
            for slot in 0..units.len() {
                if slot == p_slot || Some(slot) == q_slot {
                    continue;
                }
                let val = &bytes[slot * us..(slot + 1) * us];
                xor_slice(&mut acc_p, val);
                if is_pq {
                    gf256::mul_add_slice(&mut acc_q, val, gf256::gen_pow(slot));
                }
            }
            let mut fix = |slot: usize, acc: &[u8]| -> Result<(), StoreError> {
                if &bytes[slot * us..(slot + 1) * us] == acc {
                    return Ok(());
                }
                let (pd, off) = phys(slot);
                self.integrity.retrying(pd, || self.backend.write_unit(pd, off, acc))?;
                self.integrity.sums.record(pd, off, acc);
                bytes[slot * us..(slot + 1) * us].copy_from_slice(acc);
                self.integrity.parity_repairs.fetch_add(1, Ordering::Relaxed);
                self.integrity.health.note_repair(pd);
                self.events.emit(|| Event::ChecksumRepair { disk: pd as u32, offset: off as u64 });
                fixed_parity += 1;
                Ok(())
            };
            fix(p_slot, &acc_p)?;
            if let Some(qs) = q_slot {
                fix(qs, &acc_q)?;
            }
        }
        if nfailed == 0 {
            // The stripe is now internally consistent: adopt sums for
            // units that never had one, so the next pass verifies
            // them too.
            for slot in unset {
                let (pd, off) = phys(slot);
                self.integrity.sums.record(pd, off, &bytes[slot * us..(slot + 1) * us]);
            }
        }
        if fixed + fixed_parity > 0 {
            self.metrics.record_op(
                OpKind::RepairWrite,
                (fixed + fixed_parity) as u64,
                t0.elapsed().as_nanos() as u64,
            );
        }
        Ok((fixed, fixed_parity))
    }

    /// Reconstructs the unit at `(disk, offset)` from the surviving
    /// members of its stripe (disk may be failed or simply absent).
    /// This is the degraded-read primitive; the caller holds the
    /// stripe's shard lock (shared suffices) and the state guard.
    fn reconstruct_unit(
        &self,
        st: &ArrayState,
        disk: usize,
        offset: usize,
        out: &mut [u8],
    ) -> Result<(), StoreError> {
        let mut scratch = self.scratch.get();
        let res = self.reconstruct_unit_into(st, disk, offset, out, &mut scratch);
        self.scratch.put(scratch);
        res
    }

    /// Allocation-free variant for hot loops: the caller supplies the
    /// [`Scratch`] buffers.
    fn reconstruct_unit_into(
        &self,
        st: &ArrayState,
        disk: usize,
        offset: usize,
        out: &mut [u8],
        scratch: &mut Scratch,
    ) -> Result<(), StoreError> {
        self.check_block_buf(out.len())?;
        let size = st.world.layout.size();
        let shift = (offset / size * size) as u32;
        let r = st.world.layout.unit_ref(disk, offset % size);
        let si = r.stripe as usize;
        let solved = self.decode_stripe(st, si, shift, &[r.slot as usize], scratch)?;
        for (slot, which) in solved.into_iter().flatten() {
            if slot == r.slot as usize {
                out.copy_from_slice(scratch.decoded(which));
                return Ok(());
            }
        }
        // Unreachable: the requested slot is always in the lost set.
        Err(StoreError::Corrupt(format!("decode of stripe {si} skipped slot {}", r.slot)))
    }

    /// Batched rebuild primitive: reconstructs the `out.len() /
    /// unit_size` consecutive units of `disk` starting at `start` and
    /// lands them on physical disk `spare` with one vectored write.
    /// Surviving members are prefetched in coalesced per-disk runs
    /// (one vectored backend call per run) instead of one call per
    /// stripe member. The chunk's stripe shards are held *shared* for
    /// the whole prefetch→decode→spare-write sequence, so concurrent
    /// writers (exclusive) are excluded stripe by stripe and the
    /// spare write cannot clobber a write-through that happened after
    /// the decode. `scratch` and `cache` are caller-owned so worker
    /// threads reuse their capacity across chunks.
    pub(crate) fn rebuild_chunk(
        &self,
        disk: usize,
        spare: usize,
        start: usize,
        out: &mut [u8],
        scratch: &mut Scratch,
        cache: &mut UnitCache,
    ) -> Result<(), StoreError> {
        if out.is_empty() || !out.len().is_multiple_of(self.unit_size) {
            return Err(StoreError::BadBufferSize { expected: self.unit_size, got: out.len() });
        }
        let n = out.len() / self.unit_size;
        let st = self.state_read();
        let w = st.world.clone();
        let size = w.layout.size();
        // Two-phase acquisition: every stripe this chunk decodes,
        // sorted by shard, locked shared before any byte is read.
        let mut shards: Vec<usize> = (0..n)
            .map(|i| {
                let offset = start + i;
                let r = w.layout.unit_ref(disk, offset % size);
                self.locks.shard_of(offset / size, r.stripe as usize)
            })
            .collect();
        sort_shard_set(&mut shards);
        let mut attempt = 0;
        loop {
            let guards = self.locks.lock_sorted_shared(&shards);
            // Gather every surviving stripe member the decodes below
            // will touch. Distinct target offsets live in distinct
            // stripes, and stripes never share units, so the want-list
            // is duplicate-free and the per-disk unit counts stay
            // identical to the per-unit path — only the call count
            // drops.
            cache.wants.clear();
            for i in 0..n {
                let offset = start + i;
                let shift = (offset / size * size) as u32;
                let r = w.layout.unit_ref(disk, offset % size);
                for u in w.layout.stripes()[r.stripe as usize].units() {
                    if u.disk as usize == disk || st.failed.contains(u.disk as usize) {
                        continue;
                    }
                    cache.push_want(st.redirect[u.disk as usize] as u32, u.offset + shift);
                }
            }
            let t0 = Instant::now();
            // Rebuild chunk prefetch: through the engine when it is
            // running (maintenance priority — client ops outrank the
            // band read at the queue tier), else the synchronous
            // coalesced path.
            match self.engine_if_on() {
                Some(eng) => cache.fill_engine(&eng, self.unit_size)?,
                None => cache.fill(&*self.backend, self.unit_size, &self.integrity)?,
            }
            // The chunk's surviving-member prefetch *is* the rebuild
            // read load; timed unconditionally (chunks are large, the
            // two Instant reads vanish against the vectored I/O).
            let prefetch_ns = t0.elapsed().as_nanos() as u64;
            self.metrics.record_op(OpKind::RebuildRead, cache.wants.len() as u64, prefetch_ns);
            // A corrupt survivor must never be folded into the spare:
            // verify the whole prefetch before decoding. Mismatching
            // stripes are repaired in place (exclusive locks, after
            // the shared guards drop) and the chunk retried once.
            if self.integrity.verifying() {
                let mut bad: Vec<(usize, usize)> = Vec::new();
                let mut first_bad: Option<(usize, usize)> = None;
                for i in 0..n {
                    let offset = start + i;
                    let copy = offset / size;
                    let shift = (copy * size) as u32;
                    let r = w.layout.unit_ref(disk, offset % size);
                    let si = r.stripe as usize;
                    for u in w.layout.stripes()[si].units() {
                        if u.disk as usize == disk || st.failed.contains(u.disk as usize) {
                            continue;
                        }
                        let pd = st.redirect[u.disk as usize];
                        let off = (u.offset + shift) as usize;
                        let ok = match cache.wants.binary_search(&(pd as u32, u.offset + shift)) {
                            Ok(ix) => self.integrity.sums.check(pd, off, cache.unit(ix)),
                            Err(_) => true,
                        };
                        if !ok {
                            if bad.last() != Some(&(copy, si)) {
                                bad.push((copy, si));
                            }
                            first_bad.get_or_insert((pd, off));
                        }
                    }
                }
                if let Some((pd, off)) = first_bad {
                    if attempt == 1 {
                        return Err(StoreError::ChecksumMismatch { disk: pd, offset: off });
                    }
                    attempt = 1;
                    drop(guards);
                    for &(copy, si) in &bad {
                        let shard = self.locks.shard_of(copy, si);
                        let (_g, _) = self.locks.lock_one_counting(shard);
                        self.repair_stripe_locked(&st, copy, si)?;
                    }
                    continue;
                }
            }
            for (i, chunk) in out.chunks_exact_mut(self.unit_size).enumerate() {
                let offset = start + i;
                let shift = (offset / size * size) as u32;
                let r = w.layout.unit_ref(disk, offset % size);
                let si = r.stripe as usize;
                let solved =
                    self.decode_stripe_with(&st, si, shift, &[r.slot as usize], scratch, {
                        let cache = &*cache;
                        let redirect = &st.redirect;
                        move |u: StripeUnit, buf: &mut [u8]| {
                            cache.copy_to(redirect[u.disk as usize] as u32, u.offset, buf)
                        }
                    })?;
                let mut found = false;
                for (slot, which) in solved.into_iter().flatten() {
                    if slot == r.slot as usize {
                        chunk.copy_from_slice(scratch.decoded(which));
                        found = true;
                    }
                }
                if !found {
                    return Err(StoreError::Corrupt(format!(
                        "decode of stripe {si} skipped slot {}",
                        r.slot
                    )));
                }
            }
            let data_out: &[u8] = out;
            self.integrity.retrying(spare, || self.backend.write_units(spare, start, data_out))?;
            if self.integrity.verifying() {
                self.integrity.sums.record_span(spare, start, out, self.unit_size);
            }
            self.metrics.record_op(
                OpKind::SpareWrite,
                n as u64,
                (t0.elapsed().as_nanos() as u64).saturating_sub(prefetch_ns),
            );
            self.rb_tracker.add_done(n as u64);
            return Ok(());
        }
    }

    /// [`BlockStore::decode_stripe_with`] reading straight from the
    /// backend — the common, unbatched decode. With the I/O engine
    /// running, the survivor band-read is submitted to the per-disk
    /// queues in one burst instead (see
    /// [`BlockStore::decode_stripe_engine`]).
    fn decode_stripe(
        &self,
        st: &ArrayState,
        si: usize,
        shift: u32,
        extra_lost: &[usize],
        scratch: &mut Scratch,
    ) -> Result<Decoded, StoreError> {
        if let Some(eng) = self.engine_if_on() {
            return self.decode_stripe_engine(st, &eng, si, shift, extra_lost, scratch);
        }
        self.decode_stripe_with(st, si, shift, extra_lost, scratch, |u, buf| {
            self.read_phys(st, u, buf)
        })
    }

    /// Engine-backed degraded band-read: every surviving member of
    /// the stripe is submitted to its disk queue at once (client
    /// priority — a degraded read is still a client op), the
    /// completions are drained, each buffer is checksum-verified, and
    /// the decode then runs entirely from memory. The survivor reads
    /// overlap across spindles instead of serialising one
    /// `read_unit` at a time.
    fn decode_stripe_engine(
        &self,
        st: &ArrayState,
        eng: &crate::engine::Engine<B>,
        si: usize,
        shift: u32,
        extra_lost: &[usize],
        scratch: &mut Scratch,
    ) -> Result<Decoded, StoreError> {
        let stripe = &st.world.layout.stripes()[si];
        let mut waits: Vec<(u32, u32, crate::engine::Completion)> = Vec::new();
        for (slot, u) in stripe.units().iter().enumerate() {
            if st.failed.contains(u.disk as usize) || extra_lost.contains(&slot) {
                continue;
            }
            let pd = st.redirect[u.disk as usize];
            let off = u.offset + shift;
            let c = eng.submit_read_units(pd, off as usize, 1, crate::engine::Priority::Client)?;
            waits.push((u.disk, off, c));
        }
        // Drain every completion before acting on an error — no
        // token may be abandoned in flight.
        let mut got: Vec<(u32, u32, Vec<u8>)> = Vec::with_capacity(waits.len());
        let mut first_err: Option<StoreError> = None;
        for (disk, off, c) in waits {
            match c.wait() {
                Ok(data) => got.push((disk, off, data)),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        if self.integrity.verifying() {
            for (disk, off, data) in &got {
                let pd = st.redirect[*disk as usize];
                if !self.integrity.sums.check(pd, *off as usize, data) {
                    return Err(StoreError::ChecksumMismatch { disk: pd, offset: *off as usize });
                }
            }
        }
        self.decode_stripe_with(st, si, shift, extra_lost, scratch, |u, buf| {
            let (_, _, data) =
                got.iter().find(|(d, o, _)| *d == u.disk && *o == u.offset).ok_or_else(|| {
                    StoreError::Corrupt(format!(
                        "engine band-read missing unit disk {} offset {}",
                        u.disk, u.offset
                    ))
                })?;
            buf.copy_from_slice(data);
            Ok(())
        })
    }

    /// Erasure-decodes one stripe (at copy offset `shift`): reads every
    /// surviving member exactly once through `read` (the backend, or a
    /// prefetched [`UnitCache`]), accumulates the P/Q syndromes, and
    /// solves for the lost units. `extra_lost` forces extra slots
    /// into the lost set beyond the failed disks — a unit being
    /// rebuilt whose disk may not be in the failure set, or units
    /// whose checksums mismatched and are being repaired as erasures.
    /// Returns up to two `(slot, buffer)` pairs; the values live in
    /// `scratch` until its next decode. No heap allocation (this sits
    /// in the rebuild workers' per-unit loop).
    pub(crate) fn decode_stripe_with<F>(
        &self,
        st: &ArrayState,
        si: usize,
        shift: u32,
        extra_lost: &[usize],
        scratch: &mut Scratch,
        mut read: F,
    ) -> Result<Decoded, StoreError>
    where
        F: FnMut(StripeUnit, &mut [u8]) -> Result<(), StoreError>,
    {
        let stripe = &st.world.layout.stripes()[si];
        let (p_slot, q_slot) = st.world.smap.parity_slots(si);
        // Collect the lost slots (ascending; at most tolerance + 1
        // with the forced extra, and anything past the redundancy is
        // an error anyway).
        let mut lost = [usize::MAX; 3];
        let mut nlost = 0usize;
        for (slot, u) in stripe.units().iter().enumerate() {
            if st.failed.contains(u.disk as usize) || extra_lost.contains(&slot) {
                if nlost < lost.len() {
                    lost[nlost] = slot;
                }
                nlost += 1;
            }
        }
        let redundancy = self.scheme.parity_per_stripe();
        if nlost > redundancy {
            // More erasures than parity units: unreconstructable. Name
            // a failed disk of the stripe for the error.
            let d = stripe.units()[lost[0]].disk as usize;
            return Err(StoreError::DiskFailed(d));
        }
        let Scratch { acc_p, acc_q, tmp } = scratch;
        acc_p.fill(0);
        acc_q.fill(0);
        for (slot, u) in stripe.units().iter().enumerate() {
            if lost[..nlost].contains(&slot) {
                continue;
            }
            read(StripeUnit { disk: u.disk, offset: u.offset + shift }, tmp)?;
            if slot == p_slot {
                xor_slice(acc_p, tmp);
            } else if Some(slot) == q_slot {
                xor_slice(acc_q, tmp);
            } else {
                xor_slice(acc_p, tmp);
                if self.scheme == ParityScheme::PQ {
                    gf256::mul_add_slice(acc_q, tmp, gf256::gen_pow(slot));
                }
            }
        }
        // Solve. Every equation below is the stripe invariant
        // `P ^ Σ D = 0` (and `Q ^ Σ g^j·D_j = 0`) restricted to the
        // surviving members: the accumulator equals the XOR of the
        // *missing* participants.
        match lost[..nlost] {
            [] => Ok([None, None]),
            [a] => {
                // Single erasure: whichever unit is missing, the P
                // accumulator already equals it — except a missing Q,
                // which the Q accumulator holds.
                if Some(a) == q_slot {
                    Ok([Some((a, DecodedBuf::Q)), None])
                } else {
                    Ok([Some((a, DecodedBuf::P)), None])
                }
            }
            [a, b] => {
                debug_assert_eq!(self.scheme, ParityScheme::PQ);
                let (qa, qb) = (Some(a) == q_slot, Some(b) == q_slot);
                let (pa, pb) = (a == p_slot, b == p_slot);
                if (pa && qb) || (pb && qa) {
                    // Lost P and Q: each accumulator is its parity.
                    let (p_lost, q_lost) = if pa { (a, b) } else { (b, a) };
                    Ok([Some((p_lost, DecodedBuf::P)), Some((q_lost, DecodedBuf::Q))])
                } else if pa || pb {
                    // Lost P and a data unit j: the Q equation is
                    // missing only g^j·D_j, so D_j = acc_q / g^j; then
                    // P = acc_p ^ D_j.
                    let (p_lost, j) = if pa { (a, b) } else { (b, a) };
                    let c = gf256::inv(gf256::gen_pow(j)).expect("g^j is nonzero");
                    gf256::mul_slice(acc_q, c);
                    xor_slice(acc_p, acc_q);
                    Ok([Some((j, DecodedBuf::Q)), Some((p_lost, DecodedBuf::P))])
                } else if qa || qb {
                    // Lost Q and a data unit j: D_j = acc_p; then
                    // Q = acc_q ^ g^j·D_j.
                    let (q_lost, j) = if qa { (a, b) } else { (b, a) };
                    gf256::mul_add_slice(acc_q, acc_p, gf256::gen_pow(j));
                    Ok([Some((j, DecodedBuf::P)), Some((q_lost, DecodedBuf::Q))])
                } else {
                    // Two lost data units: the classic RAID-6 solve.
                    gf256::solve_two_erasures(acc_p, acc_q, gf256::gen_pow(a), gf256::gen_pow(b));
                    // acc_q now holds D_a, acc_p holds D_b.
                    Ok([Some((a, DecodedBuf::Q)), Some((b, DecodedBuf::P))])
                }
            }
            _ => unreachable!("lost.len() bounded by redundancy above"),
        }
    }

    /// Reads logical block `addr` into `buf` (`unit_size` bytes),
    /// reconstructing from parity when the owning disk is failed.
    ///
    /// Healthy reads take no stripe lock (unit reads are atomic at
    /// the backend); degraded reads hold the stripe's shard lock
    /// shared, so concurrent decodes overlap but a concurrent writer
    /// to the stripe is excluded mid-update.
    pub fn read_block(&self, addr: usize, buf: &mut [u8]) -> Result<(), StoreError> {
        self.check_addr(addr)?;
        self.check_block_buf(buf.len())?;
        let st = self.state_read();
        let m = st.world.smap.locate_full(addr);
        let degraded = st.failed.contains(m.unit.disk as usize);
        let kind = if degraded { OpKind::DegradedRead } else { OpKind::Read };
        let t = self.metrics.begin(kind, self.events.active());
        // The mix estimator is fed under every policy — not just
        // write-back — so a store switched *to* write-back starts
        // with a warm read/write verdict instead of a cold window.
        if t.mix_due {
            self.metrics.note_mix(true);
        }
        self.events.emit(|| Event::OpBegin {
            kind,
            addr: addr as u64,
            blocks: 1,
            stripe: m.stripe as u32,
            disk: m.unit.disk,
        });
        let res = (|| {
            // Dirty units exist only in the write-back cache until
            // their stripe flushes, so every read path probes it
            // first (one atomic load when the cache is clean). A miss
            // is safe to serve from the backend: a flush completes
            // its backend writes *before* removing the entry, so a
            // missing entry implies the bytes are already durable
            // below.
            if self.cache.maybe_dirty() {
                let (shard, key, j, _) = self.cache_coords(&st, &m, addr);
                if self.cache.read_into(shard, key, j, buf) {
                    return Ok(());
                }
            }
            if degraded {
                let shard = self.locks.shard_of(m.copy, m.stripe);
                let _g = self.locks.lock_one_shared(shard);
                self.reconstruct_unit(&st, m.unit.disk as usize, m.unit.offset as usize, buf)
            } else {
                self.read_phys(&st, m.unit, buf)
            }
        })();
        // Read-repair: a checksum mismatch — on this block's unit
        // (healthy path) or among the survivors its decode read
        // (degraded path) — is treated as an erasure. Either way the
        // corrupt unit sits in this block's stripe: take the stripe
        // exclusively, repair it from parity, and retry once.
        let res = match res {
            Err(StoreError::ChecksumMismatch { .. }) => {
                let shard = self.locks.shard_of(m.copy, m.stripe);
                let (_g, _) = self.locks.lock_one_counting(shard);
                self.repair_stripe_locked(&st, m.copy, m.stripe)?;
                if degraded {
                    self.reconstruct_unit(&st, m.unit.disk as usize, m.unit.offset as usize, buf)
                } else {
                    self.read_phys(&st, m.unit, buf)
                }
            }
            r => r,
        };
        if res.is_ok() {
            let ns = self.metrics.finish(t, 1).unwrap_or(0);
            self.events.emit(|| Event::OpEnd { kind, addr: addr as u64, blocks: 1, ns });
        }
        drop(st);
        if self.integrity.health.has_pending() {
            self.apply_pending_health();
        }
        res
    }

    /// Writes logical block `addr` from `data` (`unit_size` bytes),
    /// maintaining every surviving parity unit of the stripe. Small
    /// writes are read-modify-write (2 reads + 2 writes under XOR,
    /// 3 + 3 under P+Q); use [`BlockStore::write_blocks`] for the
    /// zero-read full-stripe path.
    ///
    /// Takes `&self`: the stripe's shard lock serializes the RMW
    /// against concurrent writers (and degraded readers) of the same
    /// stripe, while writes to other stripes proceed in parallel.
    ///
    /// Under [`CachePolicy::WriteBack`] the write performs **no
    /// backend I/O**: the bytes land in the stripe cache and the
    /// parity maintenance is deferred to the stripe's flush, which
    /// combines every cached write into one parity update (see
    /// [`crate::cache`]).
    pub fn write_block(&self, addr: usize, data: &[u8]) -> Result<(), StoreError> {
        self.check_addr(addr)?;
        self.check_block_buf(data.len())?;
        let st = self.state_read();
        let m = st.world.smap.locate_full(addr);
        let shard = self.locks.shard_of(m.copy, m.stripe);
        let kind = if !st.failed.is_empty()
            && st.world.layout.stripes()[m.stripe]
                .units()
                .iter()
                .any(|u| st.failed.contains(u.disk as usize))
        {
            OpKind::DegradedWrite
        } else {
            OpKind::Write
        };
        let t = self.metrics.begin(kind, self.events.active());
        self.events.emit(|| Event::OpBegin {
            kind,
            addr: addr as u64,
            blocks: 1,
            stripe: m.stripe as u32,
            disk: m.unit.disk,
        });
        let res = (|| {
            // Fed under every policy — see `read_block`.
            if t.mix_due {
                self.metrics.note_mix(false);
            }
            if self.cache.is_write_back() {
                // Read-mostly write-back bypass: when recent traffic
                // is read-dominated and the backend is memory-speed
                // (no call-coalescing win to combine for), deferring
                // the RMW buys nothing — the flush does the same
                // backend work later while every read pays the cache
                // probe. Never bypasses past an existing entry: a
                // direct backend write below a dirty cached unit
                // would let reads serve the stale cached bytes.
                let bypass = !self.backend.prefers_gap_bridging() && self.metrics.read_mostly();
                {
                    let (_g, contended) = self.locks.lock_one_counting(shard);
                    if contended {
                        self.metrics.note_lock_contention();
                        self.events.emit(|| Event::LockContention { shard: shard as u32 });
                    }
                    // Fast bypass: with zero dirty stripes anywhere
                    // (one acquire load — reads use the same gate) no
                    // entry can shadow this write, so the per-stripe
                    // probe and even the cache coordinates are
                    // skipped. A concurrent insert for *this* stripe
                    // is excluded by the shard lock held here.
                    if bypass && !self.cache.maybe_dirty() {
                        self.metrics.note_bypass(&t);
                        return self.write_block_locked(&st, addr, data);
                    }
                    let (_, key, j, k_data) = self.cache_coords(&st, &m, addr);
                    if bypass && !self.cache.has_entry(shard, key) {
                        // A bypassed write adds no dirty state, so
                        // the eviction check is skipped with it.
                        self.metrics.note_bypass(&t);
                        self.write_block_locked(&st, addr, data)?;
                    } else {
                        self.cache.write(shard, key, k_data, j, data);
                        // A cached write is acknowledged without
                        // touching the backend, but the target world
                        // of an active reshape must still see it —
                        // migration reads the *backend* source bytes
                        // after flushing covered stripes, while the
                        // dual write keeps already-migrated target
                        // stripes fresh.
                        self.dual_write_if_reshaping(&st, addr, data)?;
                    }
                }
                if bypass {
                    // The mix turned read-mostly while stripes dirtied
                    // before the flip are still resident; they keep
                    // `maybe_dirty` true, taxing every later op with
                    // the probe above. Drain them now — one address-
                    // sorted combined flush — so the steady state is
                    // the clean fast path again. Estimator flapping
                    // costs one drain per flip, work the eviction
                    // trickle would have done anyway, batched.
                    return self.flush_cache_locked(&st);
                }
                // Eviction runs with the stripe lock released (one
                // victim shard at a time — see `evict_over_limit`).
                return self.evict_over_limit(&st);
            }
            let (_g, contended) = self.locks.lock_one_counting(shard);
            if contended {
                self.metrics.note_lock_contention();
                self.events.emit(|| Event::LockContention { shard: shard as u32 });
            }
            self.write_block_locked(&st, addr, data)
        })();
        if res.is_ok() {
            let ns = self.metrics.finish(t, 1).unwrap_or(0);
            self.events.emit(|| Event::OpEnd { kind, addr: addr as u64, blocks: 1, ns });
        }
        drop(st);
        if self.integrity.health.has_pending() {
            self.apply_pending_health();
        }
        res
    }

    /// The single-block write body; the caller holds the stripe's
    /// shard lock exclusive and the state read guard. A checksum
    /// mismatch discovered by the read-modify-write's reads (old
    /// data, old parity, or a degraded decode's survivor — all in
    /// this stripe) triggers a stripe repair and one retry: folding a
    /// corrupt old value into a parity delta would corrupt the parity
    /// permanently.
    fn write_block_locked(
        &self,
        st: &ArrayState,
        addr: usize,
        data: &[u8],
    ) -> Result<(), StoreError> {
        match self.write_block_rmw(st, addr, data) {
            Err(StoreError::ChecksumMismatch { .. }) => {
                let m = st.world.smap.locate_full(addr);
                self.repair_stripe_locked(st, m.copy, m.stripe)?;
                self.write_block_rmw(st, addr, data)
            }
            r => r,
        }
    }

    fn write_block_rmw(&self, st: &ArrayState, addr: usize, data: &[u8]) -> Result<(), StoreError> {
        let w = st.world.clone();
        let m = w.smap.locate_full(addr);
        let u = m.unit;
        let si = m.stripe;
        let t_slot = m.slot;
        let shift = (m.copy * w.layout.size()) as u32;
        let units = w.layout.stripes()[si].units();
        let (p_slot, q_slot) = w.smap.parity_slots(si);
        let p_unit = units[p_slot];
        let p_alive = !st.failed.contains(p_unit.disk as usize);
        let q = q_slot.map(|qs| {
            let qu = units[qs];
            (qu, !st.failed.contains(qu.disk as usize))
        });
        let shifted = |u: StripeUnit| StripeUnit { disk: u.disk, offset: u.offset + shift };

        // A parity (or the target, below) this write cannot place on
        // its failed disk leaves that disk's medium stale: restoring
        // it transiently is no longer safe, only a rebuild is. (With
        // a rebuild racing, the value is *also* written through to
        // the spare — the true medium is stale either way.)
        if !p_alive {
            self.mark_stale(st, p_unit.disk as usize, m.copy, si);
        }
        if let Some((q_unit, false)) = q {
            self.mark_stale(st, q_unit.disk as usize, m.copy, si);
        }

        if !st.failed.contains(u.disk as usize) {
            // Target disk alive: delta-update every surviving parity.
            // Valid even when *another* stripe member is failed — the
            // invariants stay linear in the deltas. Scratch buffers
            // stand in for delta/parity staging: zero allocations.
            let mut s = self.scratch.get();
            let res = (|| {
                let Scratch { acc_p: delta, acc_q: par, .. } = &mut s;
                self.read_phys(st, u, delta)?;
                xor_slice(delta, data); // delta = old ^ new
                if p_alive {
                    let pu = shifted(p_unit);
                    self.read_phys(st, pu, par)?;
                    xor_slice(par, delta);
                    self.write_phys(st, pu, par)?;
                } else if let Some(spare) = Self::spare_for(st, p_unit.disk as usize) {
                    // P lives on the disk being rebuilt: delta-update
                    // its spare copy. Pre-rebuild the spare holds
                    // arbitrary bytes and this write is harmless (the
                    // rebuild's decode overwrites it, serialized by
                    // the stripe lock); post-rebuild it holds the
                    // true old P and the delta lands correctly.
                    let pu = shifted(p_unit);
                    self.read_spare(spare, pu.offset as usize, par)?;
                    xor_slice(par, delta);
                    self.write_spare(spare, pu.offset as usize, par)?;
                }
                if let Some((q_unit, q_alive)) = q {
                    let qu = shifted(q_unit);
                    if q_alive {
                        self.read_phys(st, qu, par)?;
                        gf256::mul_add_slice(par, delta, gf256::gen_pow(t_slot));
                        self.write_phys(st, qu, par)?;
                    } else if let Some(spare) = Self::spare_for(st, q_unit.disk as usize) {
                        self.read_spare(spare, qu.offset as usize, par)?;
                        gf256::mul_add_slice(par, delta, gf256::gen_pow(t_slot));
                        self.write_spare(spare, qu.offset as usize, par)?;
                    }
                }
                self.write_phys(st, u, data)?;
                self.dual_write_if_reshaping(st, addr, data)
            })();
            self.scratch.put(s);
            return res;
        }
        self.mark_stale(st, u.disk as usize, m.copy, si);

        // Target disk failed: the new value exists only through the
        // surviving parity, so recompute P (and Q) over the full data
        // vector — surviving data units read directly, a second lost
        // data unit (P+Q only) erasure-decoded first (into its own
        // scratch, which keeps the value live while a second scratch
        // accumulates the new parity).
        let lost_other_data: Option<usize> = units.iter().enumerate().find_map(|(slot, mu)| {
            (slot != t_slot
                && slot != p_slot
                && Some(slot) != q_slot
                && st.failed.contains(mu.disk as usize))
            .then_some(slot)
        });
        let mut dec_scratch = self.scratch.get();
        let mut acc_scratch = self.scratch.get();
        let res = (|| {
            let mut other_buf: Option<DecodedBuf> = None;
            if let Some(o) = lost_other_data {
                let solved = self.decode_stripe(st, si, shift, &[], &mut dec_scratch)?;
                other_buf = Some(
                    solved
                        .iter()
                        .flatten()
                        .find(|(slot, _)| *slot == o)
                        .map(|&(_, w)| w)
                        .ok_or_else(|| {
                            StoreError::Corrupt(format!("decode of stripe {si} skipped slot {o}"))
                        })?,
                );
            }
            let Scratch { acc_p, acc_q, tmp } = &mut acc_scratch;
            acc_p.copy_from_slice(data);
            acc_q.fill(0);
            let is_pq = self.scheme == ParityScheme::PQ;
            if is_pq {
                gf256::mul_add_slice(acc_q, data, gf256::gen_pow(t_slot));
            }
            for (slot, mu) in units.iter().enumerate() {
                if slot == t_slot || slot == p_slot || Some(slot) == q_slot {
                    continue;
                }
                let val: &[u8] = if Some(slot) == lost_other_data {
                    dec_scratch.decoded(other_buf.expect("decoded above"))
                } else {
                    self.read_phys(st, shifted(*mu), tmp)?;
                    tmp
                };
                xor_slice(acc_p, val);
                if is_pq {
                    gf256::mul_add_slice(acc_q, val, gf256::gen_pow(slot));
                }
            }
            if p_alive {
                self.write_phys(st, shifted(p_unit), acc_p)?;
            } else if let Some(spare) = Self::spare_for(st, p_unit.disk as usize) {
                self.write_spare(spare, shifted(p_unit).offset as usize, acc_p)?;
            }
            if let Some((q_unit, q_alive)) = q {
                if q_alive {
                    self.write_phys(st, shifted(q_unit), acc_q)?;
                } else if let Some(spare) = Self::spare_for(st, q_unit.disk as usize) {
                    self.write_spare(spare, shifted(q_unit).offset as usize, acc_q)?;
                }
            }
            // The target's new value exists only through parity — and
            // on the spare, when a rebuild of the target is racing:
            // write it through so an already-reconstructed unit stays
            // fresh (a not-yet-reconstructed one is re-decoded to
            // these exact bytes later).
            if let Some(spare) = Self::spare_for(st, u.disk as usize) {
                self.write_spare(spare, u.offset as usize, data)?;
            }
            self.dual_write_if_reshaping(st, addr, data)
        })();
        self.scratch.put(dec_scratch);
        self.scratch.put(acc_scratch);
        res
    }

    /// Lands `data` in the reshape target world too, when a reshape is
    /// active — see [`crate::reshape`] for why every write dual-lands
    /// unconditionally during a reshape.
    fn dual_write_if_reshaping(
        &self,
        st: &ArrayState,
        addr: usize,
        data: &[u8],
    ) -> Result<(), StoreError> {
        match &st.reshape {
            Some(rs) => self.dual_write(rs, addr, data),
            None => Ok(()),
        }
    }

    /// Repairs the stripe owning logical block `addr` under its
    /// exclusive shard lock (taken here — the caller must hold none).
    fn repair_addr(&self, st: &ArrayState, addr: usize) -> Result<(), StoreError> {
        let m = st.world.smap.locate_full(addr);
        let shard = self.locks.shard_of(m.copy, m.stripe);
        let (_g, _) = self.locks.lock_one_counting(shard);
        self.repair_stripe_locked(st, m.copy, m.stripe)?;
        Ok(())
    }

    /// The engine path of [`BlockStore::read_blocks`]: submits every
    /// per-disk coalesced run to the async engine **up front**, so
    /// all touched disks seek concurrently even from one caller
    /// thread, then drains completions in order — copy-out and
    /// batch checksum verification of run *i* overlap the backend
    /// service of runs *i+1..*. Buckets, gap bridging, and the
    /// repair-retry discipline match the synchronous path.
    #[allow(clippy::too_many_arguments)]
    fn read_runs_engine(
        &self,
        st: &ArrayState,
        eng: &crate::engine::Engine<B>,
        start: usize,
        bridge: usize,
        verify: bool,
        by_disk: &mut [Vec<(u32, u32)>],
        unsorted: bool,
        chunks: &mut [Option<&mut [u8]>],
    ) -> Result<(), StoreError> {
        use crate::engine::{Completion, Priority};
        let us = self.unit_size;
        // Phase 1: submit every run on every disk.
        struct Run {
            disk: usize,
            first: u32,
            span: usize,
            blocks: std::ops::Range<usize>,
        }
        let mut runs: Vec<(Run, Completion)> = Vec::new();
        for (disk, bucket) in by_disk.iter_mut().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            if unsorted {
                bucket.sort_unstable();
            }
            let mut s = 0;
            while s < bucket.len() {
                let mut e = s + 1;
                while e < bucket.len() && (bucket[e].0 - bucket[e - 1].0 - 1) as usize <= bridge {
                    e += 1;
                }
                let first = bucket[s].0;
                let span = (bucket[e - 1].0 - first + 1) as usize;
                let c = eng.submit_read_units(disk, first as usize, span, Priority::Client)?;
                runs.push((Run { disk, first, span, blocks: s..e }, c));
                s = e;
            }
        }
        // Phase 2: drain completions; verify whole runs in one
        // checksum-table pass and copy into the caller's chunks.
        for (run, c) in runs {
            let bucket = &by_disk[run.disk];
            let mut data = c.wait()?;
            if verify {
                for pass in 0..2 {
                    let mut bad: Vec<usize> = Vec::new();
                    {
                        let pairs: Vec<(usize, &[u8])> = bucket[run.blocks.clone()]
                            .iter()
                            .map(|&(off, _)| {
                                let at = (off - run.first) as usize * us;
                                (off as usize, &data[at..at + us])
                            })
                            .collect();
                        self.integrity.sums.check_many(run.disk, &pairs, &mut bad);
                    }
                    if bad.is_empty() {
                        break;
                    }
                    if pass == 1 {
                        return Err(StoreError::ChecksumMismatch {
                            disk: run.disk,
                            offset: bad[0],
                        });
                    }
                    // Latent corruption: repair the owning stripes in
                    // place, then re-read the run and re-verify.
                    for &off in &bad {
                        let &(_, blk) = bucket[run.blocks.clone()]
                            .iter()
                            .find(|&&(o, _)| o as usize == off)
                            .expect("bad offset belongs to this run");
                        self.repair_addr(st, start + blk as usize)?;
                    }
                    data = eng
                        .submit_read_units(
                            run.disk,
                            run.first as usize,
                            run.span,
                            Priority::Client,
                        )?
                        .wait()?;
                }
            }
            for &(off, blk) in &bucket[run.blocks.clone()] {
                let at = (off - run.first) as usize * us;
                chunks[blk as usize]
                    .take()
                    .expect("block read once")
                    .copy_from_slice(&data[at..at + us]);
            }
        }
        Ok(())
    }

    /// Reads `buf.len() / unit_size` consecutive logical blocks
    /// starting at `start` (buf length must be a block multiple).
    ///
    /// Blocks on healthy disks are gathered into per-disk contiguous
    /// runs and fetched with one vectored backend call per run — a
    /// sequential scan costs one call per touched disk, not one per
    /// block. Blocks on failed disks are erasure-decoded with **one**
    /// decode per degraded stripe, however many of its lost units the
    /// request covers.
    ///
    /// Each block is read atomically; the call as a whole is not one
    /// atomic snapshot — blocks may interleave with concurrent writes.
    pub fn read_blocks(&self, start: usize, buf: &mut [u8]) -> Result<(), StoreError> {
        if buf.is_empty() {
            return Ok(());
        }
        if !buf.len().is_multiple_of(self.unit_size) {
            return Err(StoreError::BadBufferSize { expected: self.unit_size, got: buf.len() });
        }
        let us = self.unit_size;
        let n = buf.len() / us;
        self.check_addr(start)?;
        self.check_addr(start + n - 1)?;
        if n == 1 {
            return self.read_block(start, buf);
        }
        let st = self.state_read();
        // The batch records one `Read` span; blocks served by stripe
        // decode move their units to `DegradedRead` at the end.
        let t = self.metrics.begin(OpKind::Read, self.events.active());
        // Fed under every policy — see `read_block`.
        if t.mix_due {
            self.metrics.note_mix(true);
        }
        self.events.emit(|| {
            let m = st.world.smap.locate_full(start);
            Event::OpBegin {
                kind: OpKind::Read,
                addr: start as u64,
                blocks: n as u32,
                stripe: m.stripe as u32,
                disk: m.unit.disk,
            }
        });

        // Disjoint per-block views of `buf`, consumed as the cache
        // probe, the coalesced runs, and the decodes claim them.
        let mut chunks: Vec<Option<&mut [u8]>> = buf.chunks_mut(us).map(Some).collect();

        // Partition the request into per-physical-disk buckets of
        // `(offset, block index)`; blocks dirty in the write-back
        // cache are served from memory here, and degraded blocks
        // queue for stripe decode. Sequential scans produce
        // already-sorted buckets (offsets grow with the address
        // within each disk), so the sort below is a no-op check in
        // the common case.
        let check_cache = self.cache.maybe_dirty();
        let any_failed = !st.failed.is_empty();
        let mut by_disk: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.backend.disks()];
        let mut unsorted = false;
        let mut degraded: Vec<(usize, usize)> = Vec::new();
        for (i, slot) in chunks.iter_mut().enumerate() {
            let addr = start + i;
            let m = st.world.smap.locate_full(addr);
            if check_cache {
                let (shard, key, j, _) = self.cache_coords(&st, &m, addr);
                let chunk = slot.as_mut().expect("unclaimed block");
                if self.cache.read_into(shard, key, j, chunk) {
                    *slot = None;
                    continue;
                }
            }
            if any_failed && st.failed.contains(m.unit.disk as usize) {
                degraded.push((i, addr));
            } else {
                let bucket = &mut by_disk[st.redirect[m.unit.disk as usize]];
                if bucket.last().is_some_and(|&(last, _)| m.unit.offset < last) {
                    unsorted = true;
                }
                bucket.push((m.unit.offset, i as u32));
            }
        }

        // Coalesce each bucket into runs, *bridging* the small
        // parity-unit holes a data scan never wants (the hole is read
        // into a discard buffer so the run stays one backend call).
        // Each run is one scatter read delivered straight into the
        // caller's buffer — no staging copy.
        let mut holes: Vec<u8> = Vec::new();
        let bridge = if self.backend.prefers_gap_bridging() { READ_GAP_BRIDGE } else { 0 };
        let verify = self.integrity.verifying();
        if let Some(eng) = self.engine_if_on() {
            // Submit-and-complete: all runs on all disks in flight at
            // once, completions drained as they land.
            self.read_runs_engine(
                &st,
                &eng,
                start,
                bridge,
                verify,
                &mut by_disk,
                unsorted,
                &mut chunks,
            )?;
        } else {
            for (disk, bucket) in by_disk.iter_mut().enumerate() {
                if bucket.is_empty() {
                    continue;
                }
                if unsorted {
                    bucket.sort_unstable();
                }
                let mut s = 0;
                while s < bucket.len() {
                    let mut e = s + 1;
                    while e < bucket.len() && (bucket[e].0 - bucket[e - 1].0 - 1) as usize <= bridge
                    {
                        e += 1;
                    }
                    let first = bucket[s].0;
                    if e - s == 1 {
                        let bi = bucket[s].1 as usize;
                        let chunk = chunks[bi].take().expect("block read once");
                        self.integrity.retrying(disk, || {
                            self.backend.read_unit(disk, first as usize, &mut *chunk)
                        })?;
                        if verify && !self.integrity.sums.check(disk, first as usize, chunk) {
                            // Latent corruption: repair the stripe in
                            // place (exclusive lock — none held here),
                            // then re-read. A second mismatch means the
                            // repair could not restore the unit.
                            self.repair_addr(&st, start + bi)?;
                            self.integrity.retrying(disk, || {
                                self.backend.read_unit(disk, first as usize, &mut *chunk)
                            })?;
                            if !self.integrity.sums.check(disk, first as usize, chunk) {
                                return Err(StoreError::ChecksumMismatch {
                                    disk,
                                    offset: first as usize,
                                });
                            }
                        }
                    } else {
                        let span = (bucket[e - 1].0 - first + 1) as usize;
                        holes.resize((span - (e - s)) * us, 0);
                        let mut hole_rest = holes.as_mut_slice();
                        // Per-run Vec by necessity: its elements borrow
                        // `holes`, whose next-iteration resize forbids a
                        // hoisted, reused vector. One small alloc per run
                        // (not per block).
                        let mut bufs: Vec<&mut [u8]> = Vec::with_capacity(2 * (e - s));
                        let mut at = first;
                        for entry in &bucket[s..e] {
                            if entry.0 > at {
                                let gap = (entry.0 - at) as usize * us;
                                let (hole, rest) = std::mem::take(&mut hole_rest).split_at_mut(gap);
                                hole_rest = rest;
                                bufs.push(hole);
                            }
                            bufs.push(chunks[entry.1 as usize].take().expect("block read once"));
                            at = entry.0 + 1;
                        }
                        self.integrity.retrying(disk, || {
                            self.backend.read_units_scatter(disk, first as usize, &mut bufs)
                        })?;
                        if verify {
                            // Verify while the run's slices are still in
                            // scope (they were `take()`n from `chunks`);
                            // the whole run checks in **one**
                            // checksum-table pass (`check_many`), not a
                            // lock acquisition per unit. On mismatch,
                            // repair the owning stripes and re-read the
                            // same run into the same buffers.
                            for pass in 0..2 {
                                let mut bad: Vec<usize> = Vec::new();
                                {
                                    let mut pairs: Vec<(usize, &[u8])> = Vec::with_capacity(e - s);
                                    let mut vi = 0usize;
                                    let mut vat = first;
                                    for entry in &bucket[s..e] {
                                        if entry.0 > vat {
                                            vi += 1; // the gap's discard slice
                                        }
                                        pairs.push((entry.0 as usize, &*bufs[vi]));
                                        vi += 1;
                                        vat = entry.0 + 1;
                                    }
                                    self.integrity.sums.check_many(disk, &pairs, &mut bad);
                                }
                                if bad.is_empty() {
                                    break;
                                }
                                if pass == 1 {
                                    return Err(StoreError::ChecksumMismatch {
                                        disk,
                                        offset: bad[0],
                                    });
                                }
                                for &off in &bad {
                                    let &(_, blk) = bucket[s..e]
                                        .iter()
                                        .find(|&&(o, _)| o as usize == off)
                                        .expect("bad offset belongs to this run");
                                    self.repair_addr(&st, start + blk as usize)?;
                                }
                                self.integrity.retrying(disk, || {
                                    self.backend.read_units_scatter(disk, first as usize, &mut bufs)
                                })?;
                            }
                        }
                    }
                    s = e;
                }
            }
        }

        // Degraded blocks, grouped by (copy, stripe): consecutive lost
        // addresses of one stripe are adjacent in address order, so a
        // one-entry memo of the last decode suffices to decode each
        // degraded stripe exactly once. The degraded stripes' shards
        // are held shared for the whole decode loop (two-phase, sorted
        // — same discipline as the writers' exclusive acquisition).
        if !degraded.is_empty() {
            let mut shards: Vec<usize> = degraded
                .iter()
                .map(|&(_, addr)| {
                    self.locks.shard_of(st.world.smap.copy_of(addr), st.world.smap.stripe_of(addr))
                })
                .collect();
            sort_shard_set(&mut shards);
            let mut scratch = self.scratch.get();
            // Two attempts: a checksum mismatch on a survivor read
            // aborts the decode loop, the affected stripes are
            // repaired (exclusive locks, taken with the shared guards
            // released), and the loop reruns — blocks already served
            // are `None` in `chunks` and skip.
            let mut attempt = 0;
            let res: Result<(), StoreError> = loop {
                let res = {
                    let _guards = self.locks.lock_sorted_shared(&shards);
                    (|| {
                        let mut decoded_key: Option<(usize, usize)> = None;
                        let mut solved: Decoded = [None, None];
                        for &(bi, addr) in &degraded {
                            if chunks[bi].is_none() {
                                continue;
                            }
                            let si = st.world.smap.stripe_of(addr);
                            let copy = st.world.smap.copy_of(addr);
                            if decoded_key != Some((copy, si)) {
                                let shift = (copy * st.world.layout.size()) as u32;
                                solved = self.decode_stripe(&st, si, shift, &[], &mut scratch)?;
                                decoded_key = Some((copy, si));
                            }
                            let slot = st.world.smap.slot_of(addr);
                            let which = solved
                                .iter()
                                .flatten()
                                .find(|(s, _)| *s == slot)
                                .map(|&(_, w)| w)
                                .ok_or_else(|| {
                                    StoreError::Corrupt(format!(
                                        "decode of stripe {si} skipped slot {slot}"
                                    ))
                                })?;
                            chunks[bi]
                                .take()
                                .expect("block decoded once")
                                .copy_from_slice(scratch.decoded(which));
                        }
                        Ok(())
                    })()
                };
                match res {
                    Err(StoreError::ChecksumMismatch { .. }) if attempt == 0 => {
                        attempt = 1;
                        let mut seen: Option<(usize, usize)> = None;
                        let mut rep: Result<(), StoreError> = Ok(());
                        for &(_, addr) in &degraded {
                            let copy = st.world.smap.copy_of(addr);
                            let si = st.world.smap.stripe_of(addr);
                            if seen == Some((copy, si)) {
                                continue;
                            }
                            seen = Some((copy, si));
                            let shard = self.locks.shard_of(copy, si);
                            let (_g, _) = self.locks.lock_one_counting(shard);
                            if let Err(e) = self.repair_stripe_locked(&st, copy, si) {
                                rep = Err(e);
                                break;
                            }
                        }
                        if let Err(e) = rep {
                            break Err(e);
                        }
                    }
                    r => break r,
                }
            };
            self.scratch.put(scratch);
            res?;
        }
        let n_degraded = degraded.len() as u64;
        let ns = self.metrics.finish(t, n as u64 - n_degraded).unwrap_or(0);
        self.metrics.add_units(OpKind::DegradedRead, n_degraded);
        self.events.emit(|| Event::OpEnd {
            kind: OpKind::Read,
            addr: start as u64,
            blocks: n as u32,
            ns,
        });
        drop(st);
        if self.integrity.health.has_pending() {
            self.apply_pending_health();
        }
        Ok(())
    }

    /// Writes consecutive logical blocks starting at `start`,
    /// recognizing runs that cover a whole stripe's data units and
    /// writing those with freshly computed parity and **zero reads**
    /// (the paper's Condition-5 large-write optimization); partial
    /// stripes fall back to read-modify-write.
    ///
    /// Full-stripe units (data and parity alike) are not written one
    /// by one: they accumulate in a write plan that is sorted into
    /// per-disk contiguous runs and issued as one vectored backend
    /// call per run, so a sequential bulk write costs one call per
    /// touched disk.
    ///
    /// Takes `&self`: every stripe the batch touches is locked up
    /// front, in ascending shard order (two-phase ordered
    /// acquisition), so concurrent batches — even overlapping ones —
    /// cannot deadlock and each touched stripe's parity update is
    /// serialized.
    pub fn write_blocks(&self, start: usize, data: &[u8]) -> Result<(), StoreError> {
        if data.is_empty() {
            return Ok(());
        }
        if !data.len().is_multiple_of(self.unit_size) {
            return Err(StoreError::BadBufferSize { expected: self.unit_size, got: data.len() });
        }
        let n = data.len() / self.unit_size;
        self.check_addr(start)?;
        self.check_addr(start + n - 1)?;
        let st = self.state_read();
        if st.reshape.is_some() {
            // During a reshape every write must also land in the
            // target world; the batch planner's full-stripe fast path
            // has no per-block hook, so the batch degrades to the
            // single-block path (which dual-lands each block). The
            // pessimization lasts exactly as long as the migration.
            drop(st);
            for (i, block) in data.chunks(self.unit_size).enumerate() {
                self.write_block(start + i, block)?;
            }
            return Ok(());
        }
        let w = st.world.clone();
        let per_copy = w.smap.data_units_per_copy();
        // Phase one of two-phase locking: the full shard set of every
        // stripe the batch will touch, ascending, before any byte
        // moves. Stripe data ranges are contiguous in address space,
        // so the walk costs one map lookup per *stripe*, not per
        // block.
        let mut shards: Vec<usize> = Vec::new();
        let mut a = start;
        while a < start + n {
            let m = w.smap.locate_full(a);
            shards.push(self.locks.shard_of(m.copy, m.stripe));
            let (lo, k_data) = w.smap.stripe_data_range(m.stripe);
            a = m.copy * per_copy + lo + k_data;
        }
        let stripe_count = shards.len();
        sort_shard_set(&mut shards);
        let wb = self.cache.is_write_back();
        // Batch-level kind: any failure in the array classes the whole
        // batch degraded (per-stripe classification would walk every
        // stripe's members before any byte moves).
        let kind = if st.failed.is_empty() { OpKind::Write } else { OpKind::DegradedWrite };
        let t = self.metrics.begin(kind, self.events.active());
        // Fed under every policy — see `read_block`.
        if t.mix_due {
            self.metrics.note_mix(false);
        }
        self.events.emit(|| {
            let m = w.smap.locate_full(start);
            Event::OpBegin {
                kind,
                addr: start as u64,
                blocks: n as u32,
                stripe: m.stripe as u32,
                disk: m.unit.disk,
            }
        });
        {
            let _guards = self.locks.lock_sorted(&shards);
            // Loaded *after* the batch's shard locks are held: a
            // writer that dirtied one of our stripes released its
            // (same) shard lock before we acquired it, so its
            // dirty-count bump is visible here — and no concurrent
            // writer can dirty our stripes from now on. Hoisting this
            // above the locks would race a just-cached write and skip
            // the supersede bookkeeping below.
            let check_cache = self.cache.maybe_dirty();
            // Cache entries fully overwritten by this batch: their
            // bytes are superseded, but the entries must stay visible
            // to lock-free readers until the plan's backend writes
            // land (removing earlier would expose pre-write backend
            // bytes for still-dirty units). Collected here, removed
            // after each plan flush.
            let mut superseded: Vec<(usize, u64)> = Vec::new();
            // The deferred full-stripe plan: per-physical-disk buckets
            // of `(offset, source)` unit writes, where a source
            // indexes either the caller's data or the appended parity
            // staging below. Safe to defer past the interleaved RMW
            // writes because every planned unit belongs to a
            // fully-covered stripe, which no RMW of this call (always
            // a *partially*-covered stripe) can touch. The shard walk
            // above counted the batch's stripes, so the plan can be
            // sized exactly once up front.
            let parity_units = self.scheme.parity_per_stripe();
            let mut plan = WritePlan::with_capacity(
                self.backend.disks(),
                stripe_count,
                n + stripe_count * parity_units,
                parity_units * self.unit_size,
            );
            // Call-bound backends (files, disks, networks) want the
            // plan as large as possible — every deferred unit widens
            // the per-disk gather runs. Memory-speed backends gain
            // nothing past a cache-resident window: flushing every
            // ~64 stripes keeps the source chunks L2-hot when the
            // gather re-reads them, instead of streaming the whole
            // span twice through last-level cache.
            let window = if self.backend.prefers_gap_bridging() { usize::MAX } else { 64 };
            let mut planned_stripes = 0usize;
            let mut i = 0usize;
            while i < n {
                let addr = start + i;
                let m = w.smap.locate_full(addr);
                let (lo, k_data) = w.smap.stripe_data_range(m.stripe);
                // A stripe's data addresses are one contiguous run
                // within the copy, so full coverage is a head-aligned
                // run of k_data blocks.
                let covers_stripe = addr - m.copy * per_copy == lo && n - i >= k_data;
                if covers_stripe {
                    if check_cache {
                        superseded.push((
                            self.locks.shard_of(m.copy, m.stripe),
                            stripe_key(m.copy, m.stripe),
                        ));
                    }
                    self.plan_full_stripe(
                        &st,
                        addr,
                        &data[i * self.unit_size..(i + k_data) * self.unit_size],
                        i,
                        &mut plan,
                    )?;
                    i += k_data;
                    planned_stripes += 1;
                    if planned_stripes >= window {
                        self.flush_write_plan(&mut plan, data)?;
                        plan.reset();
                        planned_stripes = 0;
                        for &(shard, key) in &superseded {
                            self.cache.remove_flushed(shard, key);
                        }
                        superseded.clear();
                    }
                } else if wb {
                    // Partial stripe under write-back: defer the RMW
                    // into the stripe cache (zero backend I/O here).
                    let shard = self.locks.shard_of(m.copy, m.stripe);
                    let (_, key, j, k_data) = self.cache_coords(&st, &m, addr);
                    self.cache.write(
                        shard,
                        key,
                        k_data,
                        j,
                        &data[i * self.unit_size..(i + 1) * self.unit_size],
                    );
                    i += 1;
                } else {
                    self.write_block_locked(
                        &st,
                        addr,
                        &data[i * self.unit_size..(i + 1) * self.unit_size],
                    )?;
                    i += 1;
                }
            }
            self.flush_write_plan(&mut plan, data)?;
            for &(shard, key) in &superseded {
                self.cache.remove_flushed(shard, key);
            }
        }
        // Eviction after the batch's shard locks are released (one
        // victim shard at a time — see `evict_over_limit`).
        if wb {
            self.evict_over_limit(&st)?;
        }
        let ns = self.metrics.finish(t, n as u64).unwrap_or(0);
        self.events.emit(|| Event::OpEnd { kind, addr: start as u64, blocks: n as u32, ns });
        drop(st);
        if self.integrity.health.has_pending() {
            self.apply_pending_health();
        }
        Ok(())
    }

    /// Computes parity for one fully-covered stripe (addresses `start
    /// .. start + k_data`, verified by the caller) and appends its
    /// unit writes — no reads — to the deferred plan. `base` is the
    /// block index of `stripe_data` within the caller's full buffer.
    fn plan_full_stripe(
        &self,
        st: &ArrayState,
        start: usize,
        stripe_data: &[u8],
        base: usize,
        plan: &mut WritePlan,
    ) -> Result<(), StoreError> {
        let us = self.unit_size;
        let w = st.world.clone();
        let head = w.smap.locate_full(start);
        let (si, copy) = (head.stripe, head.copy);
        let shift = (copy * w.layout.size()) as u32;
        let units = w.layout.stripes()[si].units();
        let (p_slot, q_slot) = w.smap.parity_slots(si);
        let is_pq = self.scheme == ParityScheme::PQ;
        // Parity accumulates directly in the plan's staging area — no
        // scratch round trip, no copy. Destructured so the parity
        // borrow and the bucket pushes coexist. P is *copy*-initialized
        // from the first data unit (then XORs the rest), which saves a
        // zero-fill plus one accumulation pass per stripe; Q has no
        // such shortcut (its first term is already coefficient-scaled).
        let WritePlan { by_disk, parity, unsorted } = plan;
        let p_idx = parity.len() / us;
        parity.extend_from_slice(&stripe_data[..us]);
        if is_pq {
            parity.resize((p_idx + 2) * us, 0);
        }
        let (acc_p, acc_q) = parity[p_idx * us..].split_at_mut(us);
        let mut push = |disk: usize, offset: u32, src: WriteSrc| {
            let bucket = &mut by_disk[disk];
            if bucket.last().is_some_and(|&(last, _)| offset < last) {
                *unsorted = true;
            }
            bucket.push((offset, src));
        };
        // Hoisted failure gate: on a healthy array (the overwhelmingly
        // common case) none of the per-unit failed-set probes below
        // run at all.
        let any_failed = !st.failed.is_empty();
        for (j, chunk) in stripe_data.chunks_exact(us).enumerate() {
            let m = w.smap.locate_full(start + j);
            debug_assert_eq!(m.stripe, si);
            if j > 0 {
                xor_slice(acc_p, chunk);
            }
            if is_pq {
                gf256::mul_add_slice(acc_q, chunk, gf256::gen_pow(m.slot));
            }
            let u = m.unit;
            if any_failed && st.failed.contains(u.disk as usize) {
                // The lost unit's content is encoded in the new parity;
                // nothing to write on the failed disk, whose medium is
                // now stale (rebuild-only). With a rebuild racing, the
                // fresh value goes to the spare instead.
                self.mark_stale(st, u.disk as usize, copy, si);
                if let Some(spare) = Self::spare_for(st, u.disk as usize) {
                    push(spare, u.offset, WriteSrc::data(base + j));
                }
                continue;
            }
            push(st.redirect[u.disk as usize], u.offset, WriteSrc::data(base + j));
        }
        let p_unit = units[p_slot];
        if any_failed && st.failed.contains(p_unit.disk as usize) {
            self.mark_stale(st, p_unit.disk as usize, copy, si);
            if let Some(spare) = Self::spare_for(st, p_unit.disk as usize) {
                push(spare, p_unit.offset + shift, WriteSrc::parity(p_idx));
            }
        } else {
            push(st.redirect[p_unit.disk as usize], p_unit.offset + shift, WriteSrc::parity(p_idx));
        }
        if let Some(qs) = q_slot {
            let q_unit = units[qs];
            if any_failed && st.failed.contains(q_unit.disk as usize) {
                self.mark_stale(st, q_unit.disk as usize, copy, si);
                if let Some(spare) = Self::spare_for(st, q_unit.disk as usize) {
                    push(spare, q_unit.offset + shift, WriteSrc::parity(p_idx + 1));
                }
            } else {
                push(
                    st.redirect[q_unit.disk as usize],
                    q_unit.offset + shift,
                    WriteSrc::parity(p_idx + 1),
                );
            }
        }
        Ok(())
    }

    /// Walks the deferred unit writes disk by disk, coalescing
    /// contiguous offsets into one gather (vectored) backend call per
    /// run straight from the source slices — no staging copy. Write
    /// runs never bridge holes: writing a unit nobody asked for would
    /// corrupt it.
    pub(crate) fn flush_write_plan(
        &self,
        plan: &mut WritePlan,
        data: &[u8],
    ) -> Result<(), StoreError> {
        let us = self.unit_size;
        let WritePlan { by_disk, parity, unsorted } = plan;
        let parity: &[u8] = parity;
        let unsorted = *unsorted;
        let src = |s: WriteSrc| {
            let i = (s.0 & !WriteSrc::PARITY) as usize;
            if s.0 & WriteSrc::PARITY != 0 {
                &parity[i * us..(i + 1) * us]
            } else {
                &data[i * us..(i + 1) * us]
            }
        };
        let verify = self.integrity.verifying();
        if let Some(eng) = self.engine_if_on() {
            // Submit-and-complete: every per-disk run goes into the
            // queues up front (owned copies of the staged bytes), so
            // all touched disks write concurrently; checksums are
            // recorded per run once its completion lands.
            use crate::engine::Priority;
            let mut waits: Vec<(usize, u32, usize, crate::engine::Completion)> = Vec::new();
            for (disk, bucket) in by_disk.iter_mut().enumerate() {
                if bucket.is_empty() {
                    continue;
                }
                if unsorted {
                    bucket.sort_unstable_by_key(|&(offset, _)| offset);
                }
                let mut i = 0;
                while i < bucket.len() {
                    let offset = bucket[i].0;
                    let mut j = i + 1;
                    while j < bucket.len() && bucket[j].0 == offset + (j - i) as u32 {
                        j += 1;
                    }
                    let mut run = Vec::with_capacity((j - i) * us);
                    for e in &bucket[i..j] {
                        run.extend_from_slice(src(e.1));
                    }
                    let c =
                        eng.submit_write_gather(disk, offset as usize, run, Priority::Client)?;
                    waits.push((disk, offset, i, c));
                    i = j;
                }
            }
            let mut first_err: Option<StoreError> = None;
            for (disk, offset, i, c) in waits {
                match c.wait() {
                    Ok(_) if verify => {
                        // Re-derive the run's unit list from the plan
                        // (still intact) to record its checksums.
                        let bucket = &by_disk[disk];
                        let mut t = 0usize;
                        while i + t < bucket.len() && bucket[i + t].0 == offset + t as u32 {
                            self.integrity.sums.record(
                                disk,
                                offset as usize + t,
                                src(bucket[i + t].1),
                            );
                            t += 1;
                        }
                    }
                    Ok(_) => {}
                    Err(e) => {
                        // Keep draining the rest of the batch — no
                        // token is abandoned — and report the first
                        // failure.
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
            return match first_err {
                Some(e) => Err(e),
                None => Ok(()),
            };
        }
        let mut srcs: Vec<&[u8]> = Vec::new();
        for (disk, bucket) in by_disk.iter_mut().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            if unsorted {
                bucket.sort_unstable_by_key(|&(offset, _)| offset);
            }
            let mut i = 0;
            while i < bucket.len() {
                let offset = bucket[i].0;
                let mut j = i + 1;
                while j < bucket.len() && bucket[j].0 == offset + (j - i) as u32 {
                    j += 1;
                }
                if j - i == 1 {
                    let b = src(bucket[i].1);
                    self.integrity
                        .retrying(disk, || self.backend.write_unit(disk, offset as usize, b))?;
                    if verify {
                        self.integrity.sums.record(disk, offset as usize, b);
                    }
                } else {
                    srcs.clear();
                    srcs.extend(bucket[i..j].iter().map(|e| src(e.1)));
                    self.integrity.retrying(disk, || {
                        self.backend.write_units_gather(disk, offset as usize, &srcs)
                    })?;
                    if verify {
                        for (t, b) in srcs.iter().enumerate() {
                            self.integrity.sums.record(disk, offset as usize + t, b);
                        }
                    }
                }
                i = j;
            }
        }
        Ok(())
    }

    /// Replays a [`Trace`] (block-granular ops plus fail/restore/
    /// rebuild fault events) against the store. Write payloads are a
    /// deterministic function of `(addr, op index)`, so two replays
    /// produce identical on-disk content.
    pub fn replay(&self, trace: &Trace) -> Result<ReplayStats, StoreError> {
        let mut stats = ReplayStats::default();
        let mut buf = vec![0u8; self.unit_size];
        for (i, op) in trace.ops.iter().enumerate() {
            match *op {
                TraceOp::Read { addr, len } => {
                    buf.resize(len * self.unit_size, 0);
                    self.read_blocks(addr, &mut buf)?;
                    stats.reads += 1;
                    stats.blocks_read += len;
                }
                TraceOp::Write { addr, len } => {
                    let mut data = vec![0u8; len * self.unit_size];
                    for (j, chunk) in data.chunks_exact_mut(self.unit_size).enumerate() {
                        fill_pattern(addr + j, i as u64, chunk);
                    }
                    self.write_blocks(addr, &data)?;
                    stats.writes += 1;
                    stats.blocks_written += len;
                }
                TraceOp::Fail { disk } => {
                    self.fail_disk(disk)?;
                    stats.disks_failed += 1;
                }
                TraceOp::Restore { disk } => {
                    self.restore_disk(disk)?;
                    stats.disks_restored += 1;
                }
                TraceOp::Rebuild { spare } => {
                    crate::Rebuilder::default().rebuild(self, spare)?;
                    stats.rebuilds += 1;
                }
            }
        }
        Ok(stats)
    }

    /// Scans every stripe and verifies its parity invariants — the P
    /// unit equals the XOR of the data units, and under P+Q the Q unit
    /// equals the `GF(2^8)` weighted sum. Failed disks make
    /// verification impossible; call on a healthy array. Each stripe
    /// is scanned under its shard lock, so the scan may run against
    /// live traffic — every stripe is checked at some consistent
    /// point, not all at the same one.
    pub fn verify_parity(&self) -> Result<(), StoreError> {
        let st = self.state_read();
        if let Some(f) = st.failed.first() {
            return Err(StoreError::DiskFailed(f));
        }
        // Drain the write-back cache first so the scan covers the
        // current contents, not the pre-cache snapshot. (The backend
        // satisfies the invariants either way — deferred writes touch
        // no backend byte until their combined flush — but verifying
        // flushed bytes is the stronger statement.)
        self.flush_cache_locked(&st)?;
        let w = st.world.clone();
        let size = w.layout.size();
        let is_pq = self.scheme == ParityScheme::PQ;
        let mut acc_p = vec![0u8; self.unit_size];
        let mut acc_q = vec![0u8; self.unit_size];
        let mut tmp = vec![0u8; self.unit_size];
        for copy in 0..w.copies {
            let shift = (copy * size) as u32;
            for (si, stripe) in w.layout.stripes().iter().enumerate() {
                let _g = self.locks.lock_one_shared(self.locks.shard_of(copy, si));
                let (p_slot, q_slot) = w.smap.parity_slots(si);
                acc_p.fill(0);
                acc_q.fill(0);
                for (slot, u) in stripe.units().iter().enumerate() {
                    let phys = StripeUnit { disk: u.disk, offset: u.offset + shift };
                    // Raw read: this scan checks the parity equations
                    // themselves, so a corrupt unit should surface as
                    // the named `ParityMismatch`, not a checksum error
                    // (scrub is the checksum-aware repair pass).
                    self.read_phys_raw(&st, phys, &mut tmp)?;
                    if Some(slot) == q_slot {
                        xor_slice(&mut acc_q, &tmp);
                    } else {
                        xor_slice(&mut acc_p, &tmp);
                        if is_pq && slot != p_slot {
                            gf256::mul_add_slice(&mut acc_q, &tmp, gf256::gen_pow(slot));
                        }
                    }
                }
                if acc_p.iter().any(|&b| b != 0) {
                    return Err(StoreError::ParityMismatch { stripe: si, copy, parity: "P (XOR)" });
                }
                if is_pq && acc_q.iter().any(|&b| b != 0) {
                    return Err(StoreError::ParityMismatch {
                        stripe: si,
                        copy,
                        parity: "Q (GF(2^8))",
                    });
                }
            }
        }
        Ok(())
    }
}

/// Deterministic block payload used by [`BlockStore::replay`].
pub fn fill_pattern(addr: usize, salt: u64, buf: &mut [u8]) {
    let mut x =
        (addr as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ salt.wrapping_mul(0xd1b54a32d192ed03);
    for chunk in buf.chunks_mut(8) {
        x ^= x >> 32;
        x = x.wrapping_mul(0xff51afd7ed558ccd);
        x ^= x >> 29;
        let b = x.to_le_bytes();
        chunk.copy_from_slice(&b[..chunk.len()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let t = StripeLockTable::new();
        for copy in 0..8 {
            for stripe in 0..100 {
                let s = t.shard_of(copy, stripe);
                assert!(s < StripeLockTable::SHARDS);
                assert_eq!(s, t.shard_of(copy, stripe), "deterministic");
            }
        }
        // Distinct (copy, stripe) keys spread over many shards.
        let mut hit = [false; StripeLockTable::SHARDS];
        for stripe in 0..256 {
            hit[t.shard_of(0, stripe)] = true;
        }
        assert!(hit.iter().filter(|&&h| h).count() > StripeLockTable::SHARDS / 2);
    }

    #[test]
    fn sort_shard_set_dedups() {
        let mut s = vec![5, 1, 5, 3, 1];
        sort_shard_set(&mut s);
        assert_eq!(s, [1, 3, 5]);
    }
}
