//! Multi-threaded stress harness: N client threads of mixed
//! read/write traffic against one [`BlockStore`], with bit-exact
//! verification — optionally degraded, optionally racing a live
//! rebuild.
//!
//! The harness partitions the logical address space into one
//! contiguous region per thread. Each thread hammers its own region
//! with a seeded-random mix of single-block and batched reads and
//! writes; because regions are block-disjoint, every read can be
//! checked bit-for-bit against the expected pattern *while other
//! threads mutate neighboring blocks of the very same stripes* —
//! region boundaries (and every stripe's parity units) are shared, so
//! parity maintenance races exactly where the stripe-sharded lock
//! table has to serialize it.
//!
//! Expected content is a pure function of `(addr, salt)`
//! ([`crate::fill_pattern`]) with one salt slot per block, so the
//! shadow image costs 8 bytes per block instead of a full copy and
//! the final sweep re-derives every byte.
//!
//! Reproducibility follows the fault-injection harness: every run
//! derives from one seed, `PDL_STRESS_SEED=<n>` replays exactly one
//! seed, `PDL_STRESS_THREADS`/`PDL_STRESS_OPS` override the shape,
//! and every panic message carries the seed.

use crate::backend::Backend;
use crate::cache::CachePolicy;
use crate::error::StoreError;
use crate::maintenance::{ContinuousScrubConfig, ContinuousScrubReport, ReshapeDriverConfig};
use crate::obs::{RebuildProgress, StatsSnapshot};
use crate::rebuild::{RebuildReport, Rebuilder};
use crate::reshape::{ReshapeOptions, ReshapeReport};
use crate::store::{fill_pattern, BlockStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How (and whether) a rebuild participates in a stress run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RebuildMode {
    /// No rebuild: a degraded store stays degraded.
    None,
    /// Rebuild the failed disk onto the given physical spare *while*
    /// the client threads run — the write-through race this PR's
    /// locking exists to win.
    Racing {
        /// Physical backend disk receiving the reconstruction.
        spare: usize,
    },
    /// Rebuild after the client threads join (so the final
    /// [`BlockStore::verify_parity`] can run on a healthy array).
    AtEnd {
        /// Physical backend disk receiving the reconstruction.
        spare: usize,
    },
    /// Grow the array *while* the client threads run: an online
    /// [`BlockStore::add_disks`] reshape races the traffic — dual
    /// writes, batch migration, and the commit flip all overlap live
    /// reads and writes.
    ReshapeAdd {
        /// How many unmapped physical spares join the array.
        added: usize,
    },
    /// Shrink the array while the client threads run: an online
    /// [`BlockStore::remove_disks`] reshape of the highest-numbered
    /// logical disks races the traffic.
    ReshapeRemove {
        /// How many of the highest-numbered logical disks leave.
        removed: usize,
    },
    /// The full background-maintenance gauntlet: a *continuous*
    /// paced scrub ([`BlockStore::run_continuous_scrub`]) runs for
    /// the whole client phase while a background reshape *driver*
    /// ([`BlockStore::drive_reshape`]) grows the array — scrub
    /// yields to reshape, both pace against the live traffic, and
    /// the final sweep still demands bit-exact content.
    BackgroundMaintenance {
        /// How many unmapped physical spares join the array.
        added: usize,
    },
}

/// Shape of a stress run.
#[derive(Clone, Copy, Debug)]
pub struct StressConfig {
    /// Client threads (each owns one contiguous block region).
    pub threads: usize,
    /// Operations per thread.
    pub ops_per_thread: usize,
    /// Master seed; thread `t` derives its RNG from `seed ^ t`.
    pub seed: u64,
    /// Largest batched read/write, in blocks.
    pub batch_max: usize,
    /// Smallest read/write, in blocks (default 1). Raising it to
    /// `batch_max` makes every op a full-size batch — the shape the
    /// async-engine benches measure, where each op hands the
    /// submission queues a whole band of per-disk runs.
    pub batch_min: usize,
    /// Fraction of operations that are reads (the rest write).
    pub read_fraction: f64,
    /// Fail this logical disk (and wipe its physical medium) before
    /// the threads start, so traffic runs degraded.
    pub fail_disk: Option<usize>,
    /// Whether a rebuild races the traffic, follows it, or is absent.
    pub rebuild: RebuildMode,
    /// Verify contents bit-for-bit: every read during the run, plus a
    /// whole-store sweep at the end. Disabling turns the harness into
    /// a pure traffic generator for throughput timing (the sweep
    /// assumes a store the harness wrote from scratch, which a reused
    /// bench store is not); the parity-invariant check still runs.
    pub verify_reads: bool,
    /// Cache policy installed on the store before the run (the
    /// `PDL_CACHE` environment variable overrides it, so the CI
    /// concurrency matrix replays every schedule with write-back
    /// combining on).
    pub cache: CachePolicy,
    /// When set, the async I/O engine runs for the duration of the
    /// stress run with this configuration (started before the
    /// traffic, stopped after the verification sweep) — every hot
    /// path then goes through the per-disk submission queues. The
    /// `PDL_ENGINE` / `PDL_ENGINE_DEPTH` / `PDL_ENGINE_WORKERS`
    /// environment variables override it, so the CI engine matrix
    /// replays every schedule through the queues at several depths.
    pub engine: Option<crate::engine::EngineConfig>,
}

impl Default for StressConfig {
    fn default() -> Self {
        StressConfig {
            threads: 4,
            ops_per_thread: 400,
            seed: 0xdecaf,
            batch_max: 8,
            batch_min: 1,
            read_fraction: 0.5,
            fail_disk: None,
            rebuild: RebuildMode::None,
            verify_reads: true,
            cache: CachePolicy::WriteThrough,
            engine: None,
        }
    }
}

impl StressConfig {
    /// Applies the `PDL_STRESS_SEED` / `PDL_STRESS_THREADS` /
    /// `PDL_STRESS_OPS` / `PDL_CACHE` environment overrides (the CI
    /// concurrency matrix sets the thread count and cache policy; a
    /// failure replays with the seed).
    pub fn with_env_overrides(mut self) -> Self {
        if let Ok(s) = std::env::var("PDL_STRESS_SEED") {
            self.seed = s.parse().expect("PDL_STRESS_SEED must be a u64");
        }
        if let Ok(s) = std::env::var("PDL_STRESS_THREADS") {
            self.threads = s.parse().expect("PDL_STRESS_THREADS must be a usize");
        }
        if let Ok(s) = std::env::var("PDL_STRESS_OPS") {
            self.ops_per_thread = s.parse().expect("PDL_STRESS_OPS must be a usize");
        }
        if let Ok(s) = std::env::var("PDL_CACHE") {
            self.cache = CachePolicy::decode(&s)
                .expect("PDL_CACHE must be writethrough, writeback, or writeback:<max_dirty>");
        }
        if let Ok(s) = std::env::var("PDL_ENGINE") {
            let on: u32 = s.parse().expect("PDL_ENGINE must be 0 or 1");
            self.engine = if on != 0 { Some(crate::engine::EngineConfig::default()) } else { None };
        }
        if let Ok(s) = std::env::var("PDL_ENGINE_DEPTH") {
            let depth = s.parse().expect("PDL_ENGINE_DEPTH must be a usize");
            let mut ecfg = self.engine.unwrap_or_default();
            ecfg.target_depth = depth;
            self.engine = Some(ecfg);
        }
        if let Ok(s) = std::env::var("PDL_ENGINE_WORKERS") {
            let workers = s.parse().expect("PDL_ENGINE_WORKERS must be a usize");
            let mut ecfg = self.engine.unwrap_or_default();
            ecfg.workers = workers;
            self.engine = Some(ecfg);
        }
        self
    }
}

/// What a stress run did and how fast it went.
#[derive(Clone, Debug)]
pub struct StressReport {
    /// Client threads that ran.
    pub threads: usize,
    /// Read operations issued (single + batched).
    pub reads: usize,
    /// Write operations issued (single + batched).
    pub writes: usize,
    /// Blocks transferred by reads.
    pub blocks_read: usize,
    /// Blocks transferred by writes.
    pub blocks_written: usize,
    /// Bytes per block (for throughput math).
    pub unit_size: usize,
    /// Wall-clock time of the client phase (excludes setup and the
    /// final verification sweep; includes a racing rebuild, which
    /// overlaps the traffic by design).
    pub elapsed: Duration,
    /// The rebuild's report, when one ran.
    pub rebuild: Option<RebuildReport>,
    /// The reshape's report, when a racing reshape mode ran.
    pub reshape: Option<ReshapeReport>,
    /// The continuous scrubber's accumulated report, when
    /// [`RebuildMode::BackgroundMaintenance`] ran.
    pub scrub: Option<ContinuousScrubReport>,
    /// The store's observability snapshot, taken after the traffic
    /// (and any rebuild and cache drain) but before the verification
    /// sweep — so its counters describe the workload, not the checker.
    pub stats: StatsSnapshot,
    /// Live [`crate::BlockStore::rebuild_progress`] samples polled
    /// *while* a [`RebuildMode::Racing`] rebuild overlapped the
    /// traffic — each carries the per-disk read distribution, so the
    /// (k−1)/(v−1) claim is checkable mid-flight. Empty otherwise.
    pub rebuild_progress: Vec<RebuildProgress>,
}

impl StressReport {
    /// Aggregate read throughput across all threads, MB/s.
    pub fn read_mb_per_s(&self) -> f64 {
        (self.blocks_read * self.unit_size) as f64 / self.elapsed.as_secs_f64().max(1e-9) / 1e6
    }

    /// Aggregate write throughput across all threads, MB/s.
    pub fn write_mb_per_s(&self) -> f64 {
        (self.blocks_written * self.unit_size) as f64 / self.elapsed.as_secs_f64().max(1e-9) / 1e6
    }

    /// Serializes [`StressReport::stats`] as compact JSON — the
    /// `stats.json` payload the concurrency tests and CI artifacts
    /// persist.
    pub fn stats_json(&self) -> String {
        serde_json::to_string(&self.stats).expect("StatsSnapshot serializes")
    }

    /// Writes [`StressReport::stats_json`] to `path`, creating parent
    /// directories as needed.
    pub fn write_stats_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.stats_json())
    }
}

/// Per-thread traffic counters, merged into the [`StressReport`].
#[derive(Clone, Copy, Debug, Default)]
struct ThreadTally {
    reads: usize,
    writes: usize,
    blocks_read: usize,
    blocks_written: usize,
}

/// Drives `cfg.threads` client threads of seeded mixed traffic
/// against `store`, then sweeps the whole store verifying every block
/// bit-for-bit and (on a healthy array) the parity invariants.
///
/// # Panics
///
/// Panics — with the seed in the message — on any content mismatch,
/// so test and CI failures are replayable via `PDL_STRESS_SEED`.
pub fn run<B: Backend + 'static>(
    store: &BlockStore<B>,
    cfg: &StressConfig,
) -> Result<StressReport, StoreError> {
    let blocks = store.blocks();
    let unit = store.unit_size();
    store.set_cache_policy(cfg.cache)?;
    // Engine session: the whole run — prefill, traffic, maintenance,
    // verification sweep — goes through the submission queues; the
    // guard stops the engine on every exit path (including seeded
    // panics) so a reused bench store reverts to the sync path.
    struct EngineGuard<'a, B: Backend + 'static>(&'a BlockStore<B>);
    impl<B: Backend + 'static> Drop for EngineGuard<'_, B> {
        fn drop(&mut self) {
            self.0.stop_engine();
        }
    }
    let _engine_session = cfg.engine.map(|ecfg| {
        store.start_engine(ecfg);
        EngineGuard(store)
    });
    let threads = cfg.threads.max(1).min(blocks);
    let per_region = blocks / threads;
    assert!(per_region > 0, "store too small for {threads} threads");

    // One salt slot per block: 0 = untouched, else the block reads
    // back as fill_pattern(addr, salt). Only a block's owning thread
    // stores to its slot, so relaxed atomics are plain ownership
    // hand-off, not synchronization.
    let salts: Vec<AtomicU64> = (0..blocks).map(|_| AtomicU64::new(0)).collect();

    // Verification demands known content, and the store may arrive
    // with any (a reopened array, a previous run): prefill every
    // block with the seed pattern — batched full-stripe writes, off
    // the clock — so the harness is self-contained.
    if cfg.verify_reads {
        let span = 256.min(blocks);
        let mut data = vec![0u8; span * unit];
        let mut at = 0;
        while at < blocks {
            let n = span.min(blocks - at);
            for (j, chunk) in data[..n * unit].chunks_exact_mut(unit).enumerate() {
                fill_pattern(at + j, PREFILL_SALT, chunk);
            }
            store.write_blocks(at, &data[..n * unit])?;
            at += n;
        }
        for s in &salts {
            s.store(PREFILL_SALT, Ordering::Relaxed);
        }
    }

    let reshaping = matches!(
        cfg.rebuild,
        RebuildMode::ReshapeAdd { .. }
            | RebuildMode::ReshapeRemove { .. }
            | RebuildMode::BackgroundMaintenance { .. }
    );
    if let Some(disk) = cfg.fail_disk {
        // Drain the write cache before killing the medium: wiping a
        // disk that deferred writes still assume intact would feed
        // zeroes into their flush-time parity deltas. (Real failures
        // have no wipe step — `fail_disk` itself flushes first.)
        store.flush()?;
        if !reshaping {
            // Kill the medium: every correct byte of this disk must
            // come from the erasure decode from here on. Reshape modes
            // keep the medium: the engine's documented failure model
            // is *logical* failure (reads decode, but the disk's
            // target region still accepts dual writes and migration
            // output, which is what makes restore-after-commit valid)
            // — media death during a reshape is out of scope.
            store.backend().wipe_disk(store.physical_disk(disk))?;
        }
        store.fail_disk(disk)?;
    }

    let rebuild_result: Mutex<Option<Result<RebuildReport, StoreError>>> = Mutex::new(None);
    let reshape_result: Mutex<Option<Result<ReshapeReport, StoreError>>> = Mutex::new(None);
    let scrub_result: Mutex<Option<Result<ContinuousScrubReport, StoreError>>> = Mutex::new(None);
    let progress_samples: Mutex<Vec<RebuildProgress>> = Mutex::new(Vec::new());
    let rebuild_done = AtomicBool::new(false);
    let scrub_stop = AtomicBool::new(false);
    let start = Instant::now();
    let tallies: Vec<ThreadTally> = std::thread::scope(|s| {
        if let RebuildMode::Racing { spare } = cfg.rebuild {
            let rebuild_result = &rebuild_result;
            let rebuild_done = &rebuild_done;
            s.spawn(move || {
                // Let the traffic threads take the field first so the
                // rebuild genuinely races in-flight writes.
                std::thread::sleep(Duration::from_millis(2));
                // Poison-proof locking throughout the harness: if a
                // client thread panics (its message carries the seed),
                // dying on `PoisonError` in a racing thread would
                // replace that seeded repro line with a useless
                // "poisoned lock" panic.
                *rebuild_result.lock().unwrap_or_else(|e| e.into_inner()) =
                    Some(Rebuilder::default().rebuild(store, spare));
                rebuild_done.store(true, Ordering::Release);
            });
            // Poll live rebuild progress while the rebuild overlaps
            // the traffic: each sample carries the per-disk read
            // distribution at that instant.
            let progress_samples = &progress_samples;
            s.spawn(move || {
                while !rebuild_done.load(Ordering::Acquire) {
                    if let Some(p) = store.rebuild_progress() {
                        progress_samples.lock().unwrap_or_else(|e| e.into_inner()).push(p);
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
            });
        }
        match cfg.rebuild {
            RebuildMode::ReshapeAdd { added } => {
                let reshape_result = &reshape_result;
                s.spawn(move || {
                    // Let the traffic threads take the field first so
                    // the whole reshape — begin, migration batches,
                    // commit flip — genuinely races in-flight writes.
                    std::thread::sleep(Duration::from_millis(2));
                    let mapped: Vec<usize> =
                        (0..store.v()).map(|d| store.physical_disk(d)).collect();
                    let joining: Vec<usize> = (0..store.backend().disks())
                        .filter(|p| !mapped.contains(p))
                        .take(added)
                        .collect();
                    assert_eq!(
                        joining.len(),
                        added,
                        "[stress seed {}] not enough unmapped spares to add",
                        cfg.seed
                    );
                    *reshape_result.lock().unwrap_or_else(|e| e.into_inner()) =
                        Some(store.add_disks(&joining));
                });
            }
            RebuildMode::ReshapeRemove { removed } => {
                let reshape_result = &reshape_result;
                s.spawn(move || {
                    std::thread::sleep(Duration::from_millis(2));
                    let v = store.v();
                    let leaving: Vec<usize> = (v - removed..v).collect();
                    *reshape_result.lock().unwrap_or_else(|e| e.into_inner()) =
                        Some(store.remove_disks(&leaving));
                });
            }
            RebuildMode::BackgroundMaintenance { added } => {
                // Continuous scrub: paced passes for the entire client
                // phase, stopped (and joined by the scope) after the
                // client threads finish.
                let scrub_result = &scrub_result;
                let scrub_stop = &scrub_stop;
                s.spawn(move || {
                    let cfg = ContinuousScrubConfig {
                        idle_ms: 1,
                        load_budget: 0.3,
                        ..ContinuousScrubConfig::default()
                    };
                    *scrub_result.lock().unwrap_or_else(|e| e.into_inner()) =
                        Some(store.run_continuous_scrub(&cfg, scrub_stop));
                });
                // Reshape driver: fine-grained batches so migration,
                // dual writes, scrub yields, and the commit flip all
                // interleave with the traffic many times over.
                let reshape_result = &reshape_result;
                s.spawn(move || {
                    std::thread::sleep(Duration::from_millis(2));
                    let mapped: Vec<usize> =
                        (0..store.v()).map(|d| store.physical_disk(d)).collect();
                    let joining: Vec<usize> = (0..store.backend().disks())
                        .filter(|p| !mapped.contains(p))
                        .take(added)
                        .collect();
                    assert_eq!(
                        joining.len(),
                        added,
                        "[stress seed {}] not enough unmapped spares to add",
                        cfg.seed
                    );
                    let res = store
                        .begin_add_disks_with(
                            &joining,
                            &ReshapeOptions { batch_stripes: 1, ..ReshapeOptions::default() },
                        )
                        .and_then(|()| {
                            store.drive_reshape(&ReshapeDriverConfig {
                                batches_per_step: 1,
                                sleep_us: 200,
                            })
                        })
                        .map(|rep| rep.report.expect("a never-stopped driver runs to commit"));
                    *reshape_result.lock().unwrap_or_else(|e| e.into_inner()) = Some(res);
                });
            }
            _ => {}
        }
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let salts = &salts;
                let lo = t * per_region;
                // The last region absorbs the remainder.
                let hi = if t + 1 == threads { blocks } else { lo + per_region };
                s.spawn(move || client_thread(store, cfg, t, lo, hi, salts))
            })
            .collect();
        let tallies = handles
            .into_iter()
            .map(|h| {
                // Re-raise the client thread's own panic payload — it
                // is the message that names the failing seed/thread/op.
                h.join().unwrap_or_else(|p| std::panic::resume_unwind(p))
            })
            .collect();
        // Release the continuous scrubber *inside* the scope — the
        // scope's implicit join would otherwise wait on a loop that
        // only stops when told to.
        scrub_stop.store(true, Ordering::Release);
        tallies
    });
    let elapsed = start.elapsed();

    let rebuild = match cfg.rebuild {
        RebuildMode::None => None,
        RebuildMode::Racing { .. } => {
            let r = rebuild_result
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("racing rebuild ran");
            Some(r?)
        }
        RebuildMode::AtEnd { spare } => Some(Rebuilder::default().rebuild(store, spare)?),
        RebuildMode::ReshapeAdd { .. }
        | RebuildMode::ReshapeRemove { .. }
        | RebuildMode::BackgroundMaintenance { .. } => None,
    };
    let reshape = if reshaping {
        let r = reshape_result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("racing reshape ran");
        Some(r.unwrap_or_else(|e| {
            panic!("[stress seed {} threads {threads}] reshape: {e}", cfg.seed)
        }))
    } else {
        None
    };
    let scrub = if matches!(cfg.rebuild, RebuildMode::BackgroundMaintenance { .. }) {
        let r = scrub_result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("continuous scrub ran");
        Some(r.unwrap_or_else(|e| {
            panic!("[stress seed {} threads {threads}] continuous scrub: {e}", cfg.seed)
        }))
    } else {
        None
    };

    // Drain the write-back cache off the clock: the final sweep then
    // verifies the *flushed* bytes end to end (combined parity
    // updates included), not just the in-memory cache contents.
    if cfg.cache.is_write_back() {
        store.flush()?;
    }

    // Snapshot the observability counters before the verification
    // sweep so the report's stats describe the workload itself.
    let stats = store.stats();

    // Final sweep: every block, bit for bit, against the pattern its
    // salt implies — then the parity invariants when the array is
    // healthy enough to check them.
    if cfg.verify_reads {
        let mut got = vec![0u8; unit];
        let mut want = vec![0u8; unit];
        for (addr, salt) in salts.iter().enumerate() {
            store.read_block(addr, &mut got)?;
            expected_block(addr, salt.load(Ordering::Relaxed), &mut want);
            assert_eq!(
                got, want,
                "[stress seed {} threads {threads}] final sweep: block {addr} corrupted",
                cfg.seed
            );
        }
    }
    // Pure-traffic (bench) mode skips this too: a DelayBackend pays
    // the emulated service time for every verification read, and the
    // bench verifies once per curve instead of once per sample.
    if cfg.verify_reads && !store.is_degraded() {
        store.verify_parity()?;
    }

    let mut report = StressReport {
        threads,
        reads: 0,
        writes: 0,
        blocks_read: 0,
        blocks_written: 0,
        unit_size: unit,
        elapsed,
        rebuild,
        reshape,
        scrub,
        stats,
        rebuild_progress: progress_samples.into_inner().unwrap_or_else(|e| e.into_inner()),
    };
    for t in tallies {
        report.reads += t.reads;
        report.writes += t.writes;
        report.blocks_read += t.blocks_read;
        report.blocks_written += t.blocks_written;
    }
    Ok(report)
}

/// Salt of the prefill pass — below every client salt (those carry
/// the thread id in bits 40+ and the op index in bits 16+).
const PREFILL_SALT: u64 = 1;

/// The expected content of `addr` given its salt slot (0 = untouched
/// by this run; only possible with verification off).
fn expected_block(addr: usize, salt: u64, out: &mut [u8]) {
    if salt == 0 {
        out.fill(0);
    } else {
        fill_pattern(addr, salt, out);
    }
}

/// One client thread: seeded mixed traffic over its own block region
/// `[lo, hi)`, verifying every read when `cfg.verify_reads`.
fn client_thread<B: Backend>(
    store: &BlockStore<B>,
    cfg: &StressConfig,
    t: usize,
    lo: usize,
    hi: usize,
    salts: &[AtomicU64],
) -> ThreadTally {
    let unit = store.unit_size();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (t as u64).wrapping_mul(0x9e3779b97f4a7c15));
    let mut tally = ThreadTally::default();
    let batch_max = cfg.batch_max.clamp(1, hi - lo);
    let batch_min = cfg.batch_min.clamp(1, batch_max);
    let mut buf = vec![0u8; batch_max * unit];
    let mut want = vec![0u8; unit];
    let ctx = |op: usize| format!("[stress seed {} thread {t} op {op}]", cfg.seed);
    for op in 0..cfg.ops_per_thread {
        let batched = rng.random_bool(0.3);
        let len = if batched { rng.random_range(batch_min..=batch_max) } else { batch_min };
        let addr = rng.random_range(lo..=hi - len);
        if rng.random_bool(cfg.read_fraction) {
            let out = &mut buf[..len * unit];
            store.read_blocks(addr, out).unwrap_or_else(|e| panic!("{} read: {e}", ctx(op)));
            if cfg.verify_reads {
                for (j, chunk) in out.chunks_exact(unit).enumerate() {
                    expected_block(addr + j, salts[addr + j].load(Ordering::Relaxed), &mut want);
                    assert_eq!(chunk, &want[..], "{} block {} corrupted", ctx(op), addr + j);
                }
            }
            tally.reads += 1;
            tally.blocks_read += len;
        } else {
            // Unique nonzero salts: thread in the high bits, op and
            // batch position below (batch_max is well under 2^16).
            let salt_base = ((t as u64 + 1) << 40) | ((op as u64 + 1) << 16);
            let data = &mut buf[..len * unit];
            for (j, chunk) in data.chunks_exact_mut(unit).enumerate() {
                fill_pattern(addr + j, salt_base + j as u64, chunk);
            }
            store.write_blocks(addr, data).unwrap_or_else(|e| panic!("{} write: {e}", ctx(op)));
            for j in 0..len {
                salts[addr + j].store(salt_base + j as u64, Ordering::Relaxed);
            }
            tally.writes += 1;
            tally.blocks_written += len;
        }
    }
    tally
}
