//! First-class observability: the metrics registry, structured event
//! tracing, rebuild progress, and degraded-window accounting.
//!
//! The paper's central claim — a declustered rebuild reads
//! `(k−1)/(v−1)` of every surviving disk — is a *measurable*
//! property, and so is everything else the store promises (combined
//! cache flushes, call coalescing, bounded degraded windows). This
//! module is the measurement surface:
//!
//! * [`Metrics`] — a lock-light registry owned by every
//!   [`crate::BlockStore`]: relaxed atomic op/unit counters and
//!   fixed-bucket log2 latency histograms per [`OpKind`], cheap
//!   enough to stay enabled in benchmarks (no allocation, no lock on
//!   the hot path; latencies are *sampled* — see
//!   [`Metrics::SAMPLE_EVERY`] — so the common op pays one relaxed
//!   `fetch_add`, not two `Instant` reads).
//! * [`EventSink`] — a pluggable structured-event trait, with
//!   [`TraceLog`] as the bundled ring-buffer implementation. No sink
//!   is installed by default, so event emission costs one relaxed
//!   load per op until [`crate::BlockStore::set_event_sink`] opts in.
//! * [`RebuildProgress`] — live snapshots of a running rebuild
//!   (units done/total, per-disk read distribution, ETA from the
//!   moving rate), so the `(k−1)/(v−1)` claim is observable *while*
//!   the rebuild races traffic, not only from its final report.
//! * Degraded-window accounting — wall-clock and op-count duration
//!   of every window the array spends with exactly one or exactly
//!   two erasures, from `fail_disk` to rebuild-complete (or
//!   restore).
//! * [`StatsSnapshot`] — one serde-serializable view over all of the
//!   above plus the per-disk backend counters and cache statistics,
//!   returned by [`crate::BlockStore::stats`], dumped as `stats.json`
//!   by the benches and the stress harness, and rendered as text by
//!   [`render_stats`].
//!
//! The per-disk unit/call counters that the backends used to keep in
//! private duplicated structs are unified here as [`DiskCounters`]
//! — one implementation shared by [`crate::MemBackend`] and
//! [`crate::FileBackend`] and surfaced through the snapshot.

use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The operation kinds the registry distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Healthy block read (single or batched).
    Read,
    /// Block write (single or batched), all stripe members alive.
    Write,
    /// Read served by erasure-decoding a lost unit.
    DegradedRead,
    /// Write whose stripe crosses a failed disk.
    DegradedWrite,
    /// Surviving-member reads issued by a rebuild chunk.
    RebuildRead,
    /// Reconstructed units landed on a spare disk.
    SpareWrite,
    /// A write-back cache flush batch.
    CacheFlush,
    /// A reshape migration batch copied into the target world.
    ReshapeCopy,
    /// Surviving-unit reads issued by a scrub pass or a read-repair
    /// decode (the integrity layer's read traffic).
    ScrubRead,
    /// Units rewritten in place by read-repair or the scrubber.
    RepairWrite,
}

impl OpKind {
    /// Number of distinct kinds (the registry's table width).
    pub const COUNT: usize = 10;

    /// Every kind, in registry order.
    pub const ALL: [OpKind; Self::COUNT] = [
        OpKind::Read,
        OpKind::Write,
        OpKind::DegradedRead,
        OpKind::DegradedWrite,
        OpKind::RebuildRead,
        OpKind::SpareWrite,
        OpKind::CacheFlush,
        OpKind::ReshapeCopy,
        OpKind::ScrubRead,
        OpKind::RepairWrite,
    ];

    fn idx(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in [`StatsSnapshot`].
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::DegradedRead => "degraded_read",
            OpKind::DegradedWrite => "degraded_write",
            OpKind::RebuildRead => "rebuild_read",
            OpKind::SpareWrite => "spare_write",
            OpKind::CacheFlush => "cache_flush",
            OpKind::ReshapeCopy => "reshape_copy",
            OpKind::ScrubRead => "scrub_read",
            OpKind::RepairWrite => "repair_write",
        }
    }
}

/// A fixed-bucket log2 latency histogram: bucket `i` counts
/// observations in `[2^i, 2^(i+1))` nanoseconds (bucket 0 also takes
/// 0 ns; the last bucket takes everything ≥ 2^31 ns ≈ 2.1 s).
/// Recording is one relaxed `fetch_add`.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; Self::BUCKETS],
}

impl LatencyHistogram {
    /// Bucket count; covers sub-microsecond memcpys up to multi-second
    /// stalls in one fixed-size table.
    pub const BUCKETS: usize = 32;

    /// Records one latency observation.
    pub fn record(&self, ns: u64) {
        let b = (63 - (ns | 1).leading_zeros() as usize).min(Self::BUCKETS - 1);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the bucket counts out.
    pub fn snapshot(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }
}

/// One thread's private op/unit counters, interleaved
/// `[ops, extra_units]` per [`OpKind`].
///
/// **Single-writer cells.** Only the owning thread mutates its cells,
/// and it does so with plain load-then-store on relaxed atomics — no
/// read-modify-write, so the uncontended hot path costs an L1 hit
/// instead of a locked bus cycle (~0.4 ns vs ~7 ns on a typical
/// x86-64). Snapshots read the cells from other threads; a mid-flight
/// read may lag the writer by its in-flight increment, which is
/// within the registry's stated point-in-time consistency, and any
/// quiescent read (e.g. after joining worker threads) is exact
/// because the join gives happens-before.
///
/// Units are stored as a *delta* against the op count: every finished
/// op contributes `units - 1` to `extra_units` (zero — and therefore
/// no second store — for the dominant single-block case), and a
/// snapshot reconstructs the exact total as `ops + extra_units` in
/// wrapping arithmetic. The wrapping is sound: the true unit total is
/// non-negative, so the mod-2⁶⁴ sum is exact.
#[derive(Debug)]
struct ThreadCounts {
    cells: [AtomicU64; OpKind::COUNT * 2 + 1],
}

/// Index of the bypassed-write tally in [`ThreadCounts::cells`] (the
/// slot after the per-kind `[ops, extra_units]` pairs). Bypass is a
/// store-level routing decision driven by the registry's own mix
/// estimator, so it is counted here — with the same single-writer
/// load+store — rather than in the cache's shared counters, keeping
/// the bypassed write path free of atomic RMWs.
const BYPASS_SLOT: usize = OpKind::COUNT * 2;

impl Default for ThreadCounts {
    fn default() -> Self {
        ThreadCounts { cells: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl ThreadCounts {
    /// Counts one op of `kind` moving `1 + extra` units. Owning
    /// thread only.
    fn bump(&self, kind: OpKind, extra: u64) {
        let i = kind.idx() * 2;
        let ops = &self.cells[i];
        ops.store(ops.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        if extra != 0 {
            let eu = &self.cells[i + 1];
            eu.store(eu.load(Ordering::Relaxed).wrapping_add(extra), Ordering::Relaxed);
        }
    }

    /// Adds units without an op (batched-path accounting). Owning
    /// thread only.
    fn add_extra(&self, kind: OpKind, extra: u64) {
        let eu = &self.cells[kind.idx() * 2 + 1];
        eu.store(eu.load(Ordering::Relaxed).wrapping_add(extra), Ordering::Relaxed);
    }

    /// This thread's op count for `kind` (the sampling clock).
    fn ops(&self, kind: OpKind) -> u64 {
        self.cells[kind.idx() * 2].load(Ordering::Relaxed)
    }

    /// Tallies one bypassed write. Owning thread only.
    fn note_bypass(&self) {
        let c = &self.cells[BYPASS_SLOT];
        c.store(c.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
    }
}

thread_local! {
    /// The calling thread's most recently used `(registry id, cells)`
    /// pair — the one-compare fast path for [`Metrics::my_counts`].
    /// The raw pointer is dereferenced only after the id matches the
    /// live registry asking, which proves the backing [`Arc`] (held in
    /// that registry's `threads` list) is still alive.
    static HOT_COUNTS: Cell<(u64, *const ThreadCounts)> =
        const { Cell::new((0, std::ptr::null())) };
    /// Every `(registry id, cells)` pair this thread has registered,
    /// scanned only on a `HOT_COUNTS` miss (i.e. when one thread
    /// alternates between stores). Bounded: evicting a live entry is
    /// harmless because re-registration just adds a fresh cell set and
    /// snapshots sum them all.
    static ALL_COUNTS: RefCell<Vec<(u64, *const ThreadCounts)>> =
        const { RefCell::new(Vec::new()) };
}

/// Cap on `ALL_COUNTS` entries per thread (16 bytes each).
const THREAD_COUNTS_CAP: usize = 512;

/// A pending latency measurement handed out by [`Metrics::begin`] and
/// closed by [`Metrics::finish`]. `start` is `None` when this op was
/// not sampled (the overwhelmingly common case).
#[derive(Debug)]
pub struct OpTimer {
    kind: OpKind,
    start: Option<Instant>,
    /// The opening thread's counter cells, stashed here so
    /// [`Metrics::finish`] skips a second thread-local lookup. Null
    /// when the registry was off at `begin` (the op is not counted).
    /// Only dereferenced by `finish` on the same thread, while the
    /// registry (which pins the allocation) is borrowed.
    counts: *const ThreadCounts,
    /// True on the 1-in-[`MIX_SAMPLE`](Metrics) op whose caller
    /// should feed [`Metrics::note_mix`].
    pub(crate) mix_due: bool,
}

/// One window level's accumulated degraded-time totals.
#[derive(Clone, Copy, Debug, Default)]
struct WindowTotals {
    windows: u64,
    ns: u64,
    ops: u64,
}

/// Occupancy clock for the degraded-window split: while the array has
/// `level + 1` failed disks, `open[level]`-style state tracks when
/// that occupancy began and the op count at entry. Mutated only under
/// the store's exclusive state guard (failure transitions), so a
/// plain mutex is fine — this is never on the data path.
#[derive(Debug, Default)]
struct DegradedClock {
    /// `Some((since, ops_at_entry))` while ≥1 disk is failed; the
    /// current erasure count lives in `level`.
    open: Option<(Instant, u64)>,
    level: usize,
    /// `totals[0]`: time with exactly one erasure; `totals[1]`: two.
    totals: [WindowTotals; 2],
}

/// The store-owned metrics registry (see the [module docs](self)).
///
/// All data-path updates are relaxed atomics; reads produce a
/// point-in-time [`StatsSnapshot`] that is internally *approximately*
/// consistent under concurrent traffic (each counter is exact, the
/// set is not one linearization point). Disable with
/// [`Metrics::set_enabled`] to measure the registry's own overhead.
#[derive(Debug)]
pub struct Metrics {
    enabled: AtomicBool,
    /// This registry's process-unique id — the key threads use to
    /// find their private [`ThreadCounts`]. Never reused, so a stale
    /// thread-local entry for a dropped registry can never match.
    id: u64,
    /// Every thread's registered counter cells. Summed by snapshots;
    /// pushed to once per (thread, registry). The `Arc`s pin the cell
    /// allocations for the registry's lifetime, which is what makes
    /// the raw pointers threads cache valid.
    threads: Mutex<Vec<Arc<ThreadCounts>>>,
    /// Sampled per-kind latency histograms (1-in-`SAMPLE_EVERY`).
    hist: [LatencyHistogram; OpKind::COUNT],
    /// Recent read/write mix with periodic halving decay — the
    /// admission signal for the cache's read-mostly bypass.
    recent_reads: AtomicU64,
    recent_writes: AtomicU64,
    /// Stripe-shard lock acquisitions that found the shard contended.
    lock_contention: AtomicU64,
    /// Cached [`Metrics::read_mostly`] verdict, recomputed by every
    /// [`Metrics::note_mix`] sample so the write hot path pays one
    /// relaxed load instead of re-deriving the ratio per op.
    read_heavy: AtomicBool,
    degraded: Mutex<DegradedClock>,
}

/// Source of [`Metrics::id`]; starts at 1 so the null thread-local
/// cache entry `(0, null)` can never match a live registry.
static NEXT_METRICS_ID: AtomicU64 = AtomicU64::new(1);

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            enabled: AtomicBool::new(true),
            id: NEXT_METRICS_ID.fetch_add(1, Ordering::Relaxed),
            threads: Mutex::new(Vec::new()),
            hist: Default::default(),
            recent_reads: AtomicU64::new(0),
            recent_writes: AtomicU64::new(0),
            lock_contention: AtomicU64::new(0),
            read_heavy: AtomicBool::new(false),
            degraded: Mutex::new(DegradedClock::default()),
        }
    }
}

impl Metrics {
    /// Latency sampling period: one op in this many (per thread and
    /// kind) pays the two `Instant` reads that feed the histogram.
    /// Counters are exact; histograms are a 1-in-64 sample — the
    /// trade that keeps the registry cheap enough to stay on in
    /// benchmarks (a clock read costs ~40 ns on a VM, several times
    /// the rest of the begin/finish pair).
    pub const SAMPLE_EVERY: u64 = 64;

    /// The caller-side sampling period for [`Metrics::note_mix`]:
    /// [`OpTimer::mix_due`] is set on one op in this many, so the mix
    /// estimator costs the hot path nothing on the other 63.
    pub(crate) const MIX_SAMPLE: u64 = 64;

    /// Decay window for the recent read/write mix, in **samples**
    /// (halved whenever the combined count crosses this); at
    /// 1-in-[`MIX_SAMPLE`](Self::MIX_SAMPLE) sampling this spans
    /// ~16k ops.
    const MIX_WINDOW: u64 = 256;

    /// Minimum recent samples (~1024 ops) before
    /// [`Metrics::read_mostly`] trusts the mix.
    const MIX_MIN: u64 = 16;

    /// Turns the registry on or off. Off, every data-path hook is one
    /// relaxed load — the control used to gate the ≤5% overhead claim.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
    }

    /// Whether the registry is recording.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The calling thread's private counter cells for this registry:
    /// one thread-local read and an id compare on the fast path, a
    /// registration (allocate + registry push) the first time a
    /// thread touches this registry.
    #[inline]
    fn my_counts(&self) -> &ThreadCounts {
        let (id, ptr) = HOT_COUNTS.get();
        if id == self.id {
            // The id matched a live registry (ids are never reused),
            // so the Arc pinning `ptr` is still in `self.threads`.
            return unsafe { &*ptr };
        }
        self.register_thread()
    }

    /// Slow path of [`Metrics::my_counts`]: find or create this
    /// thread's cells and promote them to the hot slot.
    #[cold]
    fn register_thread(&self) -> &ThreadCounts {
        ALL_COUNTS.with(|all| {
            let mut all = all.borrow_mut();
            let ptr = match all.iter().find(|(id, _)| *id == self.id) {
                Some(&(_, p)) => p,
                None => {
                    let cells = Arc::new(ThreadCounts::default());
                    let p = Arc::as_ptr(&cells);
                    self.threads.lock().unwrap().push(cells);
                    if all.len() >= THREAD_COUNTS_CAP {
                        all.swap_remove(0);
                    }
                    all.push((self.id, p));
                    p
                }
            };
            HOT_COUNTS.set((self.id, ptr));
            unsafe { &*ptr }
        })
    }

    /// Opens an op: decides (from this thread's op count for the
    /// kind) whether this op's latency is sampled and whether its
    /// caller owes a [`Metrics::note_mix`] sample. The count itself
    /// is bumped in [`Metrics::finish`] with a single-writer
    /// load+store — the whole begin/finish pair performs **no atomic
    /// RMW** on the unsampled hot path. `force_timing` (set when an
    /// event sink wants span durations) samples unconditionally.
    pub fn begin(&self, kind: OpKind, force_timing: bool) -> OpTimer {
        if !self.enabled() {
            return OpTimer { kind, start: None, counts: std::ptr::null(), mix_due: false };
        }
        let counts = self.my_counts();
        let seen = counts.ops(kind);
        let sampled = force_timing || seen.is_multiple_of(Self::SAMPLE_EVERY);
        OpTimer {
            kind,
            start: sampled.then(Instant::now),
            counts: counts as *const ThreadCounts,
            mix_due: seen.is_multiple_of(Self::MIX_SAMPLE),
        }
    }

    /// Closes an op opened by [`Metrics::begin`]: counts it, adds the
    /// units it moved and, when sampled, records the latency. Ops
    /// that error between `begin` and `finish` are not counted.
    /// Returns the elapsed nanoseconds when timed (for event-span
    /// emission).
    pub fn finish(&self, t: OpTimer, units: u64) -> Option<u64> {
        if t.counts.is_null() {
            return None;
        }
        // Stashed by `begin` on this thread; `&self` keeps the
        // backing allocation (owned by `self.threads`) alive.
        unsafe { &*t.counts }.bump(t.kind, units.wrapping_sub(1));
        t.start.map(|s| {
            let ns = s.elapsed().as_nanos() as u64;
            self.hist[t.kind.idx()].record(ns);
            ns
        })
    }

    /// Records a whole op in one call (unconditionally timed) — used
    /// by the chunked paths (rebuild chunks, cache flush batches)
    /// where per-op timing is cheap relative to the work.
    pub fn record_op(&self, kind: OpKind, units: u64, ns: u64) {
        if !self.enabled() {
            return;
        }
        self.my_counts().bump(kind, units.wrapping_sub(1));
        self.hist[kind.idx()].record(ns);
    }

    /// Adds units to a kind without opening an op — e.g. the degraded
    /// share of a batched read, accounted alongside the batch's span.
    pub fn add_units(&self, kind: OpKind, units: u64) {
        if units > 0 && self.enabled() {
            self.my_counts().add_extra(kind, units);
        }
    }

    /// Tallies one write routed around the write-back cache by the
    /// read-mostly bypass. Takes the op's open [`OpTimer`] so the
    /// tally reuses the counter cells `begin` already resolved — the
    /// bypass path pays one load+store, no thread-local lookup and no
    /// RMW. A no-op when the registry was off at `begin`.
    pub(crate) fn note_bypass(&self, t: &OpTimer) {
        if !t.counts.is_null() {
            // Same thread and liveness argument as `finish`.
            unsafe { &*t.counts }.note_bypass();
        }
    }

    /// Total writes routed around the cache by the read-mostly
    /// bypass, across all threads.
    pub fn bypassed_writes(&self) -> u64 {
        let threads = self.threads.lock().unwrap();
        threads.iter().map(|t| t.cells[BYPASS_SLOT].load(Ordering::Relaxed)).sum()
    }

    /// Ops recorded across every kind and thread — the
    /// degraded-window op clock.
    pub fn total_ops(&self) -> u64 {
        let threads = self.threads.lock().unwrap();
        OpKind::ALL.iter().map(|&k| threads.iter().map(|t| t.ops(k)).sum::<u64>()).sum()
    }

    /// Client-facing ops (reads and writes, healthy or degraded)
    /// across all threads — excludes maintenance kinds (rebuild,
    /// reshape, scrub), so maintenance pacing can measure foreground
    /// load without counting itself. Reads as zero when the registry
    /// is disabled.
    pub fn client_ops(&self) -> u64 {
        const CLIENT: [OpKind; 4] =
            [OpKind::Read, OpKind::Write, OpKind::DegradedRead, OpKind::DegradedWrite];
        let threads = self.threads.lock().unwrap();
        CLIENT.iter().map(|&k| threads.iter().map(|t| t.ops(k)).sum::<u64>()).sum()
    }

    /// Feeds the recent read/write mix estimator (decayed counters;
    /// approximate under races, which is all the admission check
    /// needs). Callers invoke this only on ops whose
    /// `OpTimer::mix_due` flag is set (1 in
    /// `Self::MIX_SAMPLE`); each sample also refreshes
    /// the cached [`Metrics::read_mostly`] verdict.
    pub fn note_mix(&self, is_read: bool) {
        if !self.enabled() {
            return;
        }
        let bumped = if is_read { &self.recent_reads } else { &self.recent_writes };
        bumped.fetch_add(1, Ordering::Relaxed);
        let mut r = self.recent_reads.load(Ordering::Relaxed);
        let mut w = self.recent_writes.load(Ordering::Relaxed);
        if r + w >= Self::MIX_WINDOW {
            r /= 2;
            w /= 2;
            self.recent_reads.store(r, Ordering::Relaxed);
            self.recent_writes.store(w, Ordering::Relaxed);
        }
        // Hysteresis: enter read-heavy at r ≥ 2w, but only *leave*
        // below r = 1.5w. A mix sitting near the 2:1 boundary (the
        // canonical 70/30 workload is 2.33:1, with sampling noise
        // straddling 2:1) would otherwise flip the verdict back and
        // forth, and every flip to read-heavy drains the write-back
        // cache — making cached slower than uncached. Sticky
        // verdicts keep the bypass decision stable across
        // interleaved passes of such workloads.
        let verdict = if r + w < Self::MIX_MIN {
            false
        } else if self.read_heavy.load(Ordering::Relaxed) {
            2 * r >= 3 * w
        } else {
            r >= 2 * w
        };
        self.read_heavy.store(verdict, Ordering::Relaxed);
    }

    /// True when recent traffic is read-dominated (reads ≥ 2× writes
    /// over the decayed window, with enough samples to mean it) — the
    /// signal behind the cache's read-mostly write-back bypass. One
    /// relaxed load: the verdict is precomputed by
    /// [`Metrics::note_mix`] samples.
    pub fn read_mostly(&self) -> bool {
        self.read_heavy.load(Ordering::Relaxed)
    }

    /// Counts one contended stripe-shard lock acquisition.
    pub fn note_lock_contention(&self) {
        self.lock_contention.fetch_add(1, Ordering::Relaxed);
    }

    /// Applies a failure-count transition `before → after` to the
    /// degraded-window clock. Called under the store's exclusive
    /// state guard; `total_ops` is the registry's op clock at the
    /// transition.
    pub fn degraded_transition(&self, before: usize, after: usize, total_ops: u64) {
        debug_assert!(before <= 2 && after <= 2 && before != after);
        let now = Instant::now();
        let mut clk = self.degraded.lock().unwrap();
        if let Some((since, ops_at)) = clk.open {
            let level = clk.level.min(2) - 1;
            let t = &mut clk.totals[level];
            t.ns += now.duration_since(since).as_nanos() as u64;
            t.ops += total_ops.saturating_sub(ops_at);
        }
        if after > 0 {
            if after > before {
                clk.totals[after.min(2) - 1].windows += 1;
            }
            clk.open = Some((now, total_ops));
        } else {
            clk.open = None;
        }
        clk.level = after;
    }

    /// Snapshot of the degraded-window totals, **including** the
    /// currently open window (so a racing rebuild's window is visible
    /// live).
    fn degraded_snapshot(&self) -> DegradedSnapshot {
        let clk = self.degraded.lock().unwrap();
        let mut totals = clk.totals;
        if let Some((since, ops_at)) = clk.open {
            let t = &mut totals[clk.level.min(2) - 1];
            t.ns += since.elapsed().as_nanos() as u64;
            t.ops += self.total_ops().saturating_sub(ops_at);
        }
        let snap =
            |t: WindowTotals| WindowSnapshot { windows: t.windows, wall_ns: t.ns, ops: t.ops };
        DegradedSnapshot { one: snap(totals[0]), two: snap(totals[1]) }
    }

    /// Builds the registry's part of a [`StatsSnapshot`].
    pub(crate) fn snapshot(&self) -> (Vec<OpStatSnapshot>, DegradedSnapshot, u64) {
        let threads = self.threads.lock().unwrap();
        let ops = OpKind::ALL
            .iter()
            .map(|&k| {
                let i = k.idx() * 2;
                let (mut ops, mut extra) = (0u64, 0u64);
                for t in threads.iter() {
                    ops = ops.wrapping_add(t.cells[i].load(Ordering::Relaxed));
                    extra = extra.wrapping_add(t.cells[i + 1].load(Ordering::Relaxed));
                }
                OpStatSnapshot {
                    kind: k.name().to_string(),
                    ops,
                    // Exact total: ops + Σ(units − 1), wrapping (see
                    // `ThreadCounts`).
                    units: ops.wrapping_add(extra),
                    latency_log2_ns: self.hist[k.idx()].snapshot(),
                }
            })
            .collect();
        drop(threads);
        (ops, self.degraded_snapshot(), self.lock_contention.load(Ordering::Relaxed))
    }
}

/// A structured store event, emitted to the installed [`EventSink`].
///
/// Which operation emits which events is documented on
/// [`crate::store`] (module docs, "Observability" section).
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// An op span opened: `addr`/`blocks` locate the request, `stripe`
    /// is the first stripe touched, `disk` the first target disk.
    OpBegin {
        /// Op kind.
        kind: OpKind,
        /// First logical block address.
        addr: u64,
        /// Blocks in the request.
        blocks: u32,
        /// First `(copy-relative)` stripe index touched.
        stripe: u32,
        /// First logical target disk.
        disk: u32,
    },
    /// The matching span close, with its measured duration.
    OpEnd {
        /// Op kind.
        kind: OpKind,
        /// First logical block address.
        addr: u64,
        /// Blocks in the request.
        blocks: u32,
        /// Span duration in nanoseconds.
        ns: u64,
    },
    /// `fail_disk` succeeded.
    DiskFailed {
        /// The failed logical disk.
        disk: u32,
        /// The store epoch after the transition.
        epoch: u64,
    },
    /// `restore_disk` succeeded.
    DiskRestored {
        /// The restored logical disk.
        disk: u32,
        /// The store epoch after the transition.
        epoch: u64,
    },
    /// A rebuild registered against live traffic.
    RebuildBegan {
        /// The failed logical disk being rebuilt.
        disk: u32,
        /// The physical spare receiving it.
        spare: u32,
        /// The store epoch after registration.
        epoch: u64,
    },
    /// A rebuild completed and the redirect flipped.
    RebuildCompleted {
        /// The rebuilt logical disk.
        disk: u32,
        /// The physical spare now serving it.
        spare: u32,
        /// The store epoch after completion.
        epoch: u64,
    },
    /// A rebuild attempt aborted; the store stays degraded.
    RebuildAborted {
        /// The store epoch after the abort.
        epoch: u64,
    },
    /// A write-back cache flush batch landed.
    CacheFlush {
        /// Stripes flushed in the batch.
        stripes: u32,
        /// Dirty units the batch carried.
        dirty_units: u32,
    },
    /// A stripe-shard lock acquisition found the shard contended
    /// (sampled from the single-stripe write path).
    LockContention {
        /// The contended shard index.
        shard: u32,
    },
    /// An online reshape (add/remove disks) registered against live
    /// traffic: migration begins, writes dual-land from here on.
    ReshapeBegan {
        /// Logical disks before the reshape.
        from_v: u32,
        /// Logical disks the target layout spans.
        to_v: u32,
        /// The store epoch after registration.
        epoch: u64,
    },
    /// A reshape migration batch completed (cursor advanced).
    ReshapeProgress {
        /// Target stripes migrated so far.
        stripes_done: u64,
        /// Total target stripes to migrate.
        stripes_total: u64,
    },
    /// A reshape committed: the store now serves the target layout.
    ReshapeCompleted {
        /// Logical disks the committed layout spans.
        to_v: u32,
        /// The store epoch after the world swap.
        epoch: u64,
    },
    /// A unit failed its checksum and was rewritten from surviving
    /// parity (read-repair or scrub repair).
    ChecksumRepair {
        /// Physical disk holding the repaired unit.
        disk: u32,
        /// Unit offset within the disk.
        offset: u64,
    },
    /// The health monitor crossed its threshold and auto-failed a
    /// disk, handing it to the rebuild machinery.
    DiskAutoFailed {
        /// The auto-failed logical disk.
        disk: u32,
        /// The `errors + repairs` score that crossed the threshold.
        score: u64,
    },
    /// A scrub pass started (or resumed from a persisted cursor).
    ScrubStarted {
        /// Stripe cursor the pass starts from (0 for a fresh pass).
        cursor: u64,
    },
    /// A scrub pass finished walking every stripe.
    ScrubCompleted {
        /// Stripes the pass verified.
        stripes: u64,
        /// Units rewritten because their checksum mismatched.
        checksum_repairs: u64,
        /// Parity units recomputed from verified data.
        parity_repairs: u64,
    },
}

/// Receives structured store events. Implementations must be cheap
/// and non-blocking — sinks run inline on the emitting thread (only
/// while installed; the default store has none and pays one relaxed
/// load per op).
pub trait EventSink: Send + Sync {
    /// Handles one event.
    fn record(&self, ev: &Event);
}

/// The bundled [`EventSink`]: a bounded in-memory ring buffer. When
/// full, the oldest event is dropped (the total recorded count keeps
/// counting), so a long run keeps the most recent history.
#[derive(Debug)]
pub struct TraceLog {
    cap: usize,
    inner: Mutex<TraceInner>,
}

#[derive(Debug, Default)]
struct TraceInner {
    recorded: u64,
    buf: VecDeque<Event>,
}

impl TraceLog {
    /// A ring holding at most `cap` events (`cap` is clamped to ≥ 1).
    pub fn with_capacity(cap: usize) -> TraceLog {
        TraceLog { cap: cap.max(1), inner: Mutex::new(TraceInner::default()) }
    }

    /// Total events ever recorded (including dropped ones).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().unwrap().recorded
    }

    /// A copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().unwrap().buf.iter().cloned().collect()
    }

    /// Drops the retained events (the recorded count is kept).
    pub fn clear(&self) {
        self.inner.lock().unwrap().buf.clear();
    }
}

impl EventSink for TraceLog {
    fn record(&self, ev: &Event) {
        let mut inner = self.inner.lock().unwrap();
        inner.recorded += 1;
        if inner.buf.len() == self.cap {
            inner.buf.pop_front();
        }
        inner.buf.push_back(ev.clone());
    }
}

/// The store's event dispatch point: holds the (optional) installed
/// sink. `active` mirrors `Some`-ness so the data path pays one
/// relaxed load when no sink is installed.
#[derive(Debug, Default)]
pub(crate) struct EventHub {
    active: AtomicBool,
    sink: Mutex<Option<Arc<dyn EventSink>>>,
}

impl std::fmt::Debug for dyn EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("EventSink")
    }
}

impl EventHub {
    pub(crate) fn set(&self, sink: Option<Arc<dyn EventSink>>) {
        let mut slot = self.sink.lock().unwrap();
        self.active.store(sink.is_some(), Ordering::Release);
        *slot = sink;
    }

    /// True when a sink is installed (one relaxed load).
    pub(crate) fn active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Builds and records the event only when a sink is installed —
    /// `f` never runs otherwise.
    pub(crate) fn emit(&self, f: impl FnOnce() -> Event) {
        if !self.active() {
            return;
        }
        let sink = self.sink.lock().unwrap().clone();
        if let Some(sink) = sink {
            sink.record(&f());
        }
    }
}

/// Tracks a running rebuild for live progress snapshots. Owned by the
/// store; started/finished under the exclusive state guard, advanced
/// by rebuild workers with one relaxed add per chunk.
#[derive(Debug, Default)]
pub(crate) struct RebuildTracker {
    active: AtomicBool,
    done: AtomicU64,
    run: Mutex<Option<RebuildRun>>,
}

#[derive(Debug)]
struct RebuildRun {
    failed: usize,
    spare: usize,
    total: u64,
    started: Instant,
    /// Per-logical-disk backend read counts at registration.
    baseline_reads: Vec<u64>,
}

impl RebuildTracker {
    pub(crate) fn start(&self, failed: usize, spare: usize, total: u64, baseline: Vec<u64>) {
        let mut run = self.run.lock().unwrap();
        self.done.store(0, Ordering::Relaxed);
        *run = Some(RebuildRun {
            failed,
            spare,
            total,
            started: Instant::now(),
            baseline_reads: baseline,
        });
        self.active.store(true, Ordering::Release);
    }

    pub(crate) fn add_done(&self, units: u64) {
        if self.active.load(Ordering::Relaxed) {
            self.done.fetch_add(units, Ordering::Relaxed);
        }
    }

    pub(crate) fn finish(&self) {
        self.active.store(false, Ordering::Release);
        *self.run.lock().unwrap() = None;
    }

    /// Builds a progress snapshot; `current_reads` are the
    /// per-logical-disk backend read counts right now (same indexing
    /// as the baseline). `None` when no rebuild is registered.
    pub(crate) fn progress(&self, current_reads: &[u64]) -> Option<RebuildProgress> {
        let run = self.run.lock().unwrap();
        let run = run.as_ref()?;
        let done = self.done.load(Ordering::Relaxed).min(run.total);
        let elapsed = run.started.elapsed();
        let elapsed_ms = elapsed.as_millis() as u64;
        // ETA from the moving rate: remaining units at the average
        // units/ms so far (0 until the first chunk lands).
        let eta_ms = ((run.total - done) * elapsed_ms.max(1)).checked_div(done).unwrap_or(0);
        let per_disk_reads: Vec<u64> = current_reads
            .iter()
            .zip(&run.baseline_reads)
            .enumerate()
            .map(|(d, (&cur, &base))| if d == run.failed { 0 } else { cur.saturating_sub(base) })
            .collect();
        let survivors = per_disk_reads.len().saturating_sub(1).max(1);
        let total_reads: u64 = per_disk_reads.iter().sum();
        let mean_read_fraction =
            if done == 0 { 0.0 } else { total_reads as f64 / survivors as f64 / done as f64 };
        Some(RebuildProgress {
            failed_disk: run.failed,
            spare_disk: run.spare,
            units_done: done,
            units_total: run.total,
            elapsed_ms,
            eta_ms,
            per_disk_reads,
            mean_read_fraction,
        })
    }
}

/// A live view of a running rebuild (see `RebuildTracker` /
/// [`crate::BlockStore::rebuild_progress`]). `per_disk_reads` counts
/// backend reads per *logical* disk since the rebuild registered —
/// with racing client traffic those reads are included, so
/// `mean_read_fraction` approximates the paper's `(k−1)/(v−1)` rather
/// than matching it exactly (the final [`crate::RebuildReport`] is
/// measured the same way).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RebuildProgress {
    /// The logical disk being rebuilt.
    pub failed_disk: usize,
    /// The physical spare receiving it.
    pub spare_disk: usize,
    /// Units reconstructed and landed so far.
    pub units_done: u64,
    /// Units the rebuild will reconstruct in total.
    pub units_total: u64,
    /// Wall-clock milliseconds since registration.
    pub elapsed_ms: u64,
    /// Estimated milliseconds to completion at the average rate so
    /// far (0 before the first chunk lands).
    pub eta_ms: u64,
    /// Backend reads per logical disk since registration (the entry
    /// for `failed_disk` is 0).
    pub per_disk_reads: Vec<u64>,
    /// Mean fraction of a surviving disk read per reconstructed unit
    /// so far — declustering predicts `(k−1)/(v−1)`.
    pub mean_read_fraction: f64,
}

/// Shared per-disk I/O counters: units transferred and backend calls,
/// one atomic `fetch_add` per backend operation. This is the single
/// counter implementation behind every bundled [`crate::Backend`]
/// (the registry's per-disk axis), replacing the per-backend private
/// duplicates.
#[derive(Debug)]
pub struct DiskCounters {
    reads: Vec<AtomicU64>,
    writes: Vec<AtomicU64>,
    read_calls: Vec<AtomicU64>,
    write_calls: Vec<AtomicU64>,
}

impl DiskCounters {
    /// Zeroed counters for `disks` disks.
    pub fn new(disks: usize) -> Self {
        let zeros = |n: usize| (0..n).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        DiskCounters {
            reads: zeros(disks),
            writes: zeros(disks),
            read_calls: zeros(disks),
            write_calls: zeros(disks),
        }
    }

    /// Records one read call transferring `units` units.
    pub fn add_read(&self, disk: usize, units: u64) {
        self.reads[disk].fetch_add(units, Ordering::Relaxed);
        self.read_calls[disk].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one write call transferring `units` units.
    pub fn add_write(&self, disk: usize, units: u64) {
        self.writes[disk].fetch_add(units, Ordering::Relaxed);
        self.write_calls[disk].fetch_add(1, Ordering::Relaxed);
    }

    /// Units read from `disk`.
    pub fn read_units(&self, disk: usize) -> u64 {
        self.reads[disk].load(Ordering::Relaxed)
    }

    /// Units written to `disk`.
    pub fn write_units(&self, disk: usize) -> u64 {
        self.writes[disk].load(Ordering::Relaxed)
    }

    /// Read calls served by `disk`.
    pub fn read_calls(&self, disk: usize) -> u64 {
        self.read_calls[disk].load(Ordering::Relaxed)
    }

    /// Write calls served by `disk`.
    pub fn write_calls(&self, disk: usize) -> u64 {
        self.write_calls[disk].load(Ordering::Relaxed)
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        for c in
            self.reads.iter().chain(&self.writes).chain(&self.read_calls).chain(&self.write_calls)
        {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// Per-kind counters in a [`StatsSnapshot`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OpStatSnapshot {
    /// [`OpKind::name`] of the kind.
    pub kind: String,
    /// Operations recorded.
    pub ops: u64,
    /// Units (blocks) moved.
    pub units: u64,
    /// Log2 latency bucket counts (see [`LatencyHistogram`]);
    /// sampled 1-in-[`Metrics::SAMPLE_EVERY`] unless a sink forced
    /// timing.
    pub latency_log2_ns: Vec<u64>,
}

/// Per-logical-disk backend counters in a [`StatsSnapshot`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DiskStatSnapshot {
    /// Logical disk index.
    pub disk: usize,
    /// Units read.
    pub read_units: u64,
    /// Units written.
    pub write_units: u64,
    /// Backend read calls.
    pub read_calls: u64,
    /// Backend write calls.
    pub write_calls: u64,
}

/// Write-back cache statistics in a [`StatsSnapshot`].
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CacheStatsSnapshot {
    /// Read probes served from a dirty cached unit.
    pub hits: u64,
    /// Read probes that fell through to the backend.
    pub misses: u64,
    /// Stripe entries created.
    pub insertions: u64,
    /// Writes absorbed into an already-dirty unit (combined RMWs).
    pub absorbed_writes: u64,
    /// Writes that skipped the cache via the read-mostly bypass.
    pub bypassed_writes: u64,
    /// Stripes flushed by over-budget eviction.
    pub evictions: u64,
    /// Stripes flushed (all causes).
    pub flushed_stripes: u64,
    /// Dirty units carried by those flushes.
    pub flushed_units: u64,
    /// Stripes dirty right now.
    pub dirty_stripes: u64,
}

/// One degraded-window level's accumulated totals.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct WindowSnapshot {
    /// Windows entered at this level.
    pub windows: u64,
    /// Wall-clock nanoseconds spent at this level (open window
    /// included).
    pub wall_ns: u64,
    /// Ops recorded while at this level.
    pub ops: u64,
}

/// Degraded-window accounting split by erasure count.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct DegradedSnapshot {
    /// Time with exactly one disk failed.
    pub one: WindowSnapshot,
    /// Time with exactly two disks failed (P+Q only).
    pub two: WindowSnapshot,
}

/// Summed I/O totals over every disk of a snapshot — the budget
/// currency of the accounting tests. Subtract two snapshots' totals
/// ([`IoTotals::since`]) to budget one operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoTotals {
    /// Units read, all disks.
    pub read_units: u64,
    /// Units written, all disks.
    pub write_units: u64,
    /// Backend read calls, all disks.
    pub read_calls: u64,
    /// Backend write calls, all disks.
    pub write_calls: u64,
}

impl IoTotals {
    /// The delta from `earlier` to `self` (saturating).
    pub fn since(&self, earlier: &IoTotals) -> IoTotals {
        IoTotals {
            read_units: self.read_units.saturating_sub(earlier.read_units),
            write_units: self.write_units.saturating_sub(earlier.write_units),
            read_calls: self.read_calls.saturating_sub(earlier.read_calls),
            write_calls: self.write_calls.saturating_sub(earlier.write_calls),
        }
    }
}

/// A point-in-time view of everything the store measures, returned by
/// [`crate::BlockStore::stats`]. Serializable with the workspace's
/// vendored serde (`serde_json::to_string` / `from_str`) — this is
/// the `stats.json` schema the benches and CI artifacts carry.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Per-op-kind counters and latency histograms.
    pub ops: Vec<OpStatSnapshot>,
    /// Per-logical-disk backend counters.
    pub disks: Vec<DiskStatSnapshot>,
    /// Write-back cache statistics.
    pub cache: CacheStatsSnapshot,
    /// Degraded-window accounting.
    pub degraded: DegradedSnapshot,
    /// Contended stripe-shard lock acquisitions.
    pub lock_contention: u64,
    /// The store's failure-state epoch at snapshot time.
    pub epoch: u64,
    /// Live progress of a registered rebuild, if one is running.
    pub rebuild: Option<RebuildProgress>,
    /// Live progress of a registered reshape, if one is running.
    pub reshape: Option<ReshapeProgressSnapshot>,
    /// Integrity-subsystem totals: repairs, retries, scrub state, and
    /// per-disk health.
    pub integrity: crate::integrity::IntegrityStatsSnapshot,
    /// Background-maintenance scheduler state: reshape driver and
    /// continuous-scrub activity, pacing decisions, and arbitration
    /// counters.
    pub maintenance: crate::maintenance::MaintenanceStateSnapshot,
    /// Async I/O engine state — per-disk queue-depth gauges, EWMA
    /// service times, the queue-wait histogram, and the queue-tier
    /// arbitration counters. `None` (serialized as `null`) while no
    /// engine is running.
    pub engine: Option<crate::engine::EngineStatsSnapshot>,
}

/// Live progress of a running reshape in a [`StatsSnapshot`].
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct ReshapeProgressSnapshot {
    /// `"add"` or `"remove"`.
    pub kind: String,
    /// Logical disks the target layout spans.
    pub to_v: u32,
    /// Target stripes migrated so far.
    pub stripes_done: u64,
    /// Total target stripes to migrate.
    pub stripes_total: u64,
    /// Units copied into the target world so far.
    pub units_copied: u64,
    /// Milliseconds since the reshape registered.
    pub elapsed_ms: u64,
}

impl StatsSnapshot {
    /// Sums the per-disk counters into one [`IoTotals`].
    pub fn io_totals(&self) -> IoTotals {
        let mut t = IoTotals::default();
        for d in &self.disks {
            t.read_units += d.read_units;
            t.write_units += d.write_units;
            t.read_calls += d.read_calls;
            t.write_calls += d.write_calls;
        }
        t
    }

    /// The op-kind entry named `kind`, if recorded.
    pub fn op(&self, kind: OpKind) -> Option<&OpStatSnapshot> {
        self.ops.iter().find(|o| o.kind == kind.name())
    }

    /// The snapshot as compact JSON — the `stats.json` payload the
    /// bench and stress harnesses persist for CI.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("StatsSnapshot serializes")
    }
}

/// Renders a [`StatsSnapshot`] as human-readable text (the
/// `examples/` view of `stats.json`).
pub fn render_stats(s: &StatsSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "ops (kind: ops / units / sampled-latency p50..max):");
    for o in &s.ops {
        if o.ops == 0 {
            continue;
        }
        let samples: u64 = o.latency_log2_ns.iter().sum();
        let lat = if samples == 0 {
            "-".to_string()
        } else {
            let mut seen = 0u64;
            let mut p50 = 0usize;
            for (b, &c) in o.latency_log2_ns.iter().enumerate() {
                seen += c;
                if seen * 2 >= samples {
                    p50 = b;
                    break;
                }
            }
            let max = o.latency_log2_ns.iter().rposition(|&c| c > 0).unwrap_or(0);
            format!("~{}..{}", fmt_ns(1u64 << p50), fmt_ns(1u64 << max))
        };
        let _ = writeln!(out, "  {:<14} {:>10} / {:>10} / {}", o.kind, o.ops, o.units, lat);
    }
    let _ = writeln!(out, "disks (d: rU/wU/rC/wC):");
    for d in &s.disks {
        let _ = writeln!(
            out,
            "  d{:<2} {:>8} / {:>8} / {:>6} / {:>6}",
            d.disk, d.read_units, d.write_units, d.read_calls, d.write_calls
        );
    }
    let c = &s.cache;
    let _ = writeln!(
        out,
        "cache: {} hits / {} misses, {} absorbed, {} bypassed, {} flushed stripes ({} units), \
         {} evicted, {} dirty",
        c.hits,
        c.misses,
        c.absorbed_writes,
        c.bypassed_writes,
        c.flushed_stripes,
        c.flushed_units,
        c.evictions,
        c.dirty_stripes
    );
    let win = |w: &WindowSnapshot| {
        format!("{} window(s), {:.1} ms, {} ops", w.windows, w.wall_ns as f64 / 1e6, w.ops)
    };
    let _ = writeln!(
        out,
        "degraded: one-erasure {}; two-erasure {}",
        win(&s.degraded.one),
        win(&s.degraded.two)
    );
    let _ = writeln!(out, "lock contention: {} contended acquisitions", s.lock_contention);
    match &s.rebuild {
        Some(r) => {
            let _ = writeln!(
                out,
                "rebuild: disk {} -> spare {}, {}/{} units, {} ms elapsed, eta {} ms, mean read \
                 fraction {:.3}",
                r.failed_disk,
                r.spare_disk,
                r.units_done,
                r.units_total,
                r.elapsed_ms,
                r.eta_ms,
                r.mean_read_fraction
            );
        }
        None => {
            let _ = writeln!(out, "rebuild: none running (epoch {})", s.epoch);
        }
    }
    if let Some(r) = &s.reshape {
        let _ = writeln!(
            out,
            "reshape: {} -> v={}, {}/{} target stripes, {} units copied, {} ms elapsed",
            r.kind, r.to_v, r.stripes_done, r.stripes_total, r.units_copied, r.elapsed_ms
        );
    }
    let ig = &s.integrity;
    let _ = writeln!(
        out,
        "integrity: {} checksum repair(s), {} parity repair(s), {} transient retr(ies), \
         {} scrub pass(es), cursor {}",
        ig.checksum_repairs,
        ig.parity_repairs,
        ig.transient_retries,
        ig.scrub_passes,
        ig.scrub_cursor
    );
    let m = &s.maintenance;
    let _ = writeln!(
        out,
        "maintenance: scrub {}{} ({} paced pass(es), {} yield(s), {} idle restart(s), step {}, \
         sleep {}us); driver {} ({} run(s), {} step(s), {} resume(s))",
        if m.continuous_scrub_active { "continuous" } else { "idle" },
        if m.continuous_scrub_active { " ACTIVE" } else { "" },
        m.paced_passes,
        m.scrub_yields,
        m.idle_restarts,
        m.paced_step,
        m.paced_sleep_us,
        if m.reshape_driver_active { "ACTIVE" } else { "idle" },
        m.driver_runs,
        m.driver_steps,
        m.driver_resumes
    );
    for d in &ig.disk_health {
        if d.errors == 0 && d.repairs == 0 && d.retries == 0 && !d.auto_failed {
            continue;
        }
        let _ = writeln!(
            out,
            "  health d{:<2} {:>4} err / {:>4} rep / {:>4} retry{}",
            d.disk,
            d.errors,
            d.repairs,
            d.retries,
            if d.auto_failed { "  AUTO-FAILED" } else { "" }
        );
    }
    if let Some(e) = &s.engine {
        let _ = writeln!(
            out,
            "engine: {} worker(s), depth target {}; {} client + {} maintenance submitted, \
             {} completed ({} error(s)), {} maintenance deferral(s)",
            e.workers,
            e.target_depth,
            e.client_submitted,
            e.maintenance_submitted,
            e.completed,
            e.errors,
            e.maintenance_deferred
        );
        for d in &e.disks {
            if d.submitted == 0 && d.queued == 0 && d.in_flight == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  queue d{:<2} {:>3} queued / {:>2} in-flight / ewma {:>6}us / {:>8} sub / \
                 {:>8} done / {:>6} coalesced",
                d.disk,
                d.queued,
                d.in_flight,
                d.ewma_service_us,
                d.submitted,
                d.completed,
                d.coalesced
            );
        }
    }
    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.1}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        let h = LatencyHistogram::default();
        h.record(0); // bucket 0
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(1023); // bucket 9
        h.record(1024); // bucket 10
        h.record(u64::MAX); // clamped to the last bucket
        let s = h.snapshot();
        assert_eq!(s[0], 2);
        assert_eq!(s[1], 1);
        assert_eq!(s[9], 1);
        assert_eq!(s[10], 1);
        assert_eq!(s[LatencyHistogram::BUCKETS - 1], 1);
        assert_eq!(s.iter().sum::<u64>(), 6);
    }

    #[test]
    fn metrics_counts_and_samples() {
        let m = Metrics::default();
        for _ in 0..(Metrics::SAMPLE_EVERY * 2) {
            let t = m.begin(OpKind::Read, false);
            m.finish(t, 1);
        }
        let (ops, _, _) = m.snapshot();
        let read = ops.iter().find(|o| o.kind == "read").unwrap();
        assert_eq!(read.ops, Metrics::SAMPLE_EVERY * 2);
        assert_eq!(read.units, Metrics::SAMPLE_EVERY * 2);
        // Exactly the 1-in-SAMPLE_EVERY ops were timed.
        assert_eq!(read.latency_log2_ns.iter().sum::<u64>(), 2);
        // Forced timing (sink installed) always records.
        let t = m.begin(OpKind::Write, true);
        assert!(m.finish(t, 1).is_some());
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let m = Metrics::default();
        m.set_enabled(false);
        let t = m.begin(OpKind::Read, true);
        assert!(m.finish(t, 5).is_none());
        m.record_op(OpKind::CacheFlush, 9, 100);
        m.note_mix(true);
        assert_eq!(m.total_ops(), 0);
        let (ops, _, _) = m.snapshot();
        assert!(ops.iter().all(|o| o.ops == 0 && o.units == 0));
    }

    #[test]
    fn read_mostly_needs_dominance_and_volume() {
        let m = Metrics::default();
        assert!(!m.read_mostly(), "no samples yet");
        for _ in 0..300 {
            m.note_mix(true);
        }
        assert!(m.read_mostly(), "all reads");
        for _ in 0..300 {
            m.note_mix(false);
        }
        assert!(!m.read_mostly(), "mix dropped below 2x");
    }

    #[test]
    fn read_mostly_verdict_is_sticky_near_the_boundary() {
        let m = Metrics::default();
        // A 70/30 mix (2.33:1) enters read-heavy…
        for i in 0..200 {
            m.note_mix(i % 10 < 7);
        }
        assert!(m.read_mostly(), "70/30 enters read-heavy");
        // …and a dip to 9/5 (1.8:1) — below the 2:1 entry threshold
        // but above the 1.5:1 exit threshold — must NOT flip it
        // back: every flip drains the write-back cache.
        for i in 0..70 {
            m.note_mix(i % 14 < 9);
        }
        assert!(m.read_mostly(), "1.8:1 dip stays read-heavy (hysteresis)");
        // A genuinely write-heavy shift does leave.
        for _ in 0..300 {
            m.note_mix(false);
        }
        assert!(!m.read_mostly(), "sustained writes leave read-heavy");
    }

    #[test]
    fn degraded_windows_split_by_level() {
        let m = Metrics::default();
        m.degraded_transition(0, 1, 10);
        std::thread::sleep(std::time::Duration::from_millis(2));
        m.degraded_transition(1, 2, 30);
        std::thread::sleep(std::time::Duration::from_millis(2));
        m.degraded_transition(2, 1, 70);
        m.degraded_transition(1, 0, 100);
        let snap = m.degraded_snapshot();
        assert_eq!(snap.one.windows, 1);
        assert_eq!(snap.two.windows, 1);
        assert_eq!(snap.one.ops, (30 - 10) + (100 - 70));
        assert_eq!(snap.two.ops, 70 - 30);
        assert!(snap.one.wall_ns >= 2_000_000);
        assert!(snap.two.wall_ns >= 2_000_000);
    }

    #[test]
    fn trace_log_rings() {
        let log = TraceLog::with_capacity(2);
        log.record(&Event::DiskFailed { disk: 1, epoch: 1 });
        log.record(&Event::DiskFailed { disk: 2, epoch: 2 });
        log.record(&Event::DiskFailed { disk: 3, epoch: 3 });
        assert_eq!(log.recorded(), 3);
        let evs = log.events();
        assert_eq!(evs.len(), 2, "oldest dropped");
        assert_eq!(evs[0], Event::DiskFailed { disk: 2, epoch: 2 });
        assert_eq!(evs[1], Event::DiskFailed { disk: 3, epoch: 3 });
    }

    #[test]
    fn stats_snapshot_roundtrips_through_serde() {
        let snap = StatsSnapshot {
            ops: vec![OpStatSnapshot {
                kind: "read".into(),
                ops: 3,
                units: 7,
                latency_log2_ns: vec![0, 2, 1],
            }],
            disks: vec![DiskStatSnapshot {
                disk: 0,
                read_units: 10,
                write_units: 4,
                read_calls: 2,
                write_calls: 1,
            }],
            cache: CacheStatsSnapshot { hits: 5, ..Default::default() },
            degraded: DegradedSnapshot {
                one: WindowSnapshot { windows: 1, wall_ns: 99, ops: 12 },
                two: WindowSnapshot::default(),
            },
            lock_contention: 2,
            epoch: 4,
            rebuild: Some(RebuildProgress {
                failed_disk: 1,
                spare_disk: 9,
                units_done: 8,
                units_total: 16,
                elapsed_ms: 3,
                eta_ms: 3,
                per_disk_reads: vec![3, 0, 3],
                mean_read_fraction: 0.375,
            }),
            reshape: Some(ReshapeProgressSnapshot {
                kind: "add".into(),
                to_v: 9,
                stripes_done: 36,
                stripes_total: 72,
                units_copied: 144,
                elapsed_ms: 11,
            }),
            integrity: crate::integrity::IntegrityStatsSnapshot {
                checksum_repairs: 2,
                parity_repairs: 1,
                transient_retries: 4,
                scrub_passes: 1,
                scrub_cursor: 5,
                disk_health: vec![crate::integrity::DiskHealthSnapshot {
                    disk: 3,
                    errors: 1,
                    repairs: 2,
                    retries: 4,
                    recent: 1,
                    auto_failed: true,
                }],
            },
            maintenance: crate::maintenance::MaintenanceStateSnapshot {
                continuous_scrub_active: true,
                paced_passes: 3,
                scrub_yields: 2,
                driver_runs: 1,
                ..Default::default()
            },
            engine: Some(crate::engine::EngineStatsSnapshot {
                workers: 9,
                target_depth: 8,
                client_submitted: 40,
                maintenance_submitted: 6,
                completed: 46,
                errors: 0,
                maintenance_deferred: 2,
                queue_wait_log2_ns: vec![0, 1, 3],
                disks: vec![crate::engine::EngineDiskSnapshot {
                    disk: 0,
                    queued: 0,
                    in_flight: 1,
                    ewma_service_us: 120,
                    submitted: 5,
                    completed: 4,
                    coalesced: 2,
                }],
            }),
        };
        let json = serde_json::to_string(&snap).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.ops[0].units, 7);
        assert_eq!(back.disks[0].read_units, 10);
        assert_eq!(back.cache.hits, 5);
        assert_eq!(back.degraded.one.ops, 12);
        assert_eq!(back.rebuild.as_ref().unwrap().per_disk_reads, vec![3, 0, 3]);
        assert_eq!(back.reshape.as_ref().unwrap().stripes_done, 36);
        assert_eq!(back.integrity.checksum_repairs, 2);
        assert!(back.integrity.disk_health[0].auto_failed);
        // The text renderer covers every section without panicking.
        let text = render_stats(&back);
        assert!(text.contains("degraded:"));
        assert!(text.contains("rebuild: disk 1"));
        assert!(text.contains("reshape: add -> v=9"));
        assert!(text.contains("integrity: 2 checksum repair(s)"));
        assert_eq!(back.maintenance.paced_passes, 3);
        assert!(text.contains("maintenance: scrub continuous ACTIVE (3 paced pass(es)"));
        let eng = back.engine.as_ref().unwrap();
        assert_eq!(eng.client_submitted, 40);
        assert_eq!(eng.maintenance_deferred, 2);
        assert_eq!(eng.disks[0].coalesced, 2);
        assert!(text.contains("engine: 9 worker(s)"));
        // Engine-less snapshots round-trip the section as null.
        let mut no_engine = snap.clone();
        no_engine.engine = None;
        let json2 = serde_json::to_string(&no_engine).unwrap();
        let back2: StatsSnapshot = serde_json::from_str(&json2).unwrap();
        assert!(back2.engine.is_none());
        assert!(text.contains("AUTO-FAILED"));
    }

    #[test]
    fn io_totals_diff() {
        let a = IoTotals { read_units: 10, write_units: 5, read_calls: 3, write_calls: 2 };
        let b = IoTotals { read_units: 25, write_units: 9, read_calls: 7, write_calls: 2 };
        assert_eq!(
            b.since(&a),
            IoTotals { read_units: 15, write_units: 4, read_calls: 4, write_calls: 0 }
        );
    }
}
