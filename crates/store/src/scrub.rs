//! Background scrubbing: a rate-limited walk over every stripe that
//! verifies unit checksums *and* parity consistency, repairing what
//! it finds via erasure decode (see
//! `BlockStore::repair_stripe_locked`'s read-repair machinery).
//!
//! Latent sector errors are the quiet failure mode of disk arrays:
//! a corrupt unit that nobody reads stays corrupt until the disk
//! holding a *different* unit of its stripe fails — at which point
//! the rebuild decodes from the corrupt survivor and the damage
//! becomes permanent. A periodic scrub converts latent errors into
//! repaired ones while full redundancy still exists, which is why
//! the declustered layouts this crate reproduces (Schwabe & Sutherland,
//! SPAA '94) assume one runs.
//!
//! Design points:
//!
//! - **One scrub at a time.** A compare-and-swap on
//!   `BlockStore::scrub_active` admits a single pass, foreground
//!   ([`BlockStore::scrub`]) or background ([`BlockStore::start_scrub`]);
//!   a second caller gets [`StoreError::ScrubInProgress`].
//! - **Races live traffic safely.** Each stripe is verified under its
//!   exclusive stripe shard lock — the same lock writers take — so a
//!   scrub never sees a half-written stripe. Between stripes the
//!   scrubber holds only the shared array-state guard, so reads and
//!   writes proceed concurrently; an optional per-batch sleep bounds
//!   the bandwidth it steals.
//! - **Yields to reshape.** Stripe indices change meaning across
//!   worlds, so a reshape resets the scrub cursor and the scrubber
//!   sleeps (background) or bails with
//!   [`StoreError::ReshapeInProgress`] (foreground) while one is
//!   active. Checkpoints are written while holding the shared state
//!   guard, so a scrub checkpoint can never overwrite a reshape's
//!   version-3 metadata.
//! - **Crash-resumable.** Every `checkpoint_stripes` stripes the
//!   cursor is persisted into [`StoreMeta`] (schema v4) together with
//!   the checksum sidecar; [`crate::meta::open_file_store`] restores
//!   both, and the next pass resumes where the crashed one stopped.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pdl_core::LayoutSpec;

use crate::backend::Backend;
use crate::error::StoreError;
use crate::meta::{ScrubState, StoreMeta};
use crate::obs::{Event, OpKind};
use crate::scheme::ParityScheme;
use crate::store::{ArrayState, BlockStore};

/// Tuning for a scrub pass.
#[derive(Clone, Debug)]
pub struct ScrubConfig {
    /// Stripes verified per batch (between rate-limit sleeps and
    /// stop-flag checks). Each stripe is locked individually, so this
    /// bounds bookkeeping, not lock hold time.
    pub stripes_per_step: usize,
    /// Microseconds slept between batches — the rate limit. `0`
    /// scrubs flat out.
    pub sleep_us: u64,
    /// Stripes between durable cursor checkpoints (metadata v4 plus
    /// the checksum sidecar). `0` checkpoints only at pass end.
    /// Ignored for memory-backed stores (no persister installed).
    pub checkpoint_stripes: u64,
}

impl Default for ScrubConfig {
    fn default() -> Self {
        ScrubConfig { stripes_per_step: 64, sleep_us: 0, checkpoint_stripes: 512 }
    }
}

/// What a completed (or stopped) scrub pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Global stripe cursor the pass started from (`0` for a fresh
    /// pass, non-zero when resuming after a crash or stop).
    pub resumed_from: u64,
    /// Stripes verified by this pass.
    pub stripes: u64,
    /// Units rewritten because their bytes failed the recorded
    /// checksum (latent corruption repaired by erasure decode).
    pub checksum_repairs: u64,
    /// Parity units recomputed because the parity equations did not
    /// hold over verified data.
    pub parity_repairs: u64,
    /// Whether the pass walked every stripe (`false` when stopped
    /// early via [`ScrubHandle::stop`]).
    pub completed: bool,
}

/// Handle to a background scrub started by [`BlockStore::start_scrub`].
#[derive(Debug)]
pub struct ScrubHandle {
    stop: Arc<AtomicBool>,
    thread: JoinHandle<Result<ScrubReport, StoreError>>,
}

impl ScrubHandle {
    /// Asks the scrubber to stop at the next batch boundary. The
    /// cursor is checkpointed, so a later pass resumes from it.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Waits for the scrubber to finish and returns its report. A
    /// panicked scrubber thread propagates the panic.
    pub fn join(self) -> Result<ScrubReport, StoreError> {
        match self.thread.join() {
            Ok(r) => r,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    /// Whether the scrubber thread has exited (the `join` will not
    /// block).
    pub fn is_finished(&self) -> bool {
        self.thread.is_finished()
    }
}

/// Clears `scrub_active` however the pass ends (success, error, or
/// panic), so a failed scrub never wedges the store.
struct ActiveGuard<'a>(&'a AtomicBool);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

impl<B: Backend> BlockStore<B> {
    /// Runs one full scrub pass on the calling thread: every stripe
    /// of every layout copy is read, checksum-verified, checked for
    /// parity consistency, and repaired in place where possible (see
    /// the module docs). Resumes from a persisted cursor if the
    /// previous pass crashed. Errors with
    /// [`StoreError::ScrubInProgress`] if another pass is running and
    /// [`StoreError::ReshapeInProgress`] if a reshape is active.
    pub fn scrub(&self, cfg: &ScrubConfig) -> Result<ScrubReport, StoreError> {
        if self
            .scrub_active
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(StoreError::ScrubInProgress);
        }
        let _active = ActiveGuard(&self.scrub_active);
        self.scrub_pass(cfg, None, None)
    }

    /// Starts a scrub pass on a background thread and returns a
    /// handle to stop or join it. The thread holds only a [`Weak`]
    /// store reference, so dropping every strong `Arc` ends the pass
    /// instead of leaking the store.
    pub fn start_scrub(self: &Arc<Self>, cfg: ScrubConfig) -> Result<ScrubHandle, StoreError>
    where
        B: 'static,
    {
        if self
            .scrub_active
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(StoreError::ScrubInProgress);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let weak: Weak<Self> = Arc::downgrade(self);
        let stop_t = stop.clone();
        let thread = std::thread::Builder::new()
            .name("pdl-scrub".into())
            .spawn(move || {
                let Some(store) = weak.upgrade() else {
                    return Ok(ScrubReport::default());
                };
                let _active = ActiveGuard(&store.scrub_active);
                store.scrub_pass(&cfg, Some(&stop_t), None)
            })
            .expect("spawn scrub thread");
        Ok(ScrubHandle { stop, thread })
    }

    /// The scrub pass body. `stop` is `Some` for background passes
    /// (checked at batch boundaries) and `None` for foreground ones.
    /// `pacer` is `Some` for load-aware passes (see
    /// [`crate::maintenance`]): it resizes the batch and inserts
    /// sleeps after each one. The caller owns `scrub_active`.
    pub(crate) fn scrub_pass(
        &self,
        cfg: &ScrubConfig,
        stop: Option<&AtomicBool>,
        mut pacer: Option<&mut crate::maintenance::ScrubPacer>,
    ) -> Result<ScrubReport, StoreError> {
        let mut step = match &pacer {
            Some(p) => p.step().max(1) as u64,
            None => cfg.stripes_per_step.max(1) as u64,
        };
        let mut pace_sleep_us = 0u64;
        let mut report = ScrubReport {
            resumed_from: self.scrub_cursor.load(Ordering::Acquire),
            ..ScrubReport::default()
        };
        self.events.emit(|| Event::ScrubStarted { cursor: report.resumed_from });
        let mut since_ckpt = 0u64;
        loop {
            if let Some(s) = stop {
                if s.load(Ordering::Acquire) {
                    let st = self.state_read();
                    if st.reshape.is_none() {
                        self.checkpoint_scrub(&st)?;
                    }
                    return Ok(report);
                }
            }
            let st = self.state_read();
            if st.reshape.is_some() {
                // The cursor was reset when the reshape began; stripe
                // indices mean nothing until it commits or aborts.
                drop(st);
                match stop {
                    None => return Err(StoreError::ReshapeInProgress),
                    Some(_) => {
                        // Arbitration rule 1: scrub yields to reshape
                        // (see `crate::maintenance`), observably.
                        self.maint.scrub_yields.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_millis(2));
                        continue;
                    }
                }
            }
            // Holding the shared state guard blocks a reshape from
            // *beginning* (it takes the write guard), so the batch
            // below and its checkpoint see a stable world.
            let spc = st.world.layout.stripes().len() as u64;
            let total = st.world.copies as u64 * spc;
            let cur = self.scrub_cursor.load(Ordering::Acquire);
            if cur >= total {
                // Pass complete: bump the pass counter, rewind the
                // cursor, and make both durable with the sums.
                self.integrity.scrub_passes.fetch_add(1, Ordering::AcqRel);
                if pacer.is_some() {
                    self.maint.paced_passes.fetch_add(1, Ordering::Relaxed);
                }
                self.scrub_cursor.store(0, Ordering::Release);
                self.checkpoint_scrub(&st)?;
                report.completed = true;
                drop(st);
                let (s, c, p) = (report.stripes, report.checksum_repairs, report.parity_repairs);
                self.events.emit(|| Event::ScrubCompleted {
                    stripes: s,
                    checksum_repairs: c,
                    parity_repairs: p,
                });
                if self.integrity.health.has_pending() {
                    self.apply_pending_health();
                }
                return Ok(report);
            }
            let end = (cur + step).min(total);
            let batch_t0 = Instant::now();
            for t in cur..end {
                let (copy, si) = ((t / spc) as usize, (t % spc) as usize);
                let shard = self.locks.shard_of(copy, si);
                let t0 = Instant::now();
                let (c, p) = {
                    let (_g, _) = self.locks.lock_one_counting(shard);
                    self.repair_stripe_locked(&st, copy, si)?
                };
                self.metrics.record_op(
                    OpKind::ScrubRead,
                    st.world.layout.stripes()[si].len() as u64,
                    t0.elapsed().as_nanos() as u64,
                );
                report.checksum_repairs += u64::from(c);
                report.parity_repairs += u64::from(p);
            }
            let batch_ns = batch_t0.elapsed().as_nanos() as u64;
            self.scrub_cursor.store(end, Ordering::Release);
            report.stripes += end - cur;
            since_ckpt += end - cur;
            if cfg.checkpoint_stripes > 0 && since_ckpt >= cfg.checkpoint_stripes {
                self.checkpoint_scrub(&st)?;
                since_ckpt = 0;
            }
            drop(st);
            if self.integrity.health.has_pending() {
                self.apply_pending_health();
            }
            if let Some(p) = pacer.as_mut() {
                let (next_step, sleep_us) =
                    p.pace(&self.metrics, &self.maint, end, total, batch_ns, end - cur);
                step = next_step.max(1) as u64;
                pace_sleep_us = sleep_us;
            }
            let sleep_us = cfg.sleep_us.max(pace_sleep_us);
            if sleep_us > 0 {
                std::thread::sleep(Duration::from_micros(sleep_us));
            }
        }
    }

    /// Durably records the scrub position: writes a version-4
    /// [`StoreMeta`] carrying [`ScrubState`] (or the base document
    /// when there is nothing to resume) plus the checksum sidecar.
    /// No-op for memory-backed stores. Must be called with the array
    /// state guard held and no reshape active, so it cannot clobber a
    /// reshape's version-3 metadata.
    fn checkpoint_scrub(&self, st: &ArrayState) -> Result<(), StoreError> {
        debug_assert!(st.reshape.is_none());
        let Some(p) = &self.meta_persister else {
            return Ok(());
        };
        p.0(&self.scrub_meta(st))?;
        self.persist_sums()
    }

    /// The store's metadata document carrying the current scrub
    /// cursor and pass count (format version 4), or the plain
    /// version-1/2 document when both are zero.
    fn scrub_meta(&self, st: &ArrayState) -> StoreMeta {
        let cursor = self.scrub_cursor.load(Ordering::Acquire);
        let passes = self.integrity.scrub_passes.load(Ordering::Acquire);
        let scrub = (cursor != 0 || passes != 0).then_some(ScrubState { cursor, passes });
        let w = &st.world;
        StoreMeta {
            version: match (&scrub, self.scheme) {
                (Some(_), _) => 4,
                (None, ParityScheme::PQ) => 2,
                (None, _) => 1,
            },
            unit_size: self.unit_size,
            copies: w.copies,
            spares: self.backend.disks() - w.layout.v(),
            scheme: self.scheme.name().to_string(),
            parity_slots: w
                .pq_slots
                .as_ref()
                .map(|s| s.iter().map(|&(p, q)| (p as u32, q as u32)).collect())
                .unwrap_or_default(),
            cache_policy: self.cache.policy().encode(),
            layout: LayoutSpec::from_layout(&w.layout),
            reshape: None,
            scrub,
        }
    }
}
