//! # pdl-store
//!
//! A byte-level parity-declustered block store: the paper's layouts
//! ([`pdl_core::Layout`]) turned into an actual single-failure-tolerant
//! array that reads and writes real bytes.
//!
//! * [`Backend`] — pluggable storage: [`MemBackend`] (reference, used
//!   by tests and benches) and [`FileBackend`] (one file per disk,
//!   IO at `offset * unit_size`);
//! * [`BlockStore`] — the stripe-aware read/write path: XOR parity
//!   maintained by small-write read-modify-write, a zero-read
//!   full-stripe write fast path, logical→physical translation via the
//!   Condition-4 [`pdl_core::AddressMapper`];
//! * fault injection ([`BlockStore::fail_disk`]) and **degraded
//!   reads** that reconstruct lost units from surviving stripe
//!   members;
//! * [`Rebuilder`] — online rebuild of a failed disk onto a spare,
//!   stripe by stripe with bounded parallelism, reporting per-disk
//!   read counts so the (k−1)/(v−1) rebuild-load claim is measurable
//!   on real traffic;
//! * [`StoreMeta`] — array metadata persisted as JSON (reusing the
//!   `pdl-core` [`pdl_core::LayoutSpec`] codec) so file-backed arrays
//!   reopen with their exact geometry;
//! * trace replay ([`BlockStore::replay`]) of [`pdl_sim::Trace`]
//!   workloads, so simulator access patterns run against real bytes.
//!
//! ```
//! use pdl_core::RingLayout;
//! use pdl_store::{BlockStore, MemBackend, Rebuilder};
//!
//! // A declustered store: 9 disks + 1 spare, stripes of 4, 64-byte blocks.
//! let rl = RingLayout::for_v_k(9, 4);
//! let layout = rl.layout().clone();
//! let backend = MemBackend::new(10, layout.size(), 64);
//! let mut store = BlockStore::new(layout, backend).unwrap();
//!
//! // Write, fail a disk, read back degraded, rebuild onto the spare.
//! let block = vec![0x5a; 64];
//! store.write_block(17, &block).unwrap();
//! store.fail_disk(3).unwrap();
//! let mut out = vec![0; 64];
//! store.read_block(17, &mut out).unwrap();   // reconstructs if needed
//! assert_eq!(out, block);
//!
//! let report = Rebuilder::new(4).rebuild(&mut store, 9).unwrap();
//! assert!(!store.is_degraded());
//! // Declustering: each survivor read only ~(k-1)/(v-1) = 3/8 of a disk.
//! assert!((report.mean_read_fraction() - 0.375).abs() < 1e-9);
//! store.verify_parity().unwrap();
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod error;
pub mod meta;
pub mod rebuild;
pub mod store;

pub use backend::{Backend, FileBackend, MemBackend};
pub use error::StoreError;
pub use meta::{create_file_store, open_file_store, StoreMeta, META_FILE};
pub use rebuild::{RebuildReport, Rebuilder};
pub use store::{fill_pattern, BlockStore, ReplayStats};
