//! # pdl-store
//!
//! A byte-level parity-declustered block store: the paper's layouts
//! ([`pdl_core::Layout`]) turned into an actual fault-tolerant array
//! that reads and writes real bytes, with **configurable fault
//! tolerance** — single-parity XOR or double-parity P+Q.
//!
//! * [`Backend`] — pluggable storage with a **vectored IO engine**:
//!   unit-granular and multi-unit span transfers
//!   ([`Backend::read_units`]/[`Backend::write_units`]) plus
//!   `readv`/`writev`-style scatter/gather
//!   ([`Backend::read_units_scatter`]/[`Backend::write_units_gather`]),
//!   per-disk unit *and* call counters, and fault-injection hooks
//!   ([`Backend::wipe_disk`]). [`MemBackend`] (reference, span
//!   memcpys) and [`FileBackend`] (one file per disk, positional
//!   `pread`/`pwrite` + vectored syscalls at `offset * unit_size`);
//! * [`ParityScheme`] — the redundancy level: [`ParityScheme::Xor`]
//!   (one parity unit per stripe, any single disk may fail) or
//!   [`ParityScheme::PQ`] (two parity units per stripe, any **two**
//!   disks may fail concurrently);
//! * [`BlockStore`] — the stripe-aware read/write path: parity
//!   maintained by small-write read-modify-write, a zero-read
//!   full-stripe write fast path, logical→physical translation via
//!   the scheme-aware Condition-4 [`StripeMap`] (a precomputed
//!   per-rotation lookup table: [`StripeMap::locate_full`] resolves
//!   an address in one branch-free index, no divides). Multi-block
//!   transfers ([`BlockStore::read_blocks`]/
//!   [`BlockStore::write_blocks`]) coalesce per-disk contiguous runs
//!   into single vectored backend calls, degraded batch reads decode
//!   each lost stripe once, and a per-store scratch pool keeps the
//!   steady state allocation-free;
//! * a **write-back stripe cache** ([`cache`], opt-in via
//!   [`CachePolicy`]) that combines small writes per stripe: dirty
//!   units accumulate with zero backend I/O and flush as one
//!   combined parity update (fully dirty stripes take the zero-read
//!   full-stripe path), with flush-before-transition ordering around
//!   failures and rebuilds and the policy persisted in [`StoreMeta`];
//! * fault injection ([`BlockStore::fail_disk`], capped by the
//!   scheme's tolerance and tracked in a [`FailureSet`]) and
//!   **degraded reads** that erasure-decode lost units from surviving
//!   stripe members — one- and two-erasure solves;
//! * [`Rebuilder`] — online rebuild of failed disks onto spares,
//!   stripe by stripe with bounded parallelism; double failures
//!   rebuild in two phases ([`Rebuilder::rebuild_all`]) with per-disk
//!   read counts per phase, so the (k−1)/(v−1)-per-failure
//!   rebuild-load claim is measurable on real traffic;
//! * [`StoreMeta`] — array metadata persisted as JSON (reusing the
//!   `pdl-core` [`pdl_core::LayoutSpec`] codec) including the parity
//!   scheme and P+Q slot assignment, so file-backed arrays reopen
//!   with their exact geometry;
//! * trace replay ([`BlockStore::replay`]) of [`pdl_sim::Trace`]
//!   workloads — block ops *and* fail/restore/rebuild fault events —
//!   so simulator scenarios run against real bytes;
//! * **concurrency** — every operation (writes included) takes
//!   `&self`: a stripe-sharded lock table serializes parity updates
//!   per stripe with deadlock-free ordered acquisition, the failure
//!   state sits behind an `RwLock` epoch so `fail_disk`/
//!   `restore_disk`/rebuilds coordinate with in-flight I/O, and a
//!   rebuild can race live writes (write-through to the spare). See
//!   the [`store`] module docs for the full model;
//! * a seeded multi-threaded **stress harness** ([`stress`]) driving
//!   N verified client threads of mixed traffic — optionally degraded
//!   or racing a live rebuild — used by the concurrency tests, the CI
//!   matrix, and the thread-scaling benchmark;
//! * **first-class observability** ([`obs`]) — a lock-light
//!   [`Metrics`] registry (per-op-kind counters + sampled log2
//!   latency histograms) owned by every store, a pluggable
//!   [`EventSink`] with a bundled ring-buffer [`TraceLog`], live
//!   [`RebuildProgress`] snapshots (the (k−1)/(v−1) read
//!   distribution observable *during* a racing rebuild),
//!   degraded-window accounting split by erasure count, and a serde
//!   [`StatsSnapshot`] from [`BlockStore::stats`] that the benches
//!   and stress harness dump as `stats.json`.
//!
//! ## Fault-tolerance levels
//!
//! | Scheme | Parity per stripe | Tolerates | Small write | Decode |
//! |--------|-------------------|-----------|-------------|--------|
//! | [`ParityScheme::Xor`] | 1 (P) | 1 failed disk | 2 reads + 2 writes | XOR of survivors |
//! | [`ParityScheme::PQ`]  | 2 (P, Q) | 2 failed disks | 3 reads + 3 writes | `GF(2^8)` syndrome solve |
//!
//! ## The P+Q math
//!
//! Within a stripe whose data units sit at slots `j` (Q coefficients
//! `g^j`, `g` the generator of `GF(2^8)` mod `x^8+x^4+x^3+x^2+1`):
//!
//! ```text
//! P = Σ D_j            Q = Σ g^j · D_j
//! ```
//!
//! Losing any two units leaves a solvable 2×2 linear system over
//! `GF(2^8)` — see [`pdl_algebra::gf256`] for the kernels. P and Q
//! slot placement per stripe comes from the paper's generalized
//! Theorem 14 flow ([`pdl_core::DoubleParityLayout`]), so the
//! combined parity population stays balanced within one unit per
//! disk.
//!
//! ## The failure/rebuild state machine
//!
//! `fail_disk` moves a disk into the [`FailureSet`] (at most
//! `fault_tolerance` at a time; re-failing a failed disk is
//! [`StoreError::AlreadyFailed`]). While degraded, reads
//! erasure-decode and writes keep every *surviving* parity unit
//! consistent. A [`Rebuilder`] drains the set: each phase
//! reconstructs one disk onto a spare, redirects the logical disk,
//! and persists the mapping. [`BlockStore::restore_disk`] undoes a
//! transient failure without a rebuild (contents must be intact).
//!
//! ```
//! use pdl_core::{DoubleParityLayout, RingLayout};
//! use pdl_store::{BlockStore, MemBackend, Rebuilder};
//!
//! // A double-parity declustered store: 9 disks + 2 spares.
//! let rl = RingLayout::for_v_k(9, 4);
//! let dp = DoubleParityLayout::new(rl.layout().clone()).unwrap();
//! let backend = MemBackend::new(11, dp.layout().size(), 64);
//! let store = BlockStore::new_pq(dp, backend).unwrap(); // no `mut`: writes take &self
//!
//! // Write, fail TWO disks, read back degraded, rebuild onto spares.
//! let block = vec![0x5a; 64];
//! store.write_block(7, &block).unwrap();
//! store.fail_disk(3).unwrap();
//! store.fail_disk(6).unwrap();
//! let mut out = vec![0; 64];
//! store.read_block(7, &mut out).unwrap();   // two-erasure decode if needed
//! assert_eq!(out, block);
//!
//! let reports = Rebuilder::new(4).rebuild_all(&store, &[9, 10]).unwrap();
//! assert_eq!(reports.len(), 2);
//! assert!(!store.is_degraded());
//! store.verify_parity().unwrap();
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod engine;
pub mod error;
pub mod integrity;
pub mod maintenance;
pub mod meta;
pub mod obs;
pub mod rebuild;
pub mod reshape;
pub mod scheme;
pub mod scrub;
pub mod store;
pub mod stress;

pub use backend::{AsyncFileBackend, Backend, FaultConfig, FaultyBackend, FileBackend, MemBackend};
pub use cache::CachePolicy;
pub use engine::{
    Completion, DiskQueue, Engine, EngineConfig, EngineDiskSnapshot, EngineStatsSnapshot, Priority,
};
pub use error::StoreError;
pub use integrity::{
    xxh64, ChecksumTable, DiskHealthSnapshot, IntegrityStatsSnapshot, RetryPolicy,
};
pub use maintenance::{
    ContinuousScrubConfig, ContinuousScrubHandle, ContinuousScrubReport, MaintenanceStateSnapshot,
    ReshapeDriverConfig, ReshapeDriverHandle, ReshapeDriverReport,
};
pub use meta::{
    create_file_store, create_file_store_pq, open_file_store, update_cache_policy, ReshapeState,
    ScrubState, StoreMeta, META_FILE, SUMS_FILE, SUMS_LOG_FILE,
};
pub use obs::{
    render_stats, CacheStatsSnapshot, DegradedSnapshot, DiskCounters, DiskStatSnapshot, Event,
    EventSink, IoTotals, LatencyHistogram, Metrics, OpKind, OpStatSnapshot, RebuildProgress,
    ReshapeProgressSnapshot, StatsSnapshot, TraceLog, WindowSnapshot,
};
pub use rebuild::{RebuildReport, Rebuilder};
pub use reshape::{CopiesPolicy, ReshapeOptions, ReshapeReport};
pub use scheme::{AddrRef, FailureSet, ParityScheme, StripeMap};
pub use scrub::{ScrubConfig, ScrubHandle, ScrubReport};
pub use store::{fill_pattern, BlockStore, ReplayStats};
pub use stress::{RebuildMode, StressConfig, StressReport};
