//! Array metadata persistence: a version-tagged JSON document
//! (reusing `pdl-core`'s [`LayoutSpec`] codec for the layout itself)
//! stored alongside a file-backed array so it can be reopened with the
//! exact geometry it was created with — including the parity scheme
//! and, under P+Q, the per-stripe `(P, Q)` slot assignment, so a
//! reopened store decodes with the same parity placement instead of
//! re-running the (implementation-detail) flow assignment. Rebuilds
//! additionally persist the logical→physical disk mapping
//! (`mapping.json`, written by the backend) so a reopened store reads
//! spares, not stale failed disks.
//!
//! Version 1 documents (written before double parity existed) carry no
//! scheme field and reopen as XOR stores.
//!
//! A *pending* failure is deliberately not persisted: if a process
//! exits while degraded, the reopened store sees the array as healthy
//! and the stale disk's bytes as live. Rebuild before closing, or call
//! [`BlockStore::fail_disk`] again after reopening.

use crate::backend::{Backend, FileBackend};
use crate::cache::CachePolicy;
use crate::error::StoreError;
use crate::scheme::ParityScheme;
use crate::store::{BlockStore, MetaPersister};
use pdl_core::{DoubleParityLayout, Layout, LayoutSpec};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// The durable image of an in-flight reshape, embedded in a
/// version-3 [`StoreMeta`] so a crash mid-reshape resumes on reopen
/// (see the [`crate::reshape`] module docs for the protocol).
///
/// `phase = "migrate"`: the store reopens on the **source** geometry
/// (backend at `grown_units` units per disk) with the migration
/// runtime reinstalled at `cursor`. `phase = "commit"`: migration is
/// complete and the commit slide was interrupted at the `slide_done`
/// watermark; reopening statically redoes the remaining slide,
/// mapping, final metadata, and trim before a normal open.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct ReshapeState {
    /// `"add"` or `"remove"`.
    pub kind: String,
    /// `"migrate"` or `"commit"`.
    pub phase: String,
    /// Target stripes fully migrated (monotone; persisted only after
    /// the batch's writes landed, so a resume re-copies but never
    /// skips).
    pub cursor: u64,
    /// Commit-slide watermark: target rows fully slid down (only
    /// meaningful in phase `"commit"`).
    pub slide_done: u64,
    /// The target layout, in the stable exchange format.
    pub target_layout: LayoutSpec,
    /// Per-stripe `(P, Q)` slots of the target layout under P+Q;
    /// empty under XOR.
    pub target_parity_slots: Vec<(u32, u32)>,
    /// Target layout copies tiled per disk.
    pub target_copies: usize,
    /// Target logical disk → physical backend disk.
    pub tgt_redirect: Vec<usize>,
    /// Logical source disks being removed (empty on add).
    pub removed: Vec<usize>,
    /// First physical row of the scratch (target) region.
    pub scratch_base: usize,
    /// Units per disk while the reshape is active.
    pub grown_units: usize,
    /// Logical capacity after the commit.
    pub capacity_after: usize,
    /// Migration batch size in target stripes.
    pub batch_stripes: usize,
    /// Batches between persisted checkpoints.
    pub checkpoint_every: usize,
}

/// The durable image of the background scrubber's progress, embedded
/// in a version-4 [`StoreMeta`]. A crash mid-pass resumes at `cursor`
/// (stripes already verified are not re-walked until the next pass);
/// `passes` carries the lifetime pass count across reopens.
#[derive(Clone, Debug, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct ScrubState {
    /// Global stripe index (`copy × stripes_per_copy + stripe`) of the
    /// next stripe to scrub.
    pub cursor: u64,
    /// Completed scrub passes.
    pub passes: u64,
}

/// Everything needed to reopen an array: layout, unit size, copies,
/// spare count, and the parity scheme. Serialized as `store.json` in
/// the array directory.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct StoreMeta {
    /// Metadata format version: 1 XOR, 2 P+Q, 3 carries reshape
    /// state, 4 carries scrub state.
    pub version: u32,
    /// Bytes per unit.
    pub unit_size: usize,
    /// Layout copies tiled per disk.
    pub copies: usize,
    /// Spare physical disks beyond the layout's `v`.
    pub spares: usize,
    /// Parity scheme name (see [`ParityScheme::name`]).
    pub scheme: String,
    /// Per-stripe `(P, Q)` slot pairs under P+Q; empty under XOR.
    pub parity_slots: Vec<(u32, u32)>,
    /// Cache policy name (see [`CachePolicy::encode`]); documents
    /// written before the write-back cache existed reopen as
    /// `writethrough`.
    pub cache_policy: String,
    /// In-flight reshape checkpoint; `Some` exactly when `version`
    /// is 3. Committed (and never-reshaped) arrays carry `None` and
    /// are stamped version 1 or 2 by scheme.
    pub reshape: Option<ReshapeState>,
    /// Scrub progress checkpoint; `Some` exactly when `version` is 4.
    /// Mutually exclusive with `reshape` (the scrubber yields and its
    /// cursor resets while a reshape is active).
    pub scrub: Option<ScrubState>,
    /// The declustered layout, in its stable exchange format.
    pub layout: LayoutSpec,
}

/// The version-1 document shape, kept readable for arrays created
/// before the scheme field existed.
#[derive(Deserialize)]
struct StoreMetaV1 {
    version: u32,
    unit_size: usize,
    copies: usize,
    spares: usize,
    layout: LayoutSpec,
}

/// The pre-cache document shape (versions 1–2 written before the
/// cache-policy field existed), kept readable so existing arrays
/// reopen as write-through.
#[derive(Deserialize)]
struct StoreMetaPreCache {
    version: u32,
    unit_size: usize,
    copies: usize,
    spares: usize,
    scheme: String,
    parity_slots: Vec<(u32, u32)>,
    layout: LayoutSpec,
}

/// The pre-reshape document shape (versions 1–2 written before online
/// reshaping existed: cache policy but no reshape field), kept
/// readable so existing arrays reopen unchanged.
#[derive(Deserialize)]
struct StoreMetaPreReshape {
    version: u32,
    unit_size: usize,
    copies: usize,
    spares: usize,
    scheme: String,
    parity_slots: Vec<(u32, u32)>,
    cache_policy: String,
    layout: LayoutSpec,
}

/// The pre-scrub document shape (versions 1–3 written before the
/// integrity layer existed: reshape state but no scrub field), kept
/// readable so existing arrays reopen unchanged.
#[derive(Deserialize)]
struct StoreMetaPreScrub {
    version: u32,
    unit_size: usize,
    copies: usize,
    spares: usize,
    scheme: String,
    parity_slots: Vec<(u32, u32)>,
    cache_policy: String,
    reshape: Option<ReshapeState>,
    layout: LayoutSpec,
}

/// File name of the metadata document inside an array directory.
pub const META_FILE: &str = "store.json";

/// File name of the checksum-table sidecar inside an array directory
/// (see [`crate::ChecksumTable::to_bytes`]). Written on flush and
/// scrub checkpoints; a missing, stale, or malformed sidecar never
/// fails an open — the table just starts unset and is re-adopted by
/// the next scrub pass.
pub const SUMS_FILE: &str = "checksums.bin";

/// File name of the incremental checksum-sidecar log inside an array
/// directory: self-checksummed records of entries dirtied since the
/// last full sidecar write, appended by flushes and scrub checkpoints
/// and compacted back into [`SUMS_FILE`] when it outgrows half the
/// base table (see `BlockStore::persist_sums`). A torn tail from a
/// crash mid-append is detected and ignored on replay.
pub const SUMS_LOG_FILE: &str = "checksums.log";

impl StoreMeta {
    /// Captures the metadata of an XOR store configuration. XOR
    /// documents carry no version-2-only information (the scheme is
    /// the v1 default and the slot list is empty), so they are stamped
    /// version 1 and remain openable by pre-P+Q readers.
    pub fn new(layout: &Layout, unit_size: usize, copies: usize, spares: usize) -> Self {
        StoreMeta {
            version: 1,
            unit_size,
            copies,
            spares,
            scheme: ParityScheme::Xor.name().to_string(),
            parity_slots: Vec::new(),
            cache_policy: CachePolicy::WriteThrough.encode(),
            reshape: None,
            scrub: None,
            layout: LayoutSpec::from_layout(layout),
        }
    }

    /// Captures the metadata of a P+Q store configuration, including
    /// the exact parity-slot assignment.
    pub fn new_pq(dp: &DoubleParityLayout, unit_size: usize, copies: usize, spares: usize) -> Self {
        StoreMeta {
            version: 2,
            unit_size,
            copies,
            spares,
            scheme: ParityScheme::PQ.name().to_string(),
            parity_slots: dp
                .all_parity_slots()
                .iter()
                .map(|&(p, q)| (p as u32, q as u32))
                .collect(),
            cache_policy: CachePolicy::WriteThrough.encode(),
            reshape: None,
            scrub: None,
            layout: LayoutSpec::from_layout(dp.layout()),
        }
    }

    /// Sets the persisted cache policy (builder style): a reopened
    /// store installs it automatically.
    pub fn with_cache_policy(mut self, policy: CachePolicy) -> Self {
        self.cache_policy = policy.encode();
        self
    }

    /// The cache policy this document describes.
    pub fn parsed_cache_policy(&self) -> Result<CachePolicy, StoreError> {
        CachePolicy::decode(&self.cache_policy).ok_or_else(|| {
            StoreError::Corrupt(format!("unknown cache policy `{}`", self.cache_policy))
        })
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("meta is always serializable")
    }

    /// Parses and validates a JSON document (version 1–4, with or
    /// without the cache-policy, reshape, and scrub fields).
    pub fn from_json(json: &str) -> Result<Self, StoreError> {
        let meta: StoreMeta = match serde_json::from_str(json) {
            Ok(meta) => meta,
            Err(full_err) => {
                // Not a current-shape document; accept the pre-scrub
                // shape (reshape state but no scrub field), then the
                // pre-reshape shape (cache policy but no reshape
                // field), then the pre-cache shape (scheme but no
                // cache policy), and finally the v1 shape.
                if let Ok(pre) = serde_json::from_str::<StoreMetaPreScrub>(json) {
                    StoreMeta {
                        version: pre.version,
                        unit_size: pre.unit_size,
                        copies: pre.copies,
                        spares: pre.spares,
                        scheme: pre.scheme,
                        parity_slots: pre.parity_slots,
                        cache_policy: pre.cache_policy,
                        reshape: pre.reshape,
                        scrub: None,
                        layout: pre.layout,
                    }
                } else if let Ok(pre) = serde_json::from_str::<StoreMetaPreReshape>(json) {
                    StoreMeta {
                        version: pre.version,
                        unit_size: pre.unit_size,
                        copies: pre.copies,
                        spares: pre.spares,
                        scheme: pre.scheme,
                        parity_slots: pre.parity_slots,
                        cache_policy: pre.cache_policy,
                        reshape: None,
                        scrub: None,
                        layout: pre.layout,
                    }
                } else if let Ok(pre) = serde_json::from_str::<StoreMetaPreCache>(json) {
                    StoreMeta {
                        version: pre.version,
                        unit_size: pre.unit_size,
                        copies: pre.copies,
                        spares: pre.spares,
                        scheme: pre.scheme,
                        parity_slots: pre.parity_slots,
                        cache_policy: CachePolicy::WriteThrough.encode(),
                        reshape: None,
                        scrub: None,
                        layout: pre.layout,
                    }
                } else {
                    let v1: StoreMetaV1 = serde_json::from_str(json)
                        .map_err(|_| StoreError::Corrupt(format!("meta: {full_err}")))?;
                    if v1.version != 1 {
                        return Err(StoreError::Corrupt(format!(
                            "unsupported store meta version {}",
                            v1.version
                        )));
                    }
                    StoreMeta {
                        version: 1,
                        unit_size: v1.unit_size,
                        copies: v1.copies,
                        spares: v1.spares,
                        scheme: ParityScheme::Xor.name().to_string(),
                        parity_slots: Vec::new(),
                        cache_policy: CachePolicy::WriteThrough.encode(),
                        reshape: None,
                        scrub: None,
                        layout: v1.layout,
                    }
                }
            }
        };
        if !(1..=4).contains(&meta.version) {
            return Err(StoreError::Corrupt(format!(
                "unsupported store meta version {}",
                meta.version
            )));
        }
        if meta.unit_size == 0 || meta.copies == 0 {
            return Err(StoreError::Corrupt("zero unit_size or copies".into()));
        }
        let scheme = meta.parsed_scheme()?;
        match scheme {
            ParityScheme::Xor if !meta.parity_slots.is_empty() => {
                return Err(StoreError::Corrupt("xor meta carries parity slots".into()));
            }
            ParityScheme::PQ if meta.parity_slots.is_empty() => {
                return Err(StoreError::Corrupt("pq meta is missing parity slots".into()));
            }
            _ => {}
        }
        meta.parsed_cache_policy()?;
        if (meta.version == 3) != meta.reshape.is_some() {
            return Err(StoreError::Corrupt(
                "reshape state and version-3 stamp must appear together".into(),
            ));
        }
        if (meta.version == 4) != meta.scrub.is_some() {
            return Err(StoreError::Corrupt(
                "scrub state and version-4 stamp must appear together".into(),
            ));
        }
        if let Some(rs) = &meta.reshape {
            if rs.kind != "add" && rs.kind != "remove" {
                return Err(StoreError::Corrupt(format!("unknown reshape kind `{}`", rs.kind)));
            }
            if rs.phase != "migrate" && rs.phase != "commit" {
                return Err(StoreError::Corrupt(format!("unknown reshape phase `{}`", rs.phase)));
            }
        }
        Ok(meta)
    }

    /// The parity scheme this document describes.
    pub fn parsed_scheme(&self) -> Result<ParityScheme, StoreError> {
        ParityScheme::from_name(&self.scheme)
            .ok_or_else(|| StoreError::Corrupt(format!("unknown parity scheme `{}`", self.scheme)))
    }

    /// Reconstructs the layout (revalidating it).
    pub fn layout(&self) -> Result<Layout, StoreError> {
        self.layout.to_layout().map_err(|e| StoreError::Corrupt(format!("layout: {e}")))
    }

    /// Reconstructs the double-parity assignment (P+Q documents only).
    pub fn double_parity_layout(&self) -> Result<DoubleParityLayout, StoreError> {
        let layout = self.layout()?;
        let slots: Vec<(usize, usize)> =
            self.parity_slots.iter().map(|&(p, q)| (p as usize, q as usize)).collect();
        DoubleParityLayout::from_parts(layout, slots)
            .map_err(|e| StoreError::Corrupt(format!("parity slots: {e}")))
    }
}

/// Creates a new single-parity (XOR) file-backed array under `dir`:
/// per-disk files for `v + spares` physical disks plus a `store.json`
/// metadata document.
pub fn create_file_store(
    dir: impl AsRef<Path>,
    layout: Layout,
    unit_size: usize,
    copies: usize,
    spares: usize,
) -> Result<BlockStore<FileBackend>, StoreError> {
    let dir = dir.as_ref();
    let meta = StoreMeta::new(&layout, unit_size, copies, spares);
    let backend = FileBackend::create(dir, layout.v() + spares, copies * layout.size(), unit_size)?;
    std::fs::write(dir.join(META_FILE), meta.to_json())?;
    let mut store = BlockStore::new(layout, backend)?;
    install_persister(&mut store, dir);
    Ok(store)
}

/// Creates a new double-parity (P+Q) file-backed array under `dir`.
/// The metadata records the parity-slot assignment, so the reopened
/// store decodes with the placement it was created with.
pub fn create_file_store_pq(
    dir: impl AsRef<Path>,
    dp: DoubleParityLayout,
    unit_size: usize,
    copies: usize,
    spares: usize,
) -> Result<BlockStore<FileBackend>, StoreError> {
    let dir = dir.as_ref();
    let meta = StoreMeta::new_pq(&dp, unit_size, copies, spares);
    let backend =
        FileBackend::create(dir, dp.layout().v() + spares, copies * dp.layout().size(), unit_size)?;
    std::fs::write(dir.join(META_FILE), meta.to_json())?;
    let mut store = BlockStore::new_pq(dp, backend)?;
    install_persister(&mut store, dir);
    Ok(store)
}

/// Atomically replaces an array's `store.json` (temp file + rename),
/// so a crash mid-write never leaves a truncated document.
fn write_meta_atomic(dir: &Path, meta: &StoreMeta) -> Result<(), StoreError> {
    let tmp = dir.join(format!("{META_FILE}.tmp"));
    std::fs::write(&tmp, meta.to_json())?;
    std::fs::rename(&tmp, dir.join(META_FILE))?;
    Ok(())
}

/// Installs a durable metadata writer on a file-backed store so the
/// reshape engine and the scrubber can checkpoint their progress into
/// `store.json`, plus the checksum-sidecar path so flushes persist
/// the table.
fn install_persister(store: &mut BlockStore<FileBackend>, dir: &Path) {
    let dir_owned = dir.to_path_buf();
    store.meta_persister =
        Some(MetaPersister(Box::new(move |meta: &StoreMeta| write_meta_atomic(&dir_owned, meta))));
    store.sums_path = Some(dir.join(SUMS_FILE));
}

/// Reopens an array created by [`create_file_store`] or
/// [`create_file_store_pq`], reading the geometry **and scheme** from
/// its metadata document.
///
/// A version-3 document (crash mid-reshape) is handled by phase:
/// `"migrate"` reopens on the source geometry with the migration
/// runtime resumed at the persisted cursor (finish with
/// [`BlockStore::finish_reshape`] or step it incrementally);
/// `"commit"` statically redoes the interrupted commit (slide from
/// the watermark, mapping, final metadata, trim) and then opens the
/// committed target-geometry array.
pub fn open_file_store(dir: impl AsRef<Path>) -> Result<BlockStore<FileBackend>, StoreError> {
    let dir = dir.as_ref();
    let json = std::fs::read_to_string(dir.join(META_FILE))?;
    let meta = StoreMeta::from_json(&json)?;
    if let Some(rs) = &meta.reshape {
        if rs.phase == "commit" {
            redo_commit(dir, &meta, rs)?;
            // The document now has no reshape state; reopen normally.
            return open_file_store(dir);
        }
        return open_resuming(dir, &meta, rs);
    }
    let layout = meta.layout()?;
    // Trim-allowing open: heals files left long by a crash between a
    // reshape's backend grow and its first metadata checkpoint, or
    // between a commit's final metadata write and its trim.
    let backend = FileBackend::open_trimming(
        dir,
        layout.v() + meta.spares,
        meta.copies * layout.size(),
        meta.unit_size,
    )?;
    let mut store = match meta.parsed_scheme()? {
        ParityScheme::Xor => BlockStore::new(layout, backend),
        ParityScheme::PQ => BlockStore::new_pq(meta.double_parity_layout()?, backend),
    }?;
    store.set_cache_policy(meta.parsed_cache_policy()?)?;
    install_persister(&mut store, dir);
    if let Some(sc) = &meta.scrub {
        store.restore_scrub_state(sc.cursor, sc.passes);
    }
    // Best-effort sidecar load: wrong geometry or torn bytes leave
    // the table unset (every verification skipped until re-adopted).
    let mut base_ok = false;
    if let Ok(bytes) = std::fs::read(dir.join(SUMS_FILE)) {
        base_ok = store.load_checksums(&bytes);
    }
    // Replay the incremental log over the base (entries persisted by
    // flushes since the base was last compacted). Replay is safe even
    // without a base: records carry the geometry they were written
    // under and torn tails stop the replay. A tail the replay could
    // not consume (the crash landed mid-append) forces the next
    // persist to rewrite the base and drop the log — appending past a
    // torn record would leave the new entries unreachable forever.
    let mut log_torn = false;
    if let Ok(bytes) = std::fs::read(dir.join(SUMS_LOG_FILE)) {
        let consumed = store.replay_sums_log(&bytes);
        log_torn = consumed != bytes.len();
        store.sums_log_len.store(bytes.len() as u64, std::sync::atomic::Ordering::Release);
    }
    // Only build incrementally on a base that actually loaded and a
    // log that replayed whole; otherwise the first persist
    // re-establishes a clean base.
    store.sums_full_rewrite.store(!base_ok || log_torn, std::sync::atomic::Ordering::Release);
    Ok(store)
}

/// Reopens a store whose document records an interrupted *migration*
/// phase: the backend opens at the grown (scratch-holding) geometry,
/// the store is built on the **source** layout, and the migration
/// runtime is reinstalled at the persisted cursor.
fn open_resuming(
    dir: &Path,
    meta: &StoreMeta,
    rs: &ReshapeState,
) -> Result<BlockStore<FileBackend>, StoreError> {
    let layout = meta.layout()?;
    let backend = FileBackend::open(dir, layout.v() + meta.spares, rs.grown_units, meta.unit_size)?;
    let mut store = match meta.parsed_scheme()? {
        ParityScheme::Xor => BlockStore::build_resuming(layout, None, backend, meta.copies),
        ParityScheme::PQ => {
            let dp = meta.double_parity_layout()?;
            let slots = dp.all_parity_slots().to_vec();
            BlockStore::build_resuming(dp.layout().clone(), Some(slots), backend, meta.copies)
        }
    }?;
    store.set_cache_policy(meta.parsed_cache_policy()?)?;
    install_persister(&mut store, dir);
    store.install_resumed_reshape(rs)?;
    Ok(store)
}

/// Statically redoes an interrupted reshape *commit*: resumes the
/// slide-down at the persisted watermark (chunks never clobber
/// scratch rows a redo would re-read), persists the target mapping
/// and final metadata, and trims the scratch region.
fn redo_commit(dir: &Path, meta: &StoreMeta, rs: &ReshapeState) -> Result<(), StoreError> {
    let src_layout = meta.layout()?;
    // Physical disk count never changes during a reshape.
    let disks = src_layout.v() + meta.spares;
    let us = meta.unit_size;
    let backend = FileBackend::open(dir, disks, rs.grown_units, us)?;
    let tgt_layout = rs
        .target_layout
        .to_layout()
        .map_err(|e| StoreError::Corrupt(format!("reshape target layout: {e}")))?;
    let u_tgt = rs.target_copies * tgt_layout.size();
    let sb = rs.scratch_base;
    let mut row = rs.slide_done as usize;
    if row > u_tgt {
        return Err(StoreError::Corrupt("reshape slide watermark past target".into()));
    }
    let chunk_rows = sb.clamp(1, 4096);
    let mut buf = vec![0u8; chunk_rows * us];
    while row < u_tgt {
        let n = chunk_rows.min(u_tgt - row);
        for &phys in &rs.tgt_redirect {
            backend.read_units(phys, sb + row, &mut buf[..n * us])?;
            backend.write_units(phys, row, &buf[..n * us])?;
        }
        row += n;
        let mut wm = rs.clone();
        wm.slide_done = row as u64;
        let mut doc = meta.clone();
        doc.reshape = Some(wm);
        write_meta_atomic(dir, &doc)?;
    }
    backend.persist_mapping(&rs.tgt_redirect)?;
    let scheme = meta.parsed_scheme()?;
    let final_meta = StoreMeta {
        version: if scheme == ParityScheme::PQ { 2 } else { 1 },
        unit_size: us,
        copies: rs.target_copies,
        spares: disks - tgt_layout.v(),
        scheme: meta.scheme.clone(),
        parity_slots: rs.target_parity_slots.clone(),
        cache_policy: meta.cache_policy.clone(),
        reshape: None,
        scrub: None,
        layout: rs.target_layout.clone(),
    };
    write_meta_atomic(dir, &final_meta)?;
    backend.set_units_per_disk(u_tgt)?;
    backend.flush()?;
    Ok(())
}

/// Durably changes the cache policy of an existing file-backed array
/// (rewriting its `store.json`); the next [`open_file_store`] installs
/// it. Does not affect stores already open — call
/// [`BlockStore::set_cache_policy`] on those directly.
pub fn update_cache_policy(dir: impl AsRef<Path>, policy: CachePolicy) -> Result<(), StoreError> {
    let dir = dir.as_ref();
    let json = std::fs::read_to_string(dir.join(META_FILE))?;
    let meta = StoreMeta::from_json(&json)?.with_cache_policy(policy);
    std::fs::write(dir.join(META_FILE), meta.to_json())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_core::RingLayout;

    #[test]
    fn meta_roundtrips() {
        let rl = RingLayout::for_v_k(5, 3);
        let meta = StoreMeta::new(rl.layout(), 256, 2, 1);
        let back = StoreMeta::from_json(&meta.to_json()).unwrap();
        assert_eq!(meta, back);
        assert_eq!(back.layout().unwrap().v(), 5);
        assert_eq!(back.parsed_scheme().unwrap(), ParityScheme::Xor);
        assert_eq!(back.parsed_cache_policy().unwrap(), CachePolicy::WriteThrough);
    }

    #[test]
    fn cache_policy_roundtrips_and_validates() {
        let rl = RingLayout::for_v_k(5, 3);
        let meta = StoreMeta::new(rl.layout(), 256, 2, 1)
            .with_cache_policy(CachePolicy::WriteBack { max_dirty: 32 });
        let back = StoreMeta::from_json(&meta.to_json()).unwrap();
        assert_eq!(back.parsed_cache_policy().unwrap(), CachePolicy::WriteBack { max_dirty: 32 });
        // An unknown policy name is rejected at parse time.
        let mut bad = meta;
        bad.cache_policy = "battery-backed".into();
        assert!(StoreMeta::from_json(&bad.to_json()).is_err());
    }

    #[test]
    fn pre_cache_documents_reopen_as_writethrough() {
        // A document with scheme + parity_slots but no cache_policy —
        // the shape every pre-cache store wrote.
        let rl = RingLayout::for_v_k(5, 3);
        let spec = pdl_core::LayoutSpec::from_layout(rl.layout());
        let layout_json = serde_json::to_string(&spec).unwrap();
        let pre = format!(
            "{{\"version\":1,\"unit_size\":64,\"copies\":2,\"spares\":1,\"scheme\":\"xor\",\
             \"parity_slots\":[],\"layout\":{layout_json}}}"
        );
        let meta = StoreMeta::from_json(&pre).unwrap();
        assert_eq!(meta.parsed_cache_policy().unwrap(), CachePolicy::WriteThrough);
        assert_eq!(meta.parsed_scheme().unwrap(), ParityScheme::Xor);
    }

    #[test]
    fn pq_meta_roundtrips_slots() {
        let rl = RingLayout::for_v_k(9, 4);
        let dp = DoubleParityLayout::new(rl.layout().clone()).unwrap();
        let meta = StoreMeta::new_pq(&dp, 128, 1, 2);
        let back = StoreMeta::from_json(&meta.to_json()).unwrap();
        assert_eq!(back.parsed_scheme().unwrap(), ParityScheme::PQ);
        let dp2 = back.double_parity_layout().unwrap();
        assert_eq!(dp2.all_parity_slots(), dp.all_parity_slots());
    }

    #[test]
    fn v1_documents_reopen_as_xor() {
        // A hand-built version-1 document: no scheme, no parity_slots.
        let rl = RingLayout::for_v_k(5, 3);
        let spec = pdl_core::LayoutSpec::from_layout(rl.layout());
        let layout_json = serde_json::to_string(&spec).unwrap();
        let v1 = format!(
            "{{\"version\":1,\"unit_size\":64,\"copies\":2,\"spares\":1,\"layout\":{layout_json}}}"
        );
        let meta = StoreMeta::from_json(&v1).unwrap();
        assert_eq!(meta.version, 1);
        assert_eq!(meta.parsed_scheme().unwrap(), ParityScheme::Xor);
        assert_eq!(meta.unit_size, 64);
        assert_eq!(meta.copies, 2);
    }

    #[test]
    fn bad_meta_rejected() {
        assert!(StoreMeta::from_json("not json").is_err());
        let mut meta = StoreMeta::new(RingLayout::for_v_k(5, 2).layout(), 64, 1, 0);
        meta.version = 9;
        assert!(StoreMeta::from_json(&meta.to_json()).is_err());
        // Unknown scheme name.
        let mut meta = StoreMeta::new(RingLayout::for_v_k(5, 2).layout(), 64, 1, 0);
        meta.scheme = "raid7".into();
        assert!(StoreMeta::from_json(&meta.to_json()).is_err());
        // PQ without slots.
        let mut meta = StoreMeta::new(RingLayout::for_v_k(5, 3).layout(), 64, 1, 0);
        meta.scheme = "pq".into();
        assert!(StoreMeta::from_json(&meta.to_json()).is_err());
    }

    #[test]
    fn persisted_cache_policy_applies_on_open() {
        let dir = std::env::temp_dir().join(format!("pdl-meta-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rl = RingLayout::for_v_k(5, 3);
        {
            let store = create_file_store(&dir, rl.layout().clone(), 64, 1, 1).unwrap();
            assert_eq!(store.cache_policy(), CachePolicy::WriteThrough);
            store.write_block(3, &[0x3cu8; 64]).unwrap();
            store.flush().unwrap();
        }
        update_cache_policy(&dir, CachePolicy::WriteBack { max_dirty: 16 }).unwrap();
        let store = open_file_store(&dir).unwrap();
        assert_eq!(store.cache_policy(), CachePolicy::WriteBack { max_dirty: 16 });
        // Writes combine in the cache; flush makes them durable.
        store.write_block(4, &[0x77u8; 64]).unwrap();
        assert_eq!(store.dirty_cache_stripes(), 1);
        store.flush().unwrap();
        assert_eq!(store.dirty_cache_stripes(), 0);
        let mut out = vec![0u8; 64];
        store.read_block(3, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0x3c));
        store.read_block(4, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0x77));
        store.verify_parity().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_open_roundtrip() {
        let dir = std::env::temp_dir().join(format!("pdl-meta-test-{}", std::process::id()));
        let rl = RingLayout::for_v_k(5, 3);
        {
            let store = create_file_store(&dir, rl.layout().clone(), 64, 1, 1).unwrap();
            let data = vec![0xabu8; 64];
            store.write_block(7, &data).unwrap();
            store.flush().unwrap();
        }
        let store = open_file_store(&dir).unwrap();
        assert_eq!(store.v(), 5);
        assert_eq!(store.unit_size(), 64);
        assert_eq!(store.scheme(), ParityScheme::Xor);
        let mut out = vec![0u8; 64];
        store.read_block(7, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0xab));
        store.verify_parity().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_open_roundtrip_pq() {
        let dir = std::env::temp_dir().join(format!("pdl-meta-pq-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rl = RingLayout::for_v_k(9, 4);
        let dp = DoubleParityLayout::new(rl.layout().clone()).unwrap();
        let slots = dp.all_parity_slots().to_vec();
        {
            let store = create_file_store_pq(&dir, dp, 64, 1, 2).unwrap();
            let data = vec![0x5cu8; 64];
            store.write_block(3, &data).unwrap();
            store.flush().unwrap();
        }
        let store = open_file_store(&dir).unwrap();
        assert_eq!(store.scheme(), ParityScheme::PQ);
        assert_eq!(store.fault_tolerance(), 2);
        assert_eq!(store.pq_parity_slots().unwrap(), &slots[..]);
        let mut out = vec![0u8; 64];
        store.read_block(3, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0x5c));
        store.verify_parity().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scrub_state_roundtrips_as_v4() {
        let rl = RingLayout::for_v_k(5, 3);
        let mut meta = StoreMeta::new(rl.layout(), 64, 2, 1);
        meta.version = 4;
        meta.scrub = Some(ScrubState { cursor: 17, passes: 3 });
        let back = StoreMeta::from_json(&meta.to_json()).unwrap();
        assert_eq!(back.scrub, Some(ScrubState { cursor: 17, passes: 3 }));
        // The version stamp and the scrub state must appear together.
        let mut bad = meta.clone();
        bad.version = 1;
        assert!(StoreMeta::from_json(&bad.to_json()).is_err());
        let mut bad = meta;
        bad.scrub = None;
        assert!(StoreMeta::from_json(&bad.to_json()).is_err());
    }

    #[test]
    fn pre_scrub_documents_reopen_with_no_scrub_state() {
        // The exact shape the previous release wrote: reshape key
        // present, no scrub key at all.
        let rl = RingLayout::for_v_k(5, 3);
        let meta = StoreMeta::new(rl.layout(), 64, 2, 1);
        let json = meta.to_json();
        let pre = json.replace(",\"scrub\":null", "");
        assert_ne!(pre, json, "the scrub key must actually be stripped");
        let back = StoreMeta::from_json(&pre).unwrap();
        assert_eq!(back.scrub, None);
        assert_eq!(back.layout().unwrap().v(), 5);
    }

    /// A crash can tear `store.json` three ways: a leftover `.tmp`
    /// from a write that never renamed, a truncated document, or
    /// garbage bytes. The first must be ignored (the committed
    /// document governs); the others must reject as corrupt — a
    /// half-applied open is never acceptable.
    #[test]
    fn torn_meta_crash_windows_recover_or_reject() {
        let dir = std::env::temp_dir().join(format!("pdl-meta-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rl = RingLayout::for_v_k(5, 3);
        {
            let store = create_file_store(&dir, rl.layout().clone(), 64, 1, 1).unwrap();
            store.write_block(3, &[0xabu8; 64]).unwrap();
            store.flush().unwrap();
        }
        let meta_path = dir.join(META_FILE);
        let good = std::fs::read_to_string(&meta_path).unwrap();
        let mut out = vec![0u8; 64];

        // Window 1: unrenamed tmp (crash before the atomic rename).
        std::fs::write(dir.join(format!("{META_FILE}.tmp")), &good[..good.len() / 2]).unwrap();
        {
            let store = open_file_store(&dir).unwrap();
            store.read_block(3, &mut out).unwrap();
            assert!(out.iter().all(|&b| b == 0xab));
            store.verify_parity().unwrap();
        }

        // Window 2: document torn in place (truncated JSON).
        std::fs::write(&meta_path, &good[..good.len() / 2]).unwrap();
        assert!(matches!(open_file_store(&dir), Err(StoreError::Corrupt(_))));

        // Window 3: garbage where the document should be. Textual
        // garbage is Corrupt; raw binary garbage surfaces as the
        // UTF-8 read error — either way the open rejects.
        std::fs::write(&meta_path, b"garbage, not json at all").unwrap();
        assert!(matches!(open_file_store(&dir), Err(StoreError::Corrupt(_))));
        std::fs::write(&meta_path, b"\x00\xff\x00\xfe\x00").unwrap();
        assert!(open_file_store(&dir).is_err());

        // Restoring the committed document restores the array; a torn
        // checksum sidecar is best-effort and must not block the open.
        std::fs::write(&meta_path, &good).unwrap();
        std::fs::write(dir.join(SUMS_FILE), b"torn sidecar").unwrap();
        let store = open_file_store(&dir).unwrap();
        store.read_block(3, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0xab));
        store.verify_parity().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
