//! Array metadata persistence: a version-tagged JSON document
//! (reusing `pdl-core`'s [`LayoutSpec`] codec for the layout itself)
//! stored alongside a file-backed array so it can be reopened with the
//! exact geometry it was created with. Rebuilds additionally persist
//! the logical→physical disk mapping (`mapping.json`, written by the
//! backend) so a reopened store reads spares, not stale failed disks.
//!
//! A *pending* failure is deliberately not persisted: if a process
//! exits while degraded, the reopened store sees the array as healthy
//! and the stale disk's bytes as live. Rebuild before closing, or call
//! [`BlockStore::fail_disk`] again after reopening.

use crate::backend::FileBackend;
use crate::error::StoreError;
use crate::store::BlockStore;
use pdl_core::{Layout, LayoutSpec};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Everything needed to reopen an array: layout, unit size, copies,
/// and spare count. Serialized as `store.json` in the array directory.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct StoreMeta {
    /// Metadata format version (currently 1).
    pub version: u32,
    /// Bytes per unit.
    pub unit_size: usize,
    /// Layout copies tiled per disk.
    pub copies: usize,
    /// Spare physical disks beyond the layout's `v`.
    pub spares: usize,
    /// The declustered layout, in its stable exchange format.
    pub layout: LayoutSpec,
}

/// File name of the metadata document inside an array directory.
pub const META_FILE: &str = "store.json";

impl StoreMeta {
    /// Captures the metadata of a store configuration.
    pub fn new(layout: &Layout, unit_size: usize, copies: usize, spares: usize) -> Self {
        StoreMeta { version: 1, unit_size, copies, spares, layout: LayoutSpec::from_layout(layout) }
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("meta is always serializable")
    }

    /// Parses and validates a JSON document.
    pub fn from_json(json: &str) -> Result<Self, StoreError> {
        let meta: StoreMeta =
            serde_json::from_str(json).map_err(|e| StoreError::Corrupt(format!("meta: {e}")))?;
        if meta.version != 1 {
            return Err(StoreError::Corrupt(format!(
                "unsupported store meta version {}",
                meta.version
            )));
        }
        if meta.unit_size == 0 || meta.copies == 0 {
            return Err(StoreError::Corrupt("zero unit_size or copies".into()));
        }
        Ok(meta)
    }

    /// Reconstructs the layout (revalidating it).
    pub fn layout(&self) -> Result<Layout, StoreError> {
        self.layout.to_layout().map_err(|e| StoreError::Corrupt(format!("layout: {e}")))
    }
}

/// Creates a new file-backed array under `dir`: per-disk files for
/// `v + spares` physical disks plus a `store.json` metadata document.
pub fn create_file_store(
    dir: impl AsRef<Path>,
    layout: Layout,
    unit_size: usize,
    copies: usize,
    spares: usize,
) -> Result<BlockStore<FileBackend>, StoreError> {
    let dir = dir.as_ref();
    let meta = StoreMeta::new(&layout, unit_size, copies, spares);
    let backend = FileBackend::create(dir, layout.v() + spares, copies * layout.size(), unit_size)?;
    std::fs::write(dir.join(META_FILE), meta.to_json())?;
    BlockStore::new(layout, backend)
}

/// Reopens an array created by [`create_file_store`], reading the
/// geometry from its metadata document.
pub fn open_file_store(dir: impl AsRef<Path>) -> Result<BlockStore<FileBackend>, StoreError> {
    let dir = dir.as_ref();
    let json = std::fs::read_to_string(dir.join(META_FILE))?;
    let meta = StoreMeta::from_json(&json)?;
    let layout = meta.layout()?;
    let backend = FileBackend::open(
        dir,
        layout.v() + meta.spares,
        meta.copies * layout.size(),
        meta.unit_size,
    )?;
    BlockStore::new(layout, backend)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_core::RingLayout;

    #[test]
    fn meta_roundtrips() {
        let rl = RingLayout::for_v_k(5, 3);
        let meta = StoreMeta::new(rl.layout(), 256, 2, 1);
        let back = StoreMeta::from_json(&meta.to_json()).unwrap();
        assert_eq!(meta, back);
        assert_eq!(back.layout().unwrap().v(), 5);
    }

    #[test]
    fn bad_meta_rejected() {
        assert!(StoreMeta::from_json("not json").is_err());
        let mut meta = StoreMeta::new(RingLayout::for_v_k(5, 2).layout(), 64, 1, 0);
        meta.version = 9;
        assert!(StoreMeta::from_json(&meta.to_json()).is_err());
    }

    #[test]
    fn create_open_roundtrip() {
        let dir = std::env::temp_dir().join(format!("pdl-meta-test-{}", std::process::id()));
        let rl = RingLayout::for_v_k(5, 3);
        {
            let mut store = create_file_store(&dir, rl.layout().clone(), 64, 1, 1).unwrap();
            let data = vec![0xabu8; 64];
            store.write_block(7, &data).unwrap();
            store.flush().unwrap();
        }
        let store = open_file_store(&dir).unwrap();
        assert_eq!(store.v(), 5);
        assert_eq!(store.unit_size(), 64);
        let mut out = vec![0u8; 64];
        store.read_block(7, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0xab));
        store.verify_parity().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
