//! Online rebuild: restore failed disks onto spares, stripe by
//! stripe, with bounded parallelism, and report the per-disk read
//! traffic — the measurement that turns the paper's (k−1)/(v−1)
//! declustering claim into an observable property of real bytes.
//!
//! Workers operate on *chunks* of consecutive spare offsets: each
//! chunk's surviving stripe members are prefetched per disk in
//! coalesced runs (one vectored backend call per run) and the
//! reconstructed units land on the spare in one vectored write, so
//! the backend call count scales with chunks and disks, not units.
//! The per-disk *unit* counts are identical to a unit-at-a-time
//! rebuild — batching changes how reads are issued, never which units
//! are read — so the declustering measurement is unchanged.
//!
//! Rebuilds take `&BlockStore` and may run **concurrently with live
//! client traffic**: the rebuild registers itself in the store's
//! failure-epoch state, each chunk holds its stripes' shard locks
//! (shared) across prefetch → decode → spare write, and writes that
//! race the rebuild are written through to the spare (see the store
//! module docs), so the spare is bit-exact when the redirect flips.
//! Only one rebuild may run at a time
//! ([`crate::StoreError::RebuildInProgress`]).
//!
//! A single failure rebuilds in one pass ([`Rebuilder::rebuild`]).
//! A double failure (P+Q stores) rebuilds in **two phases**
//! ([`Rebuilder::rebuild_all`]): phase one erasure-decodes the first
//! disk while both are missing (two-erasure solve on stripes crossing
//! both), phase two rebuilds the second against an array that already
//! includes the first spare — so its decode degenerates to the cheap
//! single-erasure path. Each phase gets its own [`RebuildReport`] with
//! per-surviving-disk read counts.
//!
//! The report arrives when the rebuild *finishes*; while one is
//! running, [`BlockStore::rebuild_progress`] snapshots the same
//! accounting live — units done/total, per-disk reads so far, elapsed
//! time — so the (k−1)/(v−1) read fraction is observable mid-flight
//! (`crates/store/tests/io_accounting.rs` asserts it against racing
//! client traffic).

use crate::backend::Backend;
use crate::error::StoreError;
use crate::store::{BlockStore, Scratch, UnitCache};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What a completed rebuild phase did, and to whom.
#[derive(Clone, Debug)]
pub struct RebuildReport {
    /// The logical disk that was failed and has been restored.
    pub failed_disk: usize,
    /// The physical backend disk now serving it.
    pub spare_disk: usize,
    /// Logical disks that were *also* failed during this phase (empty
    /// for a single-failure rebuild; holds the not-yet-rebuilt disk
    /// during phase one of a double rebuild).
    pub also_failed: Vec<usize>,
    /// Units reconstructed and written to the spare.
    pub units_rebuilt: usize,
    /// Units read from each *logical* disk during the rebuild
    /// (entries for `failed_disk` and `also_failed` are 0: their
    /// media are gone).
    pub per_disk_reads: Vec<u64>,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock duration of the rebuild.
    pub elapsed: Duration,
}

impl RebuildReport {
    fn is_survivor(&self, d: usize) -> bool {
        d != self.failed_disk && !self.also_failed.contains(&d)
    }

    /// Minimum and maximum units read across *surviving* disks.
    pub fn surviving_read_range(&self) -> (u64, u64) {
        let surv = self
            .per_disk_reads
            .iter()
            .enumerate()
            .filter(|&(d, _)| self.is_survivor(d))
            .map(|(_, &c)| c);
        (surv.clone().min().unwrap_or(0), surv.max().unwrap_or(0))
    }

    /// Spread of the surviving-disk read load: `(max − min) / max`.
    /// 0.0 is a perfectly declustered rebuild.
    pub fn read_imbalance(&self) -> f64 {
        let (min, max) = self.surviving_read_range();
        if max == 0 {
            0.0
        } else {
            (max - min) as f64 / max as f64
        }
    }

    /// Mean fraction of a surviving disk read during the rebuild —
    /// declustering predicts (k−1)/(v−1) per failed disk, RAID5
    /// reads 1.0.
    pub fn mean_read_fraction(&self) -> f64 {
        let surviving = (self.per_disk_reads.len() - 1 - self.also_failed.len()) as f64;
        let total: u64 = self
            .per_disk_reads
            .iter()
            .enumerate()
            .filter(|&(d, _)| self.is_survivor(d))
            .map(|(_, &c)| c)
            .sum();
        total as f64 / surviving / self.units_rebuilt.max(1) as f64
    }
}

/// Stripe-by-stripe reconstruction of failed disks onto spares.
#[derive(Clone, Copy, Debug)]
pub struct Rebuilder {
    workers: usize,
    chunk: usize,
}

/// Default units per rebuild chunk. Each chunk pays one state-guard
/// acquisition plus one shard-lock acquisition per distinct stripe it
/// covers, so larger chunks amortize the concurrency machinery (the
/// shard count caps the locks per chunk at 64 however large the chunk
/// grows) on top of the vectored-IO batching.
const DEFAULT_CHUNK: usize = 128;

impl Default for Rebuilder {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(4, |n| n.get()).min(8);
        Rebuilder { workers, chunk: DEFAULT_CHUNK }
    }
}

impl Rebuilder {
    /// A rebuilder with a fixed worker count (`0` is clamped to 1).
    pub fn new(workers: usize) -> Self {
        Rebuilder { workers: workers.max(1), chunk: DEFAULT_CHUNK }
    }

    /// Units reconstructed per claimed work item; tune for backend
    /// latency (larger chunks amortize queue contention).
    pub fn chunk_size(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// Rebuilds the **lowest-numbered** failed disk onto physical disk
    /// `spare`: reconstructs every unit from surviving stripe members,
    /// writes it to the spare, then redirects the logical disk onto the
    /// spare and removes it from the failure set. Client reads *and
    /// writes* keep working throughout — the store write-throughs
    /// racing writes to the spare, so no quiescing is needed. Works
    /// while a second disk is failed too — the decode just pays the
    /// two-erasure price on shared stripes.
    pub fn rebuild<B: Backend>(
        &self,
        store: &BlockStore<B>,
        spare: usize,
    ) -> Result<RebuildReport, StoreError> {
        let failed = store.failed_disk().ok_or(StoreError::NothingToRebuild)?;
        self.rebuild_one(store, failed, spare)
    }

    /// Rebuilds every failed disk, in ascending disk order, onto the
    /// given spares (`spares[i]` receives the i-th failed disk). This
    /// is the two-phase double-failure rebuild when two disks are
    /// down; each phase is reported separately.
    pub fn rebuild_all<B: Backend>(
        &self,
        store: &BlockStore<B>,
        spares: &[usize],
    ) -> Result<Vec<RebuildReport>, StoreError> {
        let failed: Vec<usize> = store.failed_disks().iter().collect();
        if failed.is_empty() {
            return Err(StoreError::NothingToRebuild);
        }
        if spares.len() < failed.len() {
            return Err(StoreError::SparesExhausted { failed: failed.len(), spares: spares.len() });
        }
        // Validate every spare up front — a duplicate or invalid later
        // spare must not abort after phase one has already mutated and
        // persisted the store.
        let used = &spares[..failed.len()];
        for (i, &s) in used.iter().enumerate() {
            if s >= store.backend().disks()
                || (0..store.v()).any(|d| store.physical_disk(d) == s)
                || used[..i].contains(&s)
            {
                return Err(StoreError::InvalidSpare(s));
            }
        }
        let mut reports = Vec::with_capacity(failed.len());
        for (&disk, &spare) in failed.iter().zip(spares) {
            reports.push(self.rebuild_one(store, disk, spare)?);
        }
        Ok(reports)
    }

    /// One rebuild phase: a specific failed disk onto a specific spare.
    fn rebuild_one<B: Backend>(
        &self,
        store: &BlockStore<B>,
        failed: usize,
        spare: usize,
    ) -> Result<RebuildReport, StoreError> {
        // Registers the rebuild (validating the disk and spare under
        // the exclusive state guard): from here until completion or
        // abort, racing writes are written through to the spare.
        store.begin_rebuild(failed, spare)?;
        let also_failed: Vec<usize> =
            store.failed_disks().iter().filter(|&d| d != failed).collect();
        let backend = store.backend();
        let units = backend.units_per_disk();
        let before: Vec<u64> =
            (0..store.v()).map(|d| backend.read_count(store.physical_disk(d))).collect();
        let start = Instant::now();

        let next = AtomicUsize::new(0);
        let first_error: Mutex<Option<StoreError>> = Mutex::new(None);
        let shared: &BlockStore<B> = store;
        std::thread::scope(|s| {
            for _ in 0..self.workers {
                s.spawn(|| {
                    // Each worker claims a chunk of consecutive spare
                    // offsets; `rebuild_chunk` prefetches every
                    // surviving stripe member the chunk's decodes need
                    // in coalesced per-disk runs (one vectored read
                    // per run), decodes from memory, and lands the
                    // chunk on the spare with one vectored write —
                    // all under the chunk's stripe shard locks, so
                    // racing client writes serialize per stripe.
                    let mut buf = vec![0u8; self.chunk * shared.unit_size()];
                    let mut scratch = Scratch::new(shared.unit_size());
                    let mut cache = UnitCache::new();
                    loop {
                        let at = next.fetch_add(self.chunk, Ordering::Relaxed);
                        // Poison-proof locking throughout: a panicking
                        // sibling worker poisons the mutex, and dying
                        // on `PoisonError` here would replace the
                        // original panic (which names the seed in
                        // stress runs) with a useless one.
                        if at >= units
                            || first_error.lock().unwrap_or_else(|e| e.into_inner()).is_some()
                        {
                            return;
                        }
                        let end = (at + self.chunk).min(units);
                        let out = &mut buf[..(end - at) * shared.unit_size()];
                        let res =
                            shared.rebuild_chunk(failed, spare, at, out, &mut scratch, &mut cache);
                        if let Err(e) = res {
                            first_error.lock().unwrap_or_else(|e| e.into_inner()).get_or_insert(e);
                            return;
                        }
                    }
                });
            }
        });
        if let Some(e) = first_error.into_inner().unwrap_or_else(|e| e.into_inner()) {
            store.abort_rebuild();
            return Err(e);
        }

        let backend = store.backend();
        let per_disk_reads: Vec<u64> = (0..store.v())
            .map(|d| {
                if d == failed || also_failed.contains(&d) {
                    0
                } else {
                    backend.read_count(store.physical_disk(d)) - before[d]
                }
            })
            .collect();
        store.complete_rebuild(failed, spare)?;
        store.flush()?;
        Ok(RebuildReport {
            failed_disk: failed,
            spare_disk: spare,
            also_failed,
            units_rebuilt: units,
            per_disk_reads,
            workers: self.workers,
            elapsed: start.elapsed(),
        })
    }
}
