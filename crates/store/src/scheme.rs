//! Configurable fault tolerance: the parity scheme, the failure set,
//! and the scheme-aware stripe map.
//!
//! The paper's Section 5 extension — "selecting some number of
//! distinguished units (perhaps more than one) from each stripe" —
//! becomes concrete here: a [`ParityScheme`] names how many
//! distinguished (parity) units each stripe carries and what code they
//! hold, a [`FailureSet`] tracks up to that many concurrently failed
//! disks, and a [`StripeMap`] generalizes the Condition-4 address
//! table to stripes with one *or two* parity slots.
//!
//! ## Schemes
//!
//! * [`ParityScheme::Xor`] — one parity unit per stripe, plain XOR;
//!   tolerates any single disk failure (the paper's base model).
//! * [`ParityScheme::PQ`] — two parity units per stripe, P (XOR) and
//!   Q (Reed–Solomon over `GF(2^8)`, see [`pdl_algebra::gf256`]);
//!   tolerates any two simultaneous disk failures. Q-slot placement
//!   comes from [`pdl_core::DoubleParityLayout`], the generalized
//!   Theorem 14 flow that balances the combined P+Q population.

use pdl_core::{Layout, StripeUnit};

/// Which erasure code protects each stripe, and therefore how many
/// simultaneous disk failures the store survives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParityScheme {
    /// Single parity (XOR): one distinguished unit per stripe,
    /// tolerates one failed disk.
    Xor,
    /// Double parity (P+Q, RAID-6 style): two distinguished units per
    /// stripe, tolerates two concurrently failed disks.
    PQ,
}

impl ParityScheme {
    /// Maximum number of concurrently failed disks the scheme decodes.
    pub fn fault_tolerance(self) -> usize {
        match self {
            ParityScheme::Xor => 1,
            ParityScheme::PQ => 2,
        }
    }

    /// Parity units per stripe (`1` for XOR, `2` for P+Q).
    pub fn parity_per_stripe(self) -> usize {
        self.fault_tolerance()
    }

    /// Stable lowercase name used by persisted metadata.
    pub fn name(self) -> &'static str {
        match self {
            ParityScheme::Xor => "xor",
            ParityScheme::PQ => "pq",
        }
    }

    /// Parses [`ParityScheme::name`] back; `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "xor" => Some(ParityScheme::Xor),
            "pq" => Some(ParityScheme::PQ),
            _ => None,
        }
    }
}

/// The set of currently failed logical disks, capped by the scheme's
/// fault tolerance. Kept sorted; iteration order is ascending.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FailureSet {
    disks: Vec<usize>,
}

impl FailureSet {
    /// No failures.
    pub fn new() -> Self {
        FailureSet::default()
    }

    /// True when no disk is failed.
    pub fn is_empty(&self) -> bool {
        self.disks.is_empty()
    }

    /// Number of concurrently failed disks.
    pub fn len(&self) -> usize {
        self.disks.len()
    }

    /// True when `disk` is currently failed.
    pub fn contains(&self, disk: usize) -> bool {
        self.disks.binary_search(&disk).is_ok()
    }

    /// The failed disks, ascending.
    pub fn as_slice(&self) -> &[usize] {
        &self.disks
    }

    /// Iterates the failed disks, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.disks.iter().copied()
    }

    /// The lowest-numbered failed disk, if any.
    pub fn first(&self) -> Option<usize> {
        self.disks.first().copied()
    }

    /// Adds a disk; returns `false` if it was already present.
    pub(crate) fn insert(&mut self, disk: usize) -> bool {
        match self.disks.binary_search(&disk) {
            Ok(_) => false,
            Err(at) => {
                self.disks.insert(at, disk);
                true
            }
        }
    }

    /// Removes a disk; returns `false` if it was not present.
    pub(crate) fn remove(&mut self, disk: usize) -> bool {
        match self.disks.binary_search(&disk) {
            Ok(at) => {
                self.disks.remove(at);
                true
            }
            Err(_) => false,
        }
    }
}

/// Sentinel for "no Q slot" (XOR stripes).
const NO_Q: u32 = u32::MAX;

/// Strength-reduced division by a runtime-constant divisor: the
/// classic multiply-high reciprocal (Granlund–Montgomery / Lemire),
/// precomputed once at map-build time so the per-request address→copy
/// split never executes a hardware divide.
///
/// With `m = ⌊2⁶⁴/d⌋ + 1`, `q = ⌊m·n / 2⁶⁴⌋` is the exact quotient
/// for every `n < 2³²` when `d < 2³²` — the range the store's
/// geometry checks guarantee for per-copy addresses. Larger inputs
/// (arrays past 2³² blocks) fall back to the hardware divide.
#[derive(Clone, Copy, Debug)]
struct Reciprocal {
    d: u64,
    m: u64,
}

impl Reciprocal {
    fn new(d: usize) -> Reciprocal {
        let d = d as u64;
        assert!(d > 0, "reciprocal of zero divisor");
        Reciprocal { d, m: (u64::MAX / d).wrapping_add(1) }
    }

    /// `(n / d, n % d)` without a divide instruction on the hot range.
    #[inline]
    fn div_rem(&self, n: usize) -> (usize, usize) {
        let n64 = n as u64;
        if self.d == 1 {
            (n, 0)
        } else if n64 <= u32::MAX as u64 && self.d <= u32::MAX as u64 {
            let q = (((self.m as u128) * (n64 as u128)) >> 64) as u64;
            (q as usize, (n64 - q * self.d) as usize)
        } else {
            ((n64 / self.d) as usize, (n64 % self.d) as usize)
        }
    }
}

/// One row of the precomputed per-rotation lookup table: everything
/// the data path needs to know about a logical data address within
/// one layout copy, resolved by a single array index.
#[derive(Clone, Copy, Debug)]
struct MapEntry {
    disk: u32,
    offset: u32,
    stripe: u32,
    slot: u32,
}

/// A fully resolved logical address: the physical unit plus its
/// stripe coordinates, returned by [`StripeMap::locate_full`] so hot
/// paths pay one table lookup instead of four separate accessor
/// calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AddrRef {
    /// Physical `(disk, offset)` of the unit (copy shift applied).
    pub unit: StripeUnit,
    /// Stripe (within the copy) owning the address.
    pub stripe: usize,
    /// Slot within the stripe's unit list — the Q-coefficient
    /// exponent under P+Q.
    pub slot: usize,
    /// Layout copy containing the address.
    pub copy: usize,
}

/// Scheme-aware logical→physical address table: the Condition-4 mapper
/// generalized to stripes whose parity occupies one or two slots.
///
/// Logical data addresses enumerate non-parity units in stripe order
/// (keeping a stripe's data contiguous for the large-write fast path)
/// and tile down the disks for arrays holding several layout copies,
/// exactly like [`pdl_core::AddressMapper`] — which this supersedes
/// inside the store, because the core mapper derives "data" from the
/// layout's single parity slot and would misclassify Q units.
///
/// The map is one precomputed per-rotation table built once at open
/// time: each row carries the physical unit *and* its stripe/slot
/// coordinates, so [`StripeMap::locate_full`] resolves an address
/// with a single branch-free array index (plus one multiply-shift
/// reciprocal to split off the copy — no divide instruction on the
/// data path).
#[derive(Clone, Debug)]
pub struct StripeMap {
    size: usize,
    /// Data units of one copy, in stripe (= address) order: the
    /// per-rotation LUT.
    entries: Vec<MapEntry>,
    /// Per stripe: `(p_slot, q_slot)`, `q_slot == NO_Q` for XOR.
    parity: Vec<(u32, u32)>,
    /// First logical data address (within the copy) of each stripe,
    /// plus an end sentinel: `stripe_base[si]..stripe_base[si + 1]`
    /// is stripe `si`'s contiguous data-address range.
    stripe_base: Vec<u32>,
    /// Precomputed reciprocal of `entries.len()` for the copy split.
    recip: Reciprocal,
}

impl StripeMap {
    /// Builds the map. `pq_slots` carries the per-stripe `(P, Q)` slot
    /// pairs for [`ParityScheme::PQ`] (e.g. from
    /// [`pdl_core::DoubleParityLayout::all_parity_slots`]) and must be
    /// `None` for [`ParityScheme::Xor`], which uses the layout's own
    /// parity slots.
    pub(crate) fn new(layout: &Layout, pq_slots: Option<&[(usize, usize)]>) -> StripeMap {
        let size = layout.size();
        let parity: Vec<(u32, u32)> = match pq_slots {
            Some(slots) => {
                assert_eq!(slots.len(), layout.b(), "one (P, Q) pair per stripe");
                slots.iter().map(|&(p, q)| (p as u32, q as u32)).collect()
            }
            None => layout.stripes().iter().map(|s| (s.parity_slot() as u32, NO_Q)).collect(),
        };
        let mut entries = Vec::new();
        let mut stripe_base = Vec::with_capacity(layout.b() + 1);
        for (si, stripe) in layout.stripes().iter().enumerate() {
            let (p, q) = parity[si];
            stripe_base.push(entries.len() as u32);
            for (slot, &u) in stripe.units().iter().enumerate() {
                if slot as u32 == p || slot as u32 == q {
                    continue;
                }
                entries.push(MapEntry {
                    disk: u.disk,
                    offset: u.offset,
                    stripe: si as u32,
                    slot: slot as u32,
                });
            }
        }
        stripe_base.push(entries.len() as u32);
        let recip = Reciprocal::new(entries.len());
        StripeMap { size, entries, parity, stripe_base, recip }
    }

    /// Data units per layout copy.
    pub fn data_units_per_copy(&self) -> usize {
        self.entries.len()
    }

    /// Resolves logical address `addr` completely — physical unit,
    /// stripe, slot, and copy — with one reciprocal multiply and one
    /// table index. This is the data path's mapping primitive; the
    /// single-field accessors below are conveniences over it.
    #[inline]
    pub fn locate_full(&self, addr: usize) -> AddrRef {
        let (copy, rem) = self.recip.div_rem(addr);
        let e = self.entries[rem];
        AddrRef {
            unit: StripeUnit { disk: e.disk, offset: e.offset + (copy * self.size) as u32 },
            stripe: e.stripe as usize,
            slot: e.slot as usize,
            copy,
        }
    }

    /// Physical location of logical data unit `addr`, tiling copies.
    pub fn locate(&self, addr: usize) -> StripeUnit {
        self.locate_full(addr).unit
    }

    /// Stripe (within the copy) owning logical address `addr`.
    pub fn stripe_of(&self, addr: usize) -> usize {
        let (_, rem) = self.recip.div_rem(addr);
        self.entries[rem].stripe as usize
    }

    /// Slot within its stripe of logical address `addr` — the exponent
    /// of the unit's Q coefficient.
    pub fn slot_of(&self, addr: usize) -> usize {
        let (_, rem) = self.recip.div_rem(addr);
        self.entries[rem].slot as usize
    }

    /// Layout copy containing logical address `addr`.
    pub fn copy_of(&self, addr: usize) -> usize {
        self.recip.div_rem(addr).0
    }

    /// The contiguous data-address range of `stripe` within one copy,
    /// as `(first address, data-unit count)`. Addresses enumerate
    /// non-parity units in stripe order, so a stripe's data is always
    /// one contiguous run — the invariant behind both the full-stripe
    /// write fast path and the write-back cache's slot indexing.
    pub fn stripe_data_range(&self, stripe: usize) -> (usize, usize) {
        let lo = self.stripe_base[stripe] as usize;
        let hi = self.stripe_base[stripe + 1] as usize;
        (lo, hi - lo)
    }

    /// `(p_slot, q_slot)` of a stripe; `q_slot` is `None` under XOR.
    pub fn parity_slots(&self, stripe: usize) -> (usize, Option<usize>) {
        let (p, q) = self.parity[stripe];
        (p as usize, (q != NO_Q).then_some(q as usize))
    }

    /// True when `slot` is a parity slot of `stripe`.
    pub fn is_parity_slot(&self, stripe: usize, slot: usize) -> bool {
        let (p, q) = self.parity[stripe];
        slot as u32 == p || slot as u32 == q
    }

    /// Resident bytes of the tables (Condition-4 footprint measure).
    pub fn table_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<MapEntry>()
            + self.parity.len() * 8
            + self.stripe_base.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_core::{DoubleParityLayout, RingLayout, UnitRole};

    #[test]
    fn scheme_properties() {
        assert_eq!(ParityScheme::Xor.fault_tolerance(), 1);
        assert_eq!(ParityScheme::PQ.fault_tolerance(), 2);
        assert_eq!(ParityScheme::from_name("xor"), Some(ParityScheme::Xor));
        assert_eq!(ParityScheme::from_name("pq"), Some(ParityScheme::PQ));
        assert_eq!(ParityScheme::from_name("raid7"), None);
        assert_eq!(ParityScheme::from_name(ParityScheme::PQ.name()), Some(ParityScheme::PQ));
    }

    #[test]
    fn failure_set_basics() {
        let mut f = FailureSet::new();
        assert!(f.is_empty());
        assert!(f.insert(5));
        assert!(f.insert(2));
        assert!(!f.insert(5), "duplicate insert rejected");
        assert_eq!(f.as_slice(), &[2, 5], "kept sorted");
        assert_eq!(f.first(), Some(2));
        assert!(f.contains(5) && !f.contains(3));
        assert!(f.remove(2));
        assert!(!f.remove(2));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn reciprocal_matches_hardware_division() {
        for d in [1usize, 2, 3, 7, 24, 54, 255, 1000, 4096, (1 << 32) - 1] {
            let r = Reciprocal::new(d);
            let probes = [
                0usize,
                1,
                d - 1,
                d,
                d + 1,
                7 * d + 3,
                u32::MAX as usize,
                u32::MAX as usize + 1,
                usize::MAX / 2,
                usize::MAX,
            ];
            for &n in &probes {
                assert_eq!(r.div_rem(n), (n / d, n % d), "n = {n}, d = {d}");
            }
            // A pseudo-random sweep across the fast (< 2^32) range.
            let mut x = 0x9e3779b97f4a7c15u64;
            for _ in 0..1000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let n = (x as u32) as usize;
                assert_eq!(r.div_rem(n), (n / d, n % d), "n = {n}, d = {d}");
            }
        }
    }

    #[test]
    fn locate_full_agrees_with_field_accessors() {
        let rl = RingLayout::for_v_k(9, 4);
        let sm = StripeMap::new(rl.layout(), None);
        for addr in 0..sm.data_units_per_copy() * 3 {
            let r = sm.locate_full(addr);
            assert_eq!(r.unit, sm.locate(addr));
            assert_eq!(r.stripe, sm.stripe_of(addr));
            assert_eq!(r.slot, sm.slot_of(addr));
            assert_eq!(r.copy, sm.copy_of(addr));
        }
    }

    #[test]
    fn stripe_data_ranges_tile_the_copy() {
        let rl = RingLayout::for_v_k(9, 4);
        let layout = rl.layout();
        let sm = StripeMap::new(layout, None);
        let mut next = 0usize;
        for si in 0..layout.b() {
            let (lo, len) = sm.stripe_data_range(si);
            assert_eq!(lo, next, "stripe {si} starts where stripe {} ended", si.wrapping_sub(1));
            assert!(len > 0);
            for addr in lo..lo + len {
                assert_eq!(sm.stripe_of(addr), si);
            }
            next = lo + len;
        }
        assert_eq!(next, sm.data_units_per_copy(), "ranges cover every data address");
    }

    #[test]
    fn xor_map_matches_core_mapper() {
        let rl = RingLayout::for_v_k(9, 4);
        let layout = rl.layout();
        let sm = StripeMap::new(layout, None);
        let am = pdl_core::AddressMapper::new(layout);
        assert_eq!(sm.data_units_per_copy(), am.data_units_per_copy());
        for addr in 0..sm.data_units_per_copy() * 2 {
            assert_eq!(sm.locate(addr), am.locate(addr), "addr {addr}");
            assert_eq!(sm.stripe_of(addr), am.stripe_of(addr));
        }
    }

    #[test]
    fn pq_map_excludes_both_parities() {
        let rl = RingLayout::for_v_k(9, 4);
        let dp = DoubleParityLayout::new(rl.layout().clone()).unwrap();
        let sm = StripeMap::new(dp.layout(), Some(dp.all_parity_slots()));
        // Each k=4 stripe keeps k-2 = 2 data units.
        assert_eq!(sm.data_units_per_copy(), dp.layout().b() * 2);
        for addr in 0..sm.data_units_per_copy() {
            let u = sm.locate(addr);
            assert_eq!(dp.role(u.disk as usize, u.offset as usize), UnitRole::Data);
            let s = sm.stripe_of(addr);
            assert!(!sm.is_parity_slot(s, sm.slot_of(addr)));
            let (p, q) = sm.parity_slots(s);
            assert_eq!((p, q.unwrap()), dp.parity_slots(s));
        }
        assert!(sm.table_bytes() > 0);
    }
}
