//! Configurable fault tolerance: the parity scheme, the failure set,
//! and the scheme-aware stripe map.
//!
//! The paper's Section 5 extension — "selecting some number of
//! distinguished units (perhaps more than one) from each stripe" —
//! becomes concrete here: a [`ParityScheme`] names how many
//! distinguished (parity) units each stripe carries and what code they
//! hold, a [`FailureSet`] tracks up to that many concurrently failed
//! disks, and a [`StripeMap`] generalizes the Condition-4 address
//! table to stripes with one *or two* parity slots.
//!
//! ## Schemes
//!
//! * [`ParityScheme::Xor`] — one parity unit per stripe, plain XOR;
//!   tolerates any single disk failure (the paper's base model).
//! * [`ParityScheme::PQ`] — two parity units per stripe, P (XOR) and
//!   Q (Reed–Solomon over `GF(2^8)`, see [`pdl_algebra::gf256`]);
//!   tolerates any two simultaneous disk failures. Q-slot placement
//!   comes from [`pdl_core::DoubleParityLayout`], the generalized
//!   Theorem 14 flow that balances the combined P+Q population.

use pdl_core::{Layout, StripeUnit};

/// Which erasure code protects each stripe, and therefore how many
/// simultaneous disk failures the store survives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParityScheme {
    /// Single parity (XOR): one distinguished unit per stripe,
    /// tolerates one failed disk.
    Xor,
    /// Double parity (P+Q, RAID-6 style): two distinguished units per
    /// stripe, tolerates two concurrently failed disks.
    PQ,
}

impl ParityScheme {
    /// Maximum number of concurrently failed disks the scheme decodes.
    pub fn fault_tolerance(self) -> usize {
        match self {
            ParityScheme::Xor => 1,
            ParityScheme::PQ => 2,
        }
    }

    /// Parity units per stripe (`1` for XOR, `2` for P+Q).
    pub fn parity_per_stripe(self) -> usize {
        self.fault_tolerance()
    }

    /// Stable lowercase name used by persisted metadata.
    pub fn name(self) -> &'static str {
        match self {
            ParityScheme::Xor => "xor",
            ParityScheme::PQ => "pq",
        }
    }

    /// Parses [`ParityScheme::name`] back; `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "xor" => Some(ParityScheme::Xor),
            "pq" => Some(ParityScheme::PQ),
            _ => None,
        }
    }
}

/// The set of currently failed logical disks, capped by the scheme's
/// fault tolerance. Kept sorted; iteration order is ascending.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FailureSet {
    disks: Vec<usize>,
}

impl FailureSet {
    /// No failures.
    pub fn new() -> Self {
        FailureSet::default()
    }

    /// True when no disk is failed.
    pub fn is_empty(&self) -> bool {
        self.disks.is_empty()
    }

    /// Number of concurrently failed disks.
    pub fn len(&self) -> usize {
        self.disks.len()
    }

    /// True when `disk` is currently failed.
    pub fn contains(&self, disk: usize) -> bool {
        self.disks.binary_search(&disk).is_ok()
    }

    /// The failed disks, ascending.
    pub fn as_slice(&self) -> &[usize] {
        &self.disks
    }

    /// Iterates the failed disks, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.disks.iter().copied()
    }

    /// The lowest-numbered failed disk, if any.
    pub fn first(&self) -> Option<usize> {
        self.disks.first().copied()
    }

    /// Adds a disk; returns `false` if it was already present.
    pub(crate) fn insert(&mut self, disk: usize) -> bool {
        match self.disks.binary_search(&disk) {
            Ok(_) => false,
            Err(at) => {
                self.disks.insert(at, disk);
                true
            }
        }
    }

    /// Removes a disk; returns `false` if it was not present.
    pub(crate) fn remove(&mut self, disk: usize) -> bool {
        match self.disks.binary_search(&disk) {
            Ok(at) => {
                self.disks.remove(at);
                true
            }
            Err(_) => false,
        }
    }
}

/// Sentinel for "no Q slot" (XOR stripes).
const NO_Q: u32 = u32::MAX;

/// Scheme-aware logical→physical address table: the Condition-4 mapper
/// generalized to stripes whose parity occupies one or two slots.
///
/// Logical data addresses enumerate non-parity units in stripe order
/// (keeping a stripe's data contiguous for the large-write fast path)
/// and tile down the disks for arrays holding several layout copies,
/// exactly like [`pdl_core::AddressMapper`] — which this supersedes
/// inside the store, because the core mapper derives "data" from the
/// layout's single parity slot and would misclassify Q units.
#[derive(Clone, Debug)]
pub struct StripeMap {
    size: usize,
    /// Data units of one copy, in stripe order.
    table: Vec<StripeUnit>,
    /// Owning stripe of each logical data unit.
    stripe_of: Vec<u32>,
    /// Slot (within the stripe's unit list) of each logical data unit —
    /// the Q-coefficient exponent under P+Q.
    slot_of: Vec<u32>,
    /// Per stripe: `(p_slot, q_slot)`, `q_slot == NO_Q` for XOR.
    parity: Vec<(u32, u32)>,
}

impl StripeMap {
    /// Builds the map. `pq_slots` carries the per-stripe `(P, Q)` slot
    /// pairs for [`ParityScheme::PQ`] (e.g. from
    /// [`pdl_core::DoubleParityLayout::all_parity_slots`]) and must be
    /// `None` for [`ParityScheme::Xor`], which uses the layout's own
    /// parity slots.
    pub(crate) fn new(layout: &Layout, pq_slots: Option<&[(usize, usize)]>) -> StripeMap {
        let size = layout.size();
        let parity: Vec<(u32, u32)> = match pq_slots {
            Some(slots) => {
                assert_eq!(slots.len(), layout.b(), "one (P, Q) pair per stripe");
                slots.iter().map(|&(p, q)| (p as u32, q as u32)).collect()
            }
            None => layout.stripes().iter().map(|s| (s.parity_slot() as u32, NO_Q)).collect(),
        };
        let mut table = Vec::new();
        let mut stripe_of = Vec::new();
        let mut slot_of = Vec::new();
        for (si, stripe) in layout.stripes().iter().enumerate() {
            let (p, q) = parity[si];
            for (slot, &u) in stripe.units().iter().enumerate() {
                if slot as u32 == p || slot as u32 == q {
                    continue;
                }
                table.push(u);
                stripe_of.push(si as u32);
                slot_of.push(slot as u32);
            }
        }
        StripeMap { size, table, stripe_of, slot_of, parity }
    }

    /// Data units per layout copy.
    pub fn data_units_per_copy(&self) -> usize {
        self.table.len()
    }

    /// Physical location of logical data unit `addr`, tiling copies.
    pub fn locate(&self, addr: usize) -> StripeUnit {
        let copy = addr / self.table.len();
        let base = self.table[addr % self.table.len()];
        StripeUnit { disk: base.disk, offset: base.offset + (copy * self.size) as u32 }
    }

    /// Stripe (within the copy) owning logical address `addr`.
    pub fn stripe_of(&self, addr: usize) -> usize {
        self.stripe_of[addr % self.table.len()] as usize
    }

    /// Slot within its stripe of logical address `addr` — the exponent
    /// of the unit's Q coefficient.
    pub fn slot_of(&self, addr: usize) -> usize {
        self.slot_of[addr % self.table.len()] as usize
    }

    /// Layout copy containing logical address `addr`.
    pub fn copy_of(&self, addr: usize) -> usize {
        addr / self.table.len()
    }

    /// `(p_slot, q_slot)` of a stripe; `q_slot` is `None` under XOR.
    pub fn parity_slots(&self, stripe: usize) -> (usize, Option<usize>) {
        let (p, q) = self.parity[stripe];
        (p as usize, (q != NO_Q).then_some(q as usize))
    }

    /// True when `slot` is a parity slot of `stripe`.
    pub fn is_parity_slot(&self, stripe: usize, slot: usize) -> bool {
        let (p, q) = self.parity[stripe];
        slot as u32 == p || slot as u32 == q
    }

    /// Resident bytes of the tables (Condition-4 footprint measure).
    pub fn table_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<StripeUnit>()
            + (self.stripe_of.len() + self.slot_of.len()) * 4
            + self.parity.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdl_core::{DoubleParityLayout, RingLayout, UnitRole};

    #[test]
    fn scheme_properties() {
        assert_eq!(ParityScheme::Xor.fault_tolerance(), 1);
        assert_eq!(ParityScheme::PQ.fault_tolerance(), 2);
        assert_eq!(ParityScheme::from_name("xor"), Some(ParityScheme::Xor));
        assert_eq!(ParityScheme::from_name("pq"), Some(ParityScheme::PQ));
        assert_eq!(ParityScheme::from_name("raid7"), None);
        assert_eq!(ParityScheme::from_name(ParityScheme::PQ.name()), Some(ParityScheme::PQ));
    }

    #[test]
    fn failure_set_basics() {
        let mut f = FailureSet::new();
        assert!(f.is_empty());
        assert!(f.insert(5));
        assert!(f.insert(2));
        assert!(!f.insert(5), "duplicate insert rejected");
        assert_eq!(f.as_slice(), &[2, 5], "kept sorted");
        assert_eq!(f.first(), Some(2));
        assert!(f.contains(5) && !f.contains(3));
        assert!(f.remove(2));
        assert!(!f.remove(2));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn xor_map_matches_core_mapper() {
        let rl = RingLayout::for_v_k(9, 4);
        let layout = rl.layout();
        let sm = StripeMap::new(layout, None);
        let am = pdl_core::AddressMapper::new(layout);
        assert_eq!(sm.data_units_per_copy(), am.data_units_per_copy());
        for addr in 0..sm.data_units_per_copy() * 2 {
            assert_eq!(sm.locate(addr), am.locate(addr), "addr {addr}");
            assert_eq!(sm.stripe_of(addr), am.stripe_of(addr));
        }
    }

    #[test]
    fn pq_map_excludes_both_parities() {
        let rl = RingLayout::for_v_k(9, 4);
        let dp = DoubleParityLayout::new(rl.layout().clone()).unwrap();
        let sm = StripeMap::new(dp.layout(), Some(dp.all_parity_slots()));
        // Each k=4 stripe keeps k-2 = 2 data units.
        assert_eq!(sm.data_units_per_copy(), dp.layout().b() * 2);
        for addr in 0..sm.data_units_per_copy() {
            let u = sm.locate(addr);
            assert_eq!(dp.role(u.disk as usize, u.offset as usize), UnitRole::Data);
            let s = sm.stripe_of(addr);
            assert!(!sm.is_parity_slot(s, sm.slot_of(addr)));
            let (p, q) = sm.parity_slots(s);
            assert_eq!((p, q.unwrap()), dp.parity_slots(s));
        }
        assert!(sm.table_bytes() > 0);
    }
}
