//! Background maintenance scheduler: a store-owned reshape driver and
//! continuous, load-aware scrubbing.
//!
//! After PR 8 both long-running maintenance tasks were half-manual:
//! reshape required the caller to pump [`BlockStore::reshape_step`]
//! in a loop, and the scrubber ran one pass on demand. This module
//! makes the store own both:
//!
//! - **Reshape driver** ([`BlockStore::start_reshape_driver`]) — a
//!   background thread in the mold of [`BlockStore::start_scrub`]
//!   that pumps `reshape_step` with batch/sleep pacing and commits
//!   the reshape when migration finishes. It rides the existing
//!   StoreMeta v3 checkpoints, so a crash (or an explicit
//!   [`ReshapeDriverHandle::stop`], which checkpoints the live
//!   cursor) resumes at the persisted cursor, not from zero.
//!   [`BlockStore::add_disks_background`] and
//!   [`BlockStore::remove_disks_background`] compose begin + driver
//!   into fire-and-forget reshapes.
//! - **Continuous scrub** ([`BlockStore::start_continuous_scrub`]) —
//!   pass after pass with a configurable idle interval between them,
//!   each pass paced by a `ScrubPacer` that samples the client op
//!   rate from the [`crate::obs::Metrics`] registry and adaptively
//!   widens or narrows scrub batches (and sleeps between them) to
//!   stay under a load budget. An optional per-pass deadline keeps a
//!   throttled pass from stretching forever: when the projected
//!   finish slips past the deadline the pacer sheds sleep and widens
//!   steps again.
//!
//! # Arbitration rules
//!
//! The scheduler admits at most one scrub (foreground, background, or
//! continuous — they all CAS `scrub_active`) and at most one reshape
//! driver (CAS on `MaintState::reshape_driver_active`) at a time.
//! When both run:
//!
//! 1. **Scrub yields to reshape.** Stripe indices change meaning
//!    across worlds, so while a reshape is active the scrubber parks
//!    in short sleeps (counted in
//!    [`MaintenanceStateSnapshot::scrub_yields`]) and resumes from
//!    cursor zero once the reshape commits.
//! 2. **Neither blocks the other's admission.** The driver never
//!    waits for a scrub; the scrubber never waits for the driver
//!    beyond rule 1.
//! 3. **Clients outrank both.** The reshape driver throttles via its
//!    own `sleep_us`; the scrubber throttles via the load budget.
//!    Every pacing decision is published in
//!    [`MaintenanceStateSnapshot`] (via [`BlockStore::stats`]) so the
//!    arbitration is observable, not inferred.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::backend::Backend;
use crate::error::StoreError;
use crate::obs::Metrics;
use crate::reshape::ReshapeReport;
use crate::scrub::{ScrubConfig, ScrubReport};
use crate::store::BlockStore;

/// Tuning for the background reshape driver.
#[derive(Clone, Debug)]
pub struct ReshapeDriverConfig {
    /// Migration batches pumped per [`BlockStore::reshape_step`] call
    /// (each batch is `ReshapeOptions::batch_stripes` target stripes).
    /// Clamped to at least 1.
    pub batches_per_step: usize,
    /// Microseconds slept between steps — the rate limit. `0` drives
    /// the migration flat out.
    pub sleep_us: u64,
}

impl Default for ReshapeDriverConfig {
    fn default() -> Self {
        ReshapeDriverConfig { batches_per_step: 1, sleep_us: 0 }
    }
}

/// What a reshape driver run did.
#[derive(Clone, Debug)]
pub struct ReshapeDriverReport {
    /// Migration cursor (target stripes already done) when the driver
    /// attached — non-zero when resuming a checkpointed reshape.
    pub resumed_from: u64,
    /// `reshape_step` calls the driver made.
    pub steps: u64,
    /// The commit report, or `None` when the driver was stopped
    /// before migration finished (the cursor was checkpointed; a
    /// later driver — or a reopen — resumes from it).
    pub report: Option<ReshapeReport>,
}

/// Handle to a background reshape driver started by
/// [`BlockStore::start_reshape_driver`].
#[derive(Debug)]
pub struct ReshapeDriverHandle {
    stop: Arc<AtomicBool>,
    thread: JoinHandle<Result<ReshapeDriverReport, StoreError>>,
}

impl ReshapeDriverHandle {
    /// Asks the driver to stop at the next step boundary. The
    /// migration cursor is checkpointed (file-backed stores), so a
    /// later driver or a reopen resumes from it.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Waits for the driver to finish and returns its report. A
    /// panicked driver thread propagates the panic.
    pub fn join(self) -> Result<ReshapeDriverReport, StoreError> {
        match self.thread.join() {
            Ok(r) => r,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    /// Whether the driver thread has exited (the `join` will not
    /// block).
    pub fn is_finished(&self) -> bool {
        self.thread.is_finished()
    }
}

/// Tuning for continuous scrubbing.
#[derive(Clone, Debug)]
pub struct ContinuousScrubConfig {
    /// Per-pass tuning. `stripes_per_step` seeds the pacer's step
    /// width; `sleep_us` is a floor under the pacer's adaptive sleep.
    pub pass: ScrubConfig,
    /// Milliseconds to idle between a completed pass and the
    /// auto-restarted next one.
    pub idle_ms: u64,
    /// Fraction of wall-clock time the scrubber may consume while
    /// clients are active (`0.2` = scrub at most ~20% duty cycle).
    /// Values are clamped to at least 0.01. When the store is idle
    /// the budget is ignored and the scrub runs flat out.
    pub load_budget: f64,
    /// Narrowest step the pacer will shrink to under load.
    pub min_stripes_per_step: usize,
    /// Widest step the pacer will grow to when idle or behind
    /// deadline.
    pub max_stripes_per_step: usize,
    /// Soft per-pass deadline in milliseconds; when the projected
    /// finish slips past it the pacer sheds sleep and widens steps.
    /// `0` disables the deadline.
    pub pass_deadline_ms: u64,
}

impl Default for ContinuousScrubConfig {
    fn default() -> Self {
        ContinuousScrubConfig {
            pass: ScrubConfig::default(),
            idle_ms: 1000,
            load_budget: 0.2,
            min_stripes_per_step: 1,
            max_stripes_per_step: 256,
            pass_deadline_ms: 0,
        }
    }
}

/// Accumulated totals across every pass of a continuous scrub run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ContinuousScrubReport {
    /// Full passes completed.
    pub passes: u64,
    /// Stripes verified across all passes (including a final partial
    /// pass).
    pub stripes: u64,
    /// Units rewritten for checksum mismatches, summed over passes.
    pub checksum_repairs: u64,
    /// Parity units recomputed, summed over passes.
    pub parity_repairs: u64,
    /// Times the scrubber woke from the idle interval to start
    /// another pass.
    pub idle_restarts: u64,
}

impl ContinuousScrubReport {
    fn absorb(&mut self, pass: &ScrubReport) {
        self.stripes += pass.stripes;
        self.checksum_repairs += pass.checksum_repairs;
        self.parity_repairs += pass.parity_repairs;
        if pass.completed {
            self.passes += 1;
        }
    }
}

/// Handle to a continuous scrub started by
/// [`BlockStore::start_continuous_scrub`].
#[derive(Debug)]
pub struct ContinuousScrubHandle {
    stop: Arc<AtomicBool>,
    thread: JoinHandle<Result<ContinuousScrubReport, StoreError>>,
}

impl ContinuousScrubHandle {
    /// Asks the scrubber to stop at the next batch (or idle-wait)
    /// boundary, checkpointing the cursor.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Waits for the scrubber to finish and returns the accumulated
    /// report. A panicked scrubber thread propagates the panic.
    pub fn join(self) -> Result<ContinuousScrubReport, StoreError> {
        match self.thread.join() {
            Ok(r) => r,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    /// Whether the scrubber thread has exited (the `join` will not
    /// block).
    pub fn is_finished(&self) -> bool {
        self.thread.is_finished()
    }
}

/// Clears an activity flag however the owning task ends (success,
/// error, or panic), so a failed task never wedges the scheduler.
struct FlagGuard<'a>(&'a AtomicBool);

impl Drop for FlagGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

/// Live maintenance-scheduler state owned by the store. All fields
/// are lock-free counters written by the maintenance threads and
/// snapshotted by [`BlockStore::stats`].
#[derive(Debug, Default)]
pub(crate) struct MaintState {
    /// A continuous scrub loop is running (implies `scrub_active`).
    pub(crate) continuous_scrub_active: AtomicBool,
    /// A reshape driver is running.
    pub(crate) reshape_driver_active: AtomicBool,
    /// Batches the scrubber parked because a reshape was active.
    pub(crate) scrub_yields: AtomicU64,
    /// Reshape driver runs that reached commit.
    pub(crate) driver_runs: AtomicU64,
    /// `reshape_step` calls made by drivers.
    pub(crate) driver_steps: AtomicU64,
    /// Driver runs that attached to a non-zero migration cursor.
    pub(crate) driver_resumes: AtomicU64,
    /// Scrub passes completed under pacing (continuous or
    /// [`BlockStore::scrub_paced`]).
    pub(crate) paced_passes: AtomicU64,
    /// Scrub passes completed by continuous-scrub loops.
    pub(crate) continuous_passes: AtomicU64,
    /// Idle intervals after which a continuous scrub restarted.
    pub(crate) idle_restarts: AtomicU64,
    /// Latest pacer step width (stripes per batch).
    pub(crate) paced_step: AtomicU64,
    /// Latest pacer inter-batch sleep in microseconds.
    pub(crate) paced_sleep_us: AtomicU64,
}

impl MaintState {
    pub(crate) fn snapshot(&self) -> MaintenanceStateSnapshot {
        MaintenanceStateSnapshot {
            continuous_scrub_active: self.continuous_scrub_active.load(Ordering::Acquire),
            reshape_driver_active: self.reshape_driver_active.load(Ordering::Acquire),
            scrub_yields: self.scrub_yields.load(Ordering::Relaxed),
            driver_runs: self.driver_runs.load(Ordering::Relaxed),
            driver_steps: self.driver_steps.load(Ordering::Relaxed),
            driver_resumes: self.driver_resumes.load(Ordering::Relaxed),
            paced_passes: self.paced_passes.load(Ordering::Relaxed),
            continuous_passes: self.continuous_passes.load(Ordering::Relaxed),
            idle_restarts: self.idle_restarts.load(Ordering::Relaxed),
            paced_step: self.paced_step.load(Ordering::Relaxed),
            paced_sleep_us: self.paced_sleep_us.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of the maintenance scheduler, embedded in
/// [`crate::StatsSnapshot`].
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize, PartialEq, Eq)]
pub struct MaintenanceStateSnapshot {
    /// A continuous scrub loop is running.
    pub continuous_scrub_active: bool,
    /// A background reshape driver is running.
    pub reshape_driver_active: bool,
    /// Scrub batches parked because a reshape was active (arbitration
    /// rule 1: scrub yields to reshape).
    pub scrub_yields: u64,
    /// Reshape driver runs that reached commit.
    pub driver_runs: u64,
    /// `reshape_step` calls made by drivers.
    pub driver_steps: u64,
    /// Driver runs that attached to a non-zero (resumed) cursor.
    pub driver_resumes: u64,
    /// Scrub passes completed under load-aware pacing.
    pub paced_passes: u64,
    /// Scrub passes completed by continuous-scrub loops.
    pub continuous_passes: u64,
    /// Idle intervals after which a continuous scrub restarted.
    pub idle_restarts: u64,
    /// Latest pacer step width (stripes per batch).
    pub paced_step: u64,
    /// Latest pacer inter-batch sleep in microseconds.
    pub paced_sleep_us: u64,
}

/// Adaptive scrub pacing: widens batches when the store is idle,
/// narrows them and inserts sleeps when clients are active, and sheds
/// throttle when a pass deadline slips.
///
/// The client op rate is sampled from [`Metrics::client_ops`]; if the
/// metrics registry is disabled the rate reads as zero and the pacer
/// treats the store as idle (scrubs flat out).
pub(crate) struct ScrubPacer {
    budget: f64,
    min_step: usize,
    max_step: usize,
    deadline: Option<Duration>,
    pass_started: Instant,
    last_check: Instant,
    last_ops: u64,
    busy: bool,
    step: usize,
    sleep_us: u64,
    /// EWMA of per-stripe scrub cost in nanoseconds.
    per_stripe_ns: f64,
}

/// Client ops/sec below which the store counts as idle.
const IDLE_OPS_PER_SEC: f64 = 50.0;
/// Cap on the pacer's inter-batch sleep.
const MAX_SLEEP_US: u64 = 20_000;
/// Target duration of one scrub burst while throttled. The cycle
/// granularity matters as much as the duty ratio: micro-bursts with
/// micro-sleeps spend more CPU on context switches than on scrubbing
/// (measured ~25% client loss at a 10% budget on a single-core host),
/// while over-long bursts stream enough data to evict the clients'
/// working set from cache on every cycle. ~250µs bursts sit between
/// the two failure modes: switch overhead is amortized to noise and
/// a burst touches well under a megabyte.
const TARGET_BURST_NS: f64 = 250_000.0;

impl ScrubPacer {
    pub(crate) fn new(cfg: &ContinuousScrubConfig) -> Self {
        let min_step = cfg.min_stripes_per_step.max(1);
        let max_step = cfg.max_stripes_per_step.max(min_step);
        let now = Instant::now();
        ScrubPacer {
            budget: cfg.load_budget.clamp(0.01, 1.0),
            min_step,
            max_step,
            deadline: (cfg.pass_deadline_ms > 0)
                .then(|| Duration::from_millis(cfg.pass_deadline_ms)),
            pass_started: now,
            last_check: now,
            last_ops: 0,
            // Presume loaded until the first rate sample proves
            // otherwise: starting flat-out would let the opening
            // burst (or, on a single core, the whole pass — the
            // clients may not have been scheduled yet) evade the
            // budget. One throttled cycle on a truly idle store
            // costs at most `MAX_SLEEP_US`.
            busy: true,
            step: cfg.pass.stripes_per_step.clamp(min_step, max_step),
            sleep_us: 0,
            per_stripe_ns: 0.0,
        }
    }

    /// Re-arms the deadline clock and the rate sampler for a new
    /// pass, back to the presumed-loaded state.
    pub(crate) fn reset_pass(&mut self, metrics: &Metrics) {
        self.pass_started = Instant::now();
        self.last_check = self.pass_started;
        self.last_ops = metrics.client_ops();
        self.busy = true;
    }

    /// Current step width in stripes.
    pub(crate) fn step(&self) -> usize {
        self.step
    }

    /// Called after each scrub batch: updates the cost model, samples
    /// the client op rate, and returns `(next_step, sleep_us)` for
    /// the next batch. Publishes both into `maint` for observability.
    pub(crate) fn pace(
        &mut self,
        metrics: &Metrics,
        maint: &MaintState,
        stripes_done: u64,
        stripes_total: u64,
        batch_ns: u64,
        batch_stripes: u64,
    ) -> (usize, u64) {
        if batch_stripes > 0 {
            let cost = batch_ns as f64 / batch_stripes as f64;
            self.per_stripe_ns = if self.per_stripe_ns == 0.0 {
                cost
            } else {
                self.per_stripe_ns * 0.7 + cost * 0.3
            };
        }
        // Sample the client op rate at most once per millisecond so a
        // fast batch loop doesn't divide by near-zero intervals.
        let now = Instant::now();
        let dt = now.duration_since(self.last_check);
        if dt >= Duration::from_millis(1) {
            let ops = metrics.client_ops();
            let rate = (ops.saturating_sub(self.last_ops)) as f64 / dt.as_secs_f64();
            self.busy = rate >= IDLE_OPS_PER_SEC;
            self.last_ops = ops;
            self.last_check = now;
        }
        if !self.busy || self.budget >= 1.0 {
            self.step = (self.step * 2).clamp(self.min_step, self.max_step);
            self.sleep_us = 0;
        } else {
            // Duty-cycle throttle in coarse bursts: size the step so
            // one burst lasts about [`TARGET_BURST_NS`], then sleep
            // long enough that scrub time is `budget` of the
            // scrub+sleep window (the sleep is computed from the
            // burst just measured, so a mis-sized step self-corrects
            // one cycle later).
            let per = self.per_stripe_ns.max(1.0);
            self.step = ((TARGET_BURST_NS / per) as usize).clamp(self.min_step, self.max_step);
            let sleep_ns = batch_ns as f64 * (1.0 - self.budget) / self.budget;
            self.sleep_us = ((sleep_ns / 1_000.0) as u64).min(MAX_SLEEP_US);
        }
        if let Some(dl) = self.deadline {
            let elapsed = self.pass_started.elapsed();
            if elapsed >= dl {
                self.step = self.max_step;
                self.sleep_us = 0;
            } else if self.per_stripe_ns > 0.0 {
                let left = stripes_total.saturating_sub(stripes_done) as f64;
                let batches = (left / self.step.max(1) as f64).ceil();
                let projected =
                    left * self.per_stripe_ns + batches * self.sleep_us as f64 * 1_000.0;
                if projected > (dl - elapsed).as_nanos() as f64 {
                    self.sleep_us /= 2;
                    self.step = (self.step * 2).clamp(self.min_step, self.max_step);
                }
            }
        }
        maint.paced_step.store(self.step as u64, Ordering::Relaxed);
        maint.paced_sleep_us.store(self.sleep_us, Ordering::Relaxed);
        (self.step, self.sleep_us)
    }
}

impl<B: Backend> BlockStore<B> {
    /// Drives the active reshape to completion on the calling thread:
    /// pumps [`BlockStore::reshape_step`] with the configured pacing
    /// and commits when migration finishes. Requires a reshape begun
    /// via [`BlockStore::begin_add_disks`] /
    /// [`BlockStore::begin_remove_disks`] (errors with
    /// [`StoreError::NoActiveReshape`] otherwise); errors with
    /// [`StoreError::ReshapeDriverInProgress`] if a driver is already
    /// attached.
    pub fn drive_reshape(
        &self,
        cfg: &ReshapeDriverConfig,
    ) -> Result<ReshapeDriverReport, StoreError> {
        if self
            .maint
            .reshape_driver_active
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(StoreError::ReshapeDriverInProgress);
        }
        let _active = FlagGuard(&self.maint.reshape_driver_active);
        self.drive_reshape_inner(cfg, None)
    }

    /// Starts a background reshape driver and returns a handle to
    /// stop or join it. The thread holds only a [`Weak`] store
    /// reference, so dropping every strong `Arc` ends the driver
    /// instead of leaking the store. Same admission errors as
    /// [`BlockStore::drive_reshape`].
    pub fn start_reshape_driver(
        self: &Arc<Self>,
        cfg: ReshapeDriverConfig,
    ) -> Result<ReshapeDriverHandle, StoreError>
    where
        B: 'static,
    {
        {
            // Fail fast on a missing reshape before claiming the slot.
            let st = self.state_read();
            if st.reshape.is_none() {
                return Err(StoreError::NoActiveReshape);
            }
        }
        if self
            .maint
            .reshape_driver_active
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(StoreError::ReshapeDriverInProgress);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let weak: Weak<Self> = Arc::downgrade(self);
        let stop_t = stop.clone();
        let thread = std::thread::Builder::new()
            .name("pdl-reshape".into())
            .spawn(move || {
                let Some(store) = weak.upgrade() else {
                    return Ok(ReshapeDriverReport { resumed_from: 0, steps: 0, report: None });
                };
                let _active = FlagGuard(&store.maint.reshape_driver_active);
                store.drive_reshape_inner(&cfg, Some(&stop_t))
            })
            .expect("spawn reshape driver thread");
        Ok(ReshapeDriverHandle { stop, thread })
    }

    /// Fire-and-forget capacity expansion: begins the add-disks
    /// reshape and attaches a background driver. Client traffic keeps
    /// flowing (dual-write window) while the driver migrates.
    pub fn add_disks_background(
        self: &Arc<Self>,
        new_physical: &[usize],
        cfg: ReshapeDriverConfig,
    ) -> Result<ReshapeDriverHandle, StoreError>
    where
        B: 'static,
    {
        self.begin_add_disks(new_physical)?;
        self.start_reshape_driver(cfg)
    }

    /// Fire-and-forget shrink: begins the remove-disks reshape and
    /// attaches a background driver.
    pub fn remove_disks_background(
        self: &Arc<Self>,
        logical: &[usize],
        cfg: ReshapeDriverConfig,
    ) -> Result<ReshapeDriverHandle, StoreError>
    where
        B: 'static,
    {
        self.begin_remove_disks(logical)?;
        self.start_reshape_driver(cfg)
    }

    /// The driver body. `stop` is `Some` for background drivers
    /// (checked at step boundaries) and `None` for foreground ones.
    /// The caller owns `maint.reshape_driver_active`.
    fn drive_reshape_inner(
        &self,
        cfg: &ReshapeDriverConfig,
        stop: Option<&AtomicBool>,
    ) -> Result<ReshapeDriverReport, StoreError> {
        let resumed_from = {
            let st = self.state_read();
            match &st.reshape {
                Some(rs) => rs.cursor.load(Ordering::Acquire),
                None => return Err(StoreError::NoActiveReshape),
            }
        };
        if resumed_from > 0 {
            self.maint.driver_resumes.fetch_add(1, Ordering::Relaxed);
        }
        let mut report = ReshapeDriverReport { resumed_from, steps: 0, report: None };
        loop {
            if let Some(s) = stop {
                if s.load(Ordering::Acquire) {
                    // Make the cursor durable so the next driver (or
                    // a reopen) resumes here instead of at the last
                    // periodic checkpoint.
                    self.checkpoint_active_reshape()?;
                    return Ok(report);
                }
            }
            let done = self.reshape_step(cfg.batches_per_step.max(1))?;
            report.steps += 1;
            self.maint.driver_steps.fetch_add(1, Ordering::Relaxed);
            if done {
                report.report = Some(self.complete_reshape()?);
                self.maint.driver_runs.fetch_add(1, Ordering::Relaxed);
                return Ok(report);
            }
            if cfg.sleep_us > 0 {
                std::thread::sleep(Duration::from_micros(cfg.sleep_us));
            }
        }
    }

    /// Runs one load-aware paced scrub pass on the calling thread:
    /// like [`BlockStore::scrub`], but batch width and inter-batch
    /// sleep adapt to the client op rate per `cfg`'s budget. Same
    /// admission errors as `scrub`.
    pub fn scrub_paced(&self, cfg: &ContinuousScrubConfig) -> Result<ScrubReport, StoreError> {
        if self
            .scrub_active
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(StoreError::ScrubInProgress);
        }
        let _active = FlagGuard(&self.scrub_active);
        let mut pacer = ScrubPacer::new(cfg);
        pacer.reset_pass(&self.metrics);
        self.scrub_pass(&cfg.pass, None, Some(&mut pacer))
    }

    /// Runs the continuous scrub loop on the calling thread until
    /// `stop` is raised: paced pass, idle interval, paced pass, …
    /// Errors with [`StoreError::ScrubInProgress`] if any scrub is
    /// already running.
    pub fn run_continuous_scrub(
        &self,
        cfg: &ContinuousScrubConfig,
        stop: &AtomicBool,
    ) -> Result<ContinuousScrubReport, StoreError> {
        if self
            .scrub_active
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(StoreError::ScrubInProgress);
        }
        let _active = FlagGuard(&self.scrub_active);
        self.continuous_scrub_loop(cfg, stop)
    }

    /// Starts a continuous scrub on a background thread and returns a
    /// handle to stop or join it. The thread holds only a [`Weak`]
    /// store reference, so dropping every strong `Arc` ends the loop.
    pub fn start_continuous_scrub(
        self: &Arc<Self>,
        cfg: ContinuousScrubConfig,
    ) -> Result<ContinuousScrubHandle, StoreError>
    where
        B: 'static,
    {
        if self
            .scrub_active
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(StoreError::ScrubInProgress);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let weak: Weak<Self> = Arc::downgrade(self);
        let stop_t = stop.clone();
        let thread = std::thread::Builder::new()
            .name("pdl-scrub-cont".into())
            .spawn(move || {
                let Some(store) = weak.upgrade() else {
                    return Ok(ContinuousScrubReport::default());
                };
                let _active = FlagGuard(&store.scrub_active);
                store.continuous_scrub_loop(&cfg, &stop_t)
            })
            .expect("spawn continuous scrub thread");
        Ok(ContinuousScrubHandle { stop, thread })
    }

    /// The continuous-scrub body. The caller owns `scrub_active`.
    fn continuous_scrub_loop(
        &self,
        cfg: &ContinuousScrubConfig,
        stop: &AtomicBool,
    ) -> Result<ContinuousScrubReport, StoreError> {
        self.maint.continuous_scrub_active.store(true, Ordering::Release);
        let _cont = FlagGuard(&self.maint.continuous_scrub_active);
        let mut report = ContinuousScrubReport::default();
        let mut pacer = ScrubPacer::new(cfg);
        loop {
            pacer.reset_pass(&self.metrics);
            let pass = self.scrub_pass(&cfg.pass, Some(stop), Some(&mut pacer))?;
            report.absorb(&pass);
            if pass.completed {
                self.maint.continuous_passes.fetch_add(1, Ordering::Relaxed);
            }
            if stop.load(Ordering::Acquire) {
                return Ok(report);
            }
            // Idle between passes in stop-aware slices so a stop
            // request doesn't wait out the whole interval.
            let idle_until = Instant::now() + Duration::from_millis(cfg.idle_ms);
            while Instant::now() < idle_until {
                if stop.load(Ordering::Acquire) {
                    return Ok(report);
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            report.idle_restarts += 1;
            self.maint.idle_restarts.fetch_add(1, Ordering::Relaxed);
        }
    }
}
