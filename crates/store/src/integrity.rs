//! End-to-end data integrity: per-unit checksums, transient-fault
//! retry policy, and per-disk health accounting.
//!
//! Real disks do not fail bimodally. The dominant failure modes are
//! *latent*: a sector silently decays, a write tears, a controller
//! returns a transient `EIO` that would have succeeded a millisecond
//! later. Parity declustering's value — the paper's `(k−1)/(v−1)`
//! rebuild-load claim — depends on catching those errors **before** a
//! second failure makes them unrecoverable, so this module gives the
//! store the substrate the scrubber ([`crate::scrub`]) and the read
//! paths build on:
//!
//! * [`xxh64`] — a local XXH64 implementation (like `gf256`, written
//!   here rather than pulled in as a dependency), hashing a 512-byte
//!   unit in tens of nanoseconds;
//! * [`ChecksumTable`] — one 64-bit checksum per *physical* unit,
//!   updated on every backend write the store issues and verified on
//!   the consume-as-is read paths. Unwritten units carry
//!   [`ChecksumTable::UNSET`] and are skipped, so a freshly created
//!   (zero-filled) store pays nothing until first write;
//! * [`RetryPolicy`] — bounded retry with linear backoff for
//!   transient backend errors ([`is_transient`]);
//! * [`HealthMonitor`] — per-disk error/repair/retry counters feeding
//!   a configurable auto-fail threshold. Crossing it queues the disk
//!   for [`crate::BlockStore::fail_disk`] at the next op epilogue
//!   (deferred: the counters are bumped under read guards that the
//!   failure transition itself needs exclusively).
//!
//! Checksums are authoritative in memory; file-backed stores persist
//! the table as a sidecar (`checksums.bin`, see
//! [`ChecksumTable::to_bytes`]) on flush and scrub checkpoints. A
//! crash can therefore leave sums *stale* relative to data that made
//! it to disk — the read path treats any mismatch as an erasure and
//! repairs through parity, which rewrites bytes identical to what is
//! on disk and corrects the stale sum, so stale-sum windows self-heal.

use crate::error::StoreError;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::Instant;

/// XXH64 prime constants.
const P1: u64 = 0x9E3779B185EBCA87;
const P2: u64 = 0xC2B2AE3D27D4EB4F;
const P3: u64 = 0x165667B19E3779F9;
const P4: u64 = 0x85EBCA77C2B2AE63;
const P5: u64 = 0x27D4EB2F165667C5;

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(P2)).rotate_left(31).wrapping_mul(P1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val)).wrapping_mul(P1).wrapping_add(P4)
}

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

#[inline]
fn read_u32(b: &[u8]) -> u64 {
    u32::from_le_bytes(b[..4].try_into().unwrap()) as u64
}

/// XXH64 of `data` with `seed` — bit-compatible with the reference
/// implementation (property-tested against published vectors below).
/// Four independent 64-bit lanes over 32-byte blocks keep the hot
/// loop superscalar; a 512-byte unit hashes in ~16 block iterations.
pub fn xxh64(seed: u64, data: &[u8]) -> u64 {
    let len = data.len();
    let mut rest = data;
    let mut h: u64 = if len >= 32 {
        let mut v1 = seed.wrapping_add(P1).wrapping_add(P2);
        let mut v2 = seed.wrapping_add(P2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(P1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64(&rest[0..]));
            v2 = round(v2, read_u64(&rest[8..]));
            v3 = round(v3, read_u64(&rest[16..]));
            v4 = round(v4, read_u64(&rest[24..]));
            rest = &rest[32..];
        }
        let mut h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        merge_round(h, v4)
    } else {
        seed.wrapping_add(P5)
    };
    h = h.wrapping_add(len as u64);
    while rest.len() >= 8 {
        h = (h ^ round(0, read_u64(rest))).rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h = (h ^ read_u32(rest).wrapping_mul(P1)).rotate_left(23).wrapping_mul(P2).wrapping_add(P3);
        rest = &rest[4..];
    }
    for &b in rest {
        h = (h ^ (b as u64).wrapping_mul(P5)).rotate_left(11).wrapping_mul(P1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^ (h >> 32)
}

/// One 64-bit checksum per physical unit, per disk.
///
/// Lookups and updates are relaxed atomics under a table-wide read
/// lock (an uncontended atomic on the hot path); the write lock is
/// taken only by geometry changes (reshape grow/trim, wipe), which
/// already run under the store's exclusive state guard with no I/O in
/// flight. Entries hold [`ChecksumTable::UNSET`] until first written;
/// a computed hash that collides with the sentinel is stored as `1`
/// ([`ChecksumTable::encode`]), so "never written" and "written" are
/// always distinguishable.
///
/// Each column also carries a *dirty bitmap* (one bit per unit, set
/// by every [`ChecksumTable::record`]) so the persister can append
/// only changed entries to an incremental sidecar log
/// ([`ChecksumTable::drain_dirty`]) instead of rewriting the whole
/// table on every flush.
#[derive(Debug)]
pub struct ChecksumTable {
    disks: RwLock<Vec<Column>>,
}

/// One disk's checksums plus the dirty bitmap tracking which entries
/// changed since the last persist.
#[derive(Debug)]
struct Column {
    sums: Box<[AtomicU64]>,
    /// `(units + 63) / 64` words; bit `offset % 64` of word
    /// `offset / 64` is set when that unit's sum changed.
    dirty: Box<[AtomicU64]>,
}

impl Column {
    fn new(units: usize) -> Self {
        let zeroed = |n: usize, v: u64| (0..n).map(|_| AtomicU64::new(v)).collect::<Box<[_]>>();
        Column { sums: zeroed(units, ChecksumTable::UNSET), dirty: zeroed(units.div_ceil(64), 0) }
    }

    #[inline]
    fn mark_dirty(&self, offset: usize) {
        if let Some(w) = self.dirty.get(offset / 64) {
            w.fetch_or(1u64 << (offset % 64), Ordering::Relaxed);
        }
    }
}

impl ChecksumTable {
    /// The "no checksum recorded" sentinel: verification is skipped.
    pub const UNSET: u64 = 0;

    /// Seed for every unit hash (arbitrary, fixed for persistence).
    pub const SEED: u64 = 0x70646c5f73756d73; // "pdl_sums"

    /// A table of `disks × units` unset entries.
    pub fn new(disks: usize, units: usize) -> Self {
        ChecksumTable { disks: RwLock::new((0..disks).map(|_| Column::new(units)).collect()) }
    }

    /// The table's geometry as `(disks, units_per_disk)`.
    pub fn geometry(&self) -> (usize, usize) {
        let t = self.disks.read().unwrap();
        (t.len(), t.first().map(|d| d.sums.len()).unwrap_or(0))
    }

    /// Maps a computed hash into the stored encoding (never the
    /// sentinel).
    #[inline]
    pub fn encode(h: u64) -> u64 {
        if h == Self::UNSET {
            1
        } else {
            h
        }
    }

    /// Records the checksum of `data` as unit `(disk, offset)`'s
    /// current content. Offsets past the table (a backend grown
    /// without a matching [`ChecksumTable::resize_units`]) are
    /// ignored defensively.
    #[inline]
    pub fn record(&self, disk: usize, offset: usize, data: &[u8]) {
        let t = self.disks.read().unwrap();
        let Some(d) = t.get(disk) else { return };
        if let Some(slot) = d.sums.get(offset) {
            slot.store(Self::encode(xxh64(Self::SEED, data)), Ordering::Relaxed);
            d.mark_dirty(offset);
        }
    }

    /// Records checksums for a contiguous span of units starting at
    /// `(disk, start)`; `data` holds the units back to back.
    pub fn record_span(&self, disk: usize, start: usize, data: &[u8], unit_size: usize) {
        let t = self.disks.read().unwrap();
        let Some(d) = t.get(disk) else { return };
        for (i, unit) in data.chunks_exact(unit_size).enumerate() {
            if let Some(slot) = d.sums.get(start + i) {
                slot.store(Self::encode(xxh64(Self::SEED, unit)), Ordering::Relaxed);
                d.mark_dirty(start + i);
            }
        }
    }

    /// Verifies `data` against unit `(disk, offset)`'s recorded
    /// checksum. `true` when they match **or** no checksum is
    /// recorded yet.
    #[inline]
    pub fn check(&self, disk: usize, offset: usize, data: &[u8]) -> bool {
        let t = self.disks.read().unwrap();
        match t.get(disk).and_then(|d| d.sums.get(offset)) {
            Some(slot) => {
                let stored = slot.load(Ordering::Relaxed);
                stored == Self::UNSET || stored == Self::encode(xxh64(Self::SEED, data))
            }
            None => true,
        }
    }

    /// Verifies a contiguous span of units starting at `(disk,
    /// start)` — `data` holds the units back to back — in **one**
    /// table-lock acquisition instead of a `check` call (and its
    /// `RwLock` read) per unit. Offsets of mismatching units are
    /// appended to `bad`; units with no recorded checksum pass, as
    /// in [`ChecksumTable::check`]. Returns `true` when every unit
    /// passed.
    pub fn check_span(
        &self,
        disk: usize,
        start: usize,
        data: &[u8],
        unit_size: usize,
        bad: &mut Vec<usize>,
    ) -> bool {
        let t = self.disks.read().unwrap();
        let Some(d) = t.get(disk) else { return true };
        let before = bad.len();
        for (i, unit) in data.chunks_exact(unit_size).enumerate() {
            if let Some(slot) = d.sums.get(start + i) {
                let stored = slot.load(Ordering::Relaxed);
                if stored != Self::UNSET && stored != Self::encode(xxh64(Self::SEED, unit)) {
                    bad.push(start + i);
                }
            }
        }
        bad.len() == before
    }

    /// Verifies a batch of (offset, unit-bytes) pairs on `disk` in
    /// one table-lock acquisition — the scattered-run counterpart of
    /// [`ChecksumTable::check_span`]. Mismatching offsets are
    /// appended to `bad`; returns `true` when every unit passed.
    pub fn check_many(&self, disk: usize, units: &[(usize, &[u8])], bad: &mut Vec<usize>) -> bool {
        let t = self.disks.read().unwrap();
        let Some(d) = t.get(disk) else { return true };
        let before = bad.len();
        for &(offset, unit) in units {
            if let Some(slot) = d.sums.get(offset) {
                let stored = slot.load(Ordering::Relaxed);
                if stored != Self::UNSET && stored != Self::encode(xxh64(Self::SEED, unit)) {
                    bad.push(offset);
                }
            }
        }
        bad.len() == before
    }

    /// Whether unit `(disk, offset)` has a recorded checksum.
    pub fn recorded(&self, disk: usize, offset: usize) -> bool {
        let t = self.disks.read().unwrap();
        t.get(disk).and_then(|d| d.sums.get(offset)).map(|s| s.load(Ordering::Relaxed))
            != Some(Self::UNSET)
    }

    /// Stores a raw (already encoded) sum without touching the dirty
    /// bitmap — the sidecar-log replay path, which must not re-dirty
    /// entries it just read back from disk.
    pub fn set_raw(&self, disk: usize, offset: usize, sum: u64) {
        let t = self.disks.read().unwrap();
        if let Some(slot) = t.get(disk).and_then(|d| d.sums.get(offset)) {
            slot.store(sum, Ordering::Relaxed);
        }
    }

    /// Drains the dirty bitmap, invoking `f(disk, offset, sum)` for
    /// every entry recorded since the last drain. Each bitmap word is
    /// atomically swapped to zero before its bits are walked, so a
    /// concurrent `record` is either captured by this drain or left
    /// dirty for the next one — never lost. (A sum racing the drain
    /// may be captured at its newer value and persisted again next
    /// drain; the sidecar is best-effort and self-healing, so
    /// over-persisting is harmless.)
    pub fn drain_dirty(&self, mut f: impl FnMut(usize, usize, u64)) {
        let t = self.disks.read().unwrap();
        for (disk, col) in t.iter().enumerate() {
            for (wi, word) in col.dirty.iter().enumerate() {
                let mut bits = word.swap(0, Ordering::AcqRel);
                while bits != 0 {
                    let bit = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let offset = wi * 64 + bit;
                    if let Some(slot) = col.sums.get(offset) {
                        f(disk, offset, slot.load(Ordering::Relaxed));
                    }
                }
            }
        }
    }

    /// Forgets every checksum on `disk` (its medium was wiped or
    /// replaced underneath the store).
    pub fn clear_disk(&self, disk: usize) {
        let t = self.disks.read().unwrap();
        if let Some(d) = t.get(disk) {
            for (offset, slot) in d.sums.iter().enumerate() {
                slot.store(Self::UNSET, Ordering::Relaxed);
                d.mark_dirty(offset);
            }
        }
    }

    /// Resizes every disk's column to `units` entries, preserving the
    /// common prefix (reshape grow/trim). Callers hold the store's
    /// exclusive state guard, so no data-path lookups race the swap.
    pub fn resize_units(&self, units: usize) {
        let mut t = self.disks.write().unwrap();
        for d in t.iter_mut() {
            let next = Column::new(units);
            for i in 0..units {
                let v = d.sums.get(i).map(|s| s.load(Ordering::Relaxed)).unwrap_or(Self::UNSET);
                next.sums[i].store(v, Ordering::Relaxed);
                next.mark_dirty(i);
            }
            *d = next;
        }
    }

    /// Slides `disk`'s entries down by `base` rows (`[base, base+n)`
    /// → `[0, n)`), mirroring the reshape commit's physical slide of
    /// the scratch region.
    pub fn slide_down(&self, disk: usize, base: usize, n: usize) {
        let t = self.disks.read().unwrap();
        let Some(d) = t.get(disk) else { return };
        for row in 0..n {
            let v =
                d.sums.get(base + row).map(|s| s.load(Ordering::Relaxed)).unwrap_or(Self::UNSET);
            if let Some(dst) = d.sums.get(row) {
                dst.store(v, Ordering::Relaxed);
                d.mark_dirty(row);
            }
        }
    }

    /// Serializes the table for the sidecar file: a fixed header
    /// (magic, geometry) followed by raw little-endian entries.
    pub fn to_bytes(&self) -> Vec<u8> {
        let t = self.disks.read().unwrap();
        let disks = t.len();
        let units = t.first().map(|d| d.sums.len()).unwrap_or(0);
        let mut out = Vec::with_capacity(24 + disks * units * 8);
        out.extend_from_slice(b"PDLSUM1\0");
        out.extend_from_slice(&(disks as u64).to_le_bytes());
        out.extend_from_slice(&(units as u64).to_le_bytes());
        for d in t.iter() {
            for slot in d.sums.iter() {
                out.extend_from_slice(&slot.load(Ordering::Relaxed).to_le_bytes());
            }
        }
        out
    }

    /// Loads a sidecar produced by [`ChecksumTable::to_bytes`] into
    /// this table. Returns `false` (leaving the table unset — every
    /// verification skipped until rewritten or adopted by a scrub)
    /// when the bytes are malformed or the geometry disagrees, so a
    /// stale sidecar can never fail an open.
    pub fn load_bytes(&self, bytes: &[u8]) -> bool {
        let t = self.disks.read().unwrap();
        let disks = t.len();
        let units = t.first().map(|d| d.sums.len()).unwrap_or(0);
        if bytes.len() != 24 + disks * units * 8 || &bytes[..8] != b"PDLSUM1\0" {
            return false;
        }
        let rd = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        if rd(8) != disks as u64 || rd(16) != units as u64 {
            return false;
        }
        let mut at = 24;
        for d in t.iter() {
            for slot in d.sums.iter() {
                slot.store(rd(at), Ordering::Relaxed);
                at += 8;
            }
        }
        true
    }
}

/// Bounded-retry policy for transient backend errors, applied by the
/// store around every backend call it issues. Attempt `i` (1-based)
/// sleeps `backoff_us × i` microseconds before retrying.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failure (`0` disables retrying).
    pub max_retries: u32,
    /// Linear backoff step in microseconds.
    pub backoff_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 3, backoff_us: 50 }
    }
}

/// Whether `e` is a transient backend error worth retrying: the
/// kinds a real device driver surfaces for recoverable hiccups
/// (interrupted call, momentary unavailability, timeout).
pub fn is_transient(e: &StoreError) -> bool {
    use std::io::ErrorKind;
    match e {
        StoreError::Io(io) => matches!(
            io.kind(),
            ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut
        ),
        _ => false,
    }
}

/// Per-disk health accounting and the auto-fail policy.
///
/// Counters are bumped from data paths holding shared guards; the
/// failure transition needs the exclusive guard, so a threshold
/// crossing only *queues* the physical disk here — the store applies
/// the queue at op epilogues ([`crate::BlockStore`] calls
/// `apply_pending_health` after its guards drop).
#[derive(Debug)]
pub struct HealthMonitor {
    /// Hard (post-retry) backend errors per physical disk.
    errors: Vec<AtomicU64>,
    /// Checksum repairs whose corrupt unit lived on this disk.
    repairs: Vec<AtomicU64>,
    /// Transient errors absorbed by retry, per physical disk.
    retries: Vec<AtomicU64>,
    /// `errors + repairs` count at which a disk auto-fails
    /// (`0` disables the policy — the default).
    threshold: AtomicU64,
    /// Decaying recent-error count per physical disk: bumped with
    /// `errors`/`repairs`, halved every elapsed [`rate_window_ms`]
    /// (`rate_window_ms`: field below), so a burst spikes it while
    /// the same errors spread over many windows stay near zero.
    recent: Vec<AtomicU64>,
    /// Recent-count at which a disk auto-fails (`0` disables the
    /// rate policy — the default).
    rate_threshold: AtomicU64,
    /// Half-life of the `recent` counters in milliseconds.
    rate_window_ms: AtomicU64,
    /// When the `recent` counters were last decayed.
    last_decay: Mutex<Instant>,
    /// Physical disks queued for auto-fail.
    pending: Mutex<Vec<usize>>,
    /// Disks the policy has auto-failed (sticky, for stats).
    auto_failed: Mutex<Vec<usize>>,
}

impl HealthMonitor {
    /// A monitor for `disks` physical disks, auto-fail disabled.
    pub fn new(disks: usize) -> Self {
        let zeros = |n: usize| (0..n).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        HealthMonitor {
            errors: zeros(disks),
            repairs: zeros(disks),
            retries: zeros(disks),
            threshold: AtomicU64::new(0),
            recent: zeros(disks),
            rate_threshold: AtomicU64::new(0),
            rate_window_ms: AtomicU64::new(1000),
            last_decay: Mutex::new(Instant::now()),
            pending: Mutex::new(Vec::new()),
            auto_failed: Mutex::new(Vec::new()),
        }
    }

    /// Sets the auto-fail threshold (`0` disables).
    pub fn set_threshold(&self, n: u64) {
        self.threshold.store(n, Ordering::Relaxed);
    }

    /// Sets the rate-based auto-fail policy: a disk whose decaying
    /// recent-error count reaches `threshold` is queued for auto-fail
    /// even if its cumulative score is under the cumulative
    /// threshold. The count halves every `window_ms` milliseconds, so
    /// `threshold` errors inside roughly one window trip the policy
    /// while the same errors spread across many windows do not.
    /// `threshold == 0` disables (the default); `window_ms` is
    /// clamped to at least 1.
    pub fn set_rate_policy(&self, threshold: u64, window_ms: u64) {
        self.rate_window_ms.store(window_ms.max(1), Ordering::Relaxed);
        self.rate_threshold.store(threshold, Ordering::Relaxed);
    }

    /// Halves every `recent` counter once per elapsed window since
    /// the last decay (a whole-array pass under the decay mutex; only
    /// error paths get here, so it is never hot).
    fn decay_recent(&self) {
        let window = self.rate_window_ms.load(Ordering::Relaxed).max(1);
        let mut last = Self::locked(&self.last_decay);
        let elapsed_ms = last.elapsed().as_millis() as u64;
        let periods = elapsed_ms / window;
        if periods == 0 {
            return;
        }
        *last += std::time::Duration::from_millis(periods * window);
        let shift = periods.min(63) as u32;
        for c in &self.recent {
            let v = c.load(Ordering::Relaxed);
            if v != 0 {
                c.store(v >> shift, Ordering::Relaxed);
            }
        }
    }

    /// Bumps `disk`'s decaying recent-error count and queues the disk
    /// when the rate policy's threshold is reached.
    fn note_recent(&self, disk: usize) {
        let th = self.rate_threshold.load(Ordering::Relaxed);
        if th == 0 || disk >= self.recent.len() {
            return;
        }
        self.decay_recent();
        if self.recent[disk].fetch_add(1, Ordering::Relaxed) + 1 >= th {
            let mut p = Self::locked(&self.pending);
            if !p.contains(&disk) {
                p.push(disk);
            }
        }
    }

    fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn maybe_queue(&self, disk: usize) {
        let th = self.threshold.load(Ordering::Relaxed);
        if th == 0 || disk >= self.errors.len() {
            return;
        }
        let score =
            self.errors[disk].load(Ordering::Relaxed) + self.repairs[disk].load(Ordering::Relaxed);
        if score >= th {
            let mut p = Self::locked(&self.pending);
            if !p.contains(&disk) {
                p.push(disk);
            }
        }
    }

    /// The auto-fail score of `disk`: hard errors plus checksum
    /// repairs.
    pub fn score(&self, disk: usize) -> u64 {
        match (self.errors.get(disk), self.repairs.get(disk)) {
            (Some(e), Some(r)) => e.load(Ordering::Relaxed) + r.load(Ordering::Relaxed),
            _ => 0,
        }
    }

    /// Counts one hard (post-retry) error on `disk`.
    pub fn note_error(&self, disk: usize) {
        if let Some(c) = self.errors.get(disk) {
            c.fetch_add(1, Ordering::Relaxed);
        }
        self.note_recent(disk);
        self.maybe_queue(disk);
    }

    /// Counts one checksum repair whose corrupt unit lived on `disk`.
    pub fn note_repair(&self, disk: usize) {
        if let Some(c) = self.repairs.get(disk) {
            c.fetch_add(1, Ordering::Relaxed);
        }
        self.note_recent(disk);
        self.maybe_queue(disk);
    }

    /// Counts one transient error absorbed by retry on `disk`.
    pub fn note_retry(&self, disk: usize) {
        if let Some(c) = self.retries.get(disk) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drains the auto-fail queue (the store applies it).
    pub fn take_pending(&self) -> Vec<usize> {
        std::mem::take(&mut *Self::locked(&self.pending))
    }

    /// Re-queues a disk whose auto-fail could not be applied yet
    /// (reshape active, failure budget exhausted).
    pub fn requeue(&self, disk: usize) {
        let mut p = Self::locked(&self.pending);
        if !p.contains(&disk) {
            p.push(disk);
        }
    }

    /// Whether any disk is queued for auto-fail (one cheap check for
    /// the op epilogue — avoids the drain dance when idle).
    pub fn has_pending(&self) -> bool {
        !Self::locked(&self.pending).is_empty()
    }

    /// Records that the policy auto-failed `disk`.
    pub fn note_auto_failed(&self, disk: usize) {
        let mut a = Self::locked(&self.auto_failed);
        if !a.contains(&disk) {
            a.push(disk);
        }
    }

    /// Per-disk health rows for [`crate::StatsSnapshot`].
    pub fn snapshot(&self) -> Vec<DiskHealthSnapshot> {
        let auto = Self::locked(&self.auto_failed).clone();
        (0..self.errors.len())
            .map(|d| DiskHealthSnapshot {
                disk: d,
                errors: self.errors[d].load(Ordering::Relaxed),
                repairs: self.repairs[d].load(Ordering::Relaxed),
                retries: self.retries[d].load(Ordering::Relaxed),
                recent: self.recent[d].load(Ordering::Relaxed),
                auto_failed: auto.contains(&d),
            })
            .collect()
    }
}

/// One physical disk's health row in a [`crate::StatsSnapshot`].
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DiskHealthSnapshot {
    /// Physical backend disk index.
    pub disk: usize,
    /// Hard (post-retry) backend errors.
    pub errors: u64,
    /// Checksum repairs whose corrupt unit lived here.
    pub repairs: u64,
    /// Transient errors absorbed by retry.
    pub retries: u64,
    /// Decaying recent-error count (the rate policy's input; halves
    /// every rate window).
    pub recent: u64,
    /// Whether the health policy auto-failed this disk.
    pub auto_failed: bool,
}

/// Integrity-subsystem totals in a [`crate::StatsSnapshot`].
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct IntegrityStatsSnapshot {
    /// Units rewritten because their checksum mismatched.
    pub checksum_repairs: u64,
    /// Parity units rewritten because the stripe's parity equations
    /// failed while every data checksum verified.
    pub parity_repairs: u64,
    /// Transient backend errors absorbed by retry (all disks).
    pub transient_retries: u64,
    /// Completed scrub passes.
    pub scrub_passes: u64,
    /// The persisted scrub cursor (stripes into the current pass;
    /// `0` when no pass is mid-flight).
    pub scrub_cursor: u64,
    /// Per-physical-disk health rows.
    pub disk_health: Vec<DiskHealthSnapshot>,
}

/// The store-owned integrity state: checksum table, retry policy,
/// health monitor, and the global repair counters.
#[derive(Debug)]
pub struct Integrity {
    /// Per-unit checksums (physical geometry).
    pub sums: ChecksumTable,
    /// Per-disk health + auto-fail queue.
    pub health: HealthMonitor,
    /// Checksum verification on/off (on by default). Off, reads skip
    /// hashing and writes skip recording — the bench's overhead
    /// control.
    pub verify: AtomicBool,
    /// Retry count for transient errors.
    pub max_retries: AtomicU32,
    /// Linear backoff step (µs) between retries.
    pub backoff_us: AtomicU64,
    /// Units rewritten by read-repair or scrub (data or parity decode).
    pub checksum_repairs: AtomicU64,
    /// Parity units recomputed from verified data by the scrubber.
    pub parity_repairs: AtomicU64,
    /// Completed scrub passes.
    pub scrub_passes: AtomicU64,
}

impl Integrity {
    /// Integrity state for `disks × units` physical units with the
    /// default retry policy, verification enabled.
    pub fn new(disks: usize, units: usize) -> Self {
        let rp = RetryPolicy::default();
        Integrity {
            sums: ChecksumTable::new(disks, units),
            health: HealthMonitor::new(disks),
            verify: AtomicBool::new(true),
            max_retries: AtomicU32::new(rp.max_retries),
            backoff_us: AtomicU64::new(rp.backoff_us),
            checksum_repairs: AtomicU64::new(0),
            parity_repairs: AtomicU64::new(0),
            scrub_passes: AtomicU64::new(0),
        }
    }

    /// Whether checksum verification is enabled.
    #[inline]
    pub fn verifying(&self) -> bool {
        self.verify.load(Ordering::Relaxed)
    }

    /// The current retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy {
            max_retries: self.max_retries.load(Ordering::Relaxed),
            backoff_us: self.backoff_us.load(Ordering::Relaxed),
        }
    }

    /// Runs `f` with bounded retry on transient errors, counting
    /// retries (and the final hard error, if any) against physical
    /// `disk`'s health.
    pub fn retrying<T>(
        &self,
        disk: usize,
        mut f: impl FnMut() -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        let policy = self.retry_policy();
        let mut attempt = 0u32;
        loop {
            match f() {
                Ok(v) => return Ok(v),
                Err(e) if is_transient(&e) && attempt < policy.max_retries => {
                    attempt += 1;
                    self.health.note_retry(disk);
                    if policy.backoff_us > 0 {
                        std::thread::sleep(std::time::Duration::from_micros(
                            policy.backoff_us * attempt as u64,
                        ));
                    }
                }
                Err(e) => {
                    self.health.note_error(disk);
                    return Err(e);
                }
            }
        }
    }

    /// Integrity totals for [`crate::StatsSnapshot`] (`scrub_cursor`
    /// is owned by the store and patched in by the caller).
    pub fn snapshot(&self) -> IntegrityStatsSnapshot {
        let health = self.health.snapshot();
        IntegrityStatsSnapshot {
            checksum_repairs: self.checksum_repairs.load(Ordering::Relaxed),
            parity_repairs: self.parity_repairs.load(Ordering::Relaxed),
            transient_retries: health.iter().map(|d| d.retries).sum(),
            scrub_passes: self.scrub_passes.load(Ordering::Relaxed),
            scrub_cursor: 0,
            disk_health: health,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published XXH64 reference vectors (xxhash's own sanity table:
    /// the byte sequence is `2654435761^n`-generated, same as the
    /// upstream `XSUM_sanityCheck`).
    #[test]
    fn xxh64_matches_reference_vectors() {
        const PRIME32: u64 = 2654435761;
        let mut gen: u32 = PRIME32 as u32;
        let buf: Vec<u8> = (0..101)
            .map(|_| {
                let b = (gen >> 24) as u8;
                gen = gen.wrapping_mul(gen);
                b
            })
            .collect();
        let cases: [(usize, u64, u64); 8] = [
            (0, 0, 0xEF46DB3751D8E999),
            (0, PRIME32, 0xAC75FDA2929B17EF),
            (1, 0, 0x4FCE394CC88952D8),
            (1, PRIME32, 0x739840CB819FA723),
            (14, 0, 0xCFFA8DB881BC3A3D),
            (14, PRIME32, 0x5B9611585EFCC9CB),
            (101, 0, 0x0EAB543384F878AD),
            (101, PRIME32, 0xCAA65939306F1E21),
        ];
        for (len, seed, want) in cases {
            assert_eq!(xxh64(seed, &buf[..len]), want, "len {len} seed {seed}");
        }
    }

    #[test]
    fn checksum_table_roundtrip_and_sentinel() {
        let t = ChecksumTable::new(2, 4);
        let a = [1u8, 2, 3, 4];
        let b = [9u8, 9, 9, 9];
        assert!(t.check(0, 0, &a), "unset entries verify anything");
        assert!(!t.recorded(0, 0));
        t.record(0, 0, &a);
        assert!(t.recorded(0, 0));
        assert!(t.check(0, 0, &a));
        assert!(!t.check(0, 0, &b), "mismatch detected");
        t.record(0, 0, &b);
        assert!(t.check(0, 0, &b));
        // Spans.
        let two = [5u8, 5, 5, 5, 6, 6, 6, 6];
        t.record_span(1, 1, &two, 4);
        assert!(t.check(1, 1, &two[..4]));
        assert!(t.check(1, 2, &two[4..]));
        assert!(!t.check(1, 2, &two[..4]));
        // Wipe forgets.
        t.clear_disk(1);
        assert!(t.check(1, 1, &a));
        // Out-of-range access is a no-op, never a panic.
        t.record(9, 9, &a);
        assert!(t.check(9, 9, &a));
    }

    #[test]
    fn batch_checks_match_per_unit_checks() {
        let t = ChecksumTable::new(2, 8);
        let units: Vec<[u8; 4]> = (0..6u8).map(|i| [i; 4]).collect();
        let span: Vec<u8> = units.iter().flat_map(|u| u.iter().copied()).collect();
        t.record_span(0, 1, &span, 4);
        // Clean span passes and reports nothing.
        let mut bad = Vec::new();
        assert!(t.check_span(0, 1, &span, 4, &mut bad));
        assert!(bad.is_empty());
        // Corrupt two units mid-span: both offsets reported, in
        // order, matching what per-unit check() says.
        let mut torn = span.clone();
        torn[4] ^= 0xff; // unit at offset 2
        torn[16] ^= 0xff; // unit at offset 5
        assert!(!t.check_span(0, 1, &torn, 4, &mut bad));
        assert_eq!(bad, vec![2, 5]);
        for (i, u) in torn.chunks_exact(4).enumerate() {
            assert_eq!(t.check(0, 1 + i, u), !bad.contains(&(1 + i)));
        }
        // Unset entries pass (offset 7 never recorded).
        bad.clear();
        assert!(t.check_span(0, 7, &[0xab; 4], 4, &mut bad));
        // check_many over scattered offsets agrees too.
        let scattered: Vec<(usize, &[u8])> =
            vec![(1, &torn[..4]), (2, &torn[4..8]), (5, &torn[16..20])];
        assert!(!t.check_many(0, &scattered, &mut bad));
        assert_eq!(bad, vec![2, 5]);
        // Out-of-range disk is a pass, never a panic.
        bad.clear();
        assert!(t.check_many(9, &scattered, &mut bad));
        assert!(t.check_span(9, 0, &span, 4, &mut bad));
    }

    #[test]
    fn checksum_table_resize_slide_and_bytes() {
        let t = ChecksumTable::new(1, 6);
        let unit = [7u8; 4];
        t.record(0, 4, &unit);
        t.slide_down(0, 4, 2);
        assert!(t.recorded(0, 0), "slid down from row 4");
        assert!(t.check(0, 0, &unit));
        t.resize_units(2);
        assert!(t.check(0, 0, &unit));
        let bytes = t.to_bytes();
        let u = ChecksumTable::new(1, 2);
        assert!(u.load_bytes(&bytes));
        assert!(u.check(0, 0, &unit));
        assert!(!u.check(0, 0, &[0u8; 4]));
        // Geometry mismatch refuses, table stays unset.
        let w = ChecksumTable::new(2, 2);
        assert!(!w.load_bytes(&bytes));
        assert!(!w.recorded(0, 0));
        assert!(!w.load_bytes(b"garbage"));
    }

    #[test]
    fn retrying_absorbs_transients_and_counts_health() {
        let ig = Integrity::new(2, 4);
        ig.backoff_us.store(0, Ordering::Relaxed);
        let mut failures = 2;
        let out: Result<u32, StoreError> = ig.retrying(1, || {
            if failures > 0 {
                failures -= 1;
                Err(StoreError::Io(std::io::Error::from(std::io::ErrorKind::Interrupted)))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        let snap = ig.health.snapshot();
        assert_eq!(snap[1].retries, 2);
        assert_eq!(snap[1].errors, 0);
        // A non-transient error is not retried and counts as hard.
        let out: Result<(), StoreError> =
            ig.retrying(0, || Err(StoreError::Corrupt("nope".into())));
        assert!(out.is_err());
        assert_eq!(ig.health.snapshot()[0].errors, 1);
        // Transients past the budget surface as hard errors.
        let out: Result<(), StoreError> = ig.retrying(0, || {
            Err(StoreError::Io(std::io::Error::from(std::io::ErrorKind::TimedOut)))
        });
        assert!(out.is_err());
        let snap = ig.health.snapshot();
        assert_eq!(snap[0].errors, 2);
        assert_eq!(snap[0].retries, 3, "default budget burned");
    }

    #[test]
    fn dirty_bitmap_drains_once_and_recaptures() {
        let t = ChecksumTable::new(2, 70); // spans two bitmap words
        let unit = [3u8; 4];
        t.record(0, 0, &unit);
        t.record(0, 69, &unit);
        t.record(1, 5, &unit);
        let mut got = Vec::new();
        t.drain_dirty(|d, o, s| got.push((d, o, s)));
        got.sort_unstable();
        assert_eq!(got.len(), 3);
        assert_eq!((got[0].0, got[0].1), (0, 0));
        assert_eq!((got[1].0, got[1].1), (0, 69));
        assert_eq!((got[2].0, got[2].1), (1, 5));
        assert_eq!(got[0].2, ChecksumTable::encode(xxh64(ChecksumTable::SEED, &unit)));
        // Drained entries stay drained until re-recorded.
        let mut again = Vec::new();
        t.drain_dirty(|d, o, s| again.push((d, o, s)));
        assert!(again.is_empty());
        t.record(0, 69, &unit);
        t.drain_dirty(|d, o, _| again.push((d, o, 0)));
        assert_eq!(again, vec![(0, 69, 0)]);
        // set_raw applies without dirtying (the replay path).
        t.set_raw(1, 7, 42);
        assert!(t.recorded(1, 7));
        let mut raw = Vec::new();
        t.drain_dirty(|d, o, _| raw.push((d, o)));
        assert!(raw.is_empty());
        assert_eq!(t.geometry(), (2, 70));
    }

    #[test]
    fn health_rate_policy_trips_on_burst_not_drizzle() {
        // Burst: 4 errors back to back inside one long window.
        let h = HealthMonitor::new(2);
        h.set_rate_policy(4, 60_000);
        for _ in 0..3 {
            h.note_error(1);
        }
        assert!(!h.has_pending(), "under the rate threshold");
        h.note_error(1);
        assert_eq!(h.take_pending(), vec![1]);
        assert_eq!(h.snapshot()[1].recent, 4);
        // Drizzle: the same 4 errors with >=2 windows between them
        // decay below the threshold every time.
        let h = HealthMonitor::new(2);
        h.set_rate_policy(4, 5);
        for _ in 0..4 {
            h.note_error(0);
            std::thread::sleep(std::time::Duration::from_millis(12));
        }
        assert!(!h.has_pending(), "spread errors decay before reaching the threshold");
    }

    #[test]
    fn health_threshold_queues_once_and_requeues() {
        let h = HealthMonitor::new(3);
        h.note_repair(2);
        assert!(!h.has_pending(), "policy disabled by default");
        h.set_threshold(2);
        h.note_repair(2);
        assert!(h.has_pending());
        h.note_error(2); // further bumps don't duplicate the entry
        assert_eq!(h.take_pending(), vec![2]);
        assert!(!h.has_pending());
        h.requeue(2);
        h.requeue(2);
        assert_eq!(h.take_pending(), vec![2]);
    }
}
