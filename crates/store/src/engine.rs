//! # Async I/O engine: per-disk submission queues with depth-aware
//! # scheduling
//!
//! The store's synchronous path calls [`Backend`] methods inline, so
//! one caller thread drives at most one disk at a time and the
//! declustering advantage — one client's I/O spread over all `v`
//! disks — is throttled by caller-thread count. This module turns
//! that boundary into **submit-and-complete**: callers enqueue work
//! on per-disk [`DiskQueue`]s and block only on [`Completion`]
//! tokens, while a small worker pool keeps every disk busy at a
//! target queue depth. A single caller submitting an 8-run batch gets
//! 8 disks seeking in parallel.
//!
//! ## Architecture
//!
//! * **[`DiskQueue`]** — one per logical disk: a bounded ring of
//!   pending requests split into two priority lanes (client and
//!   maintenance), an in-flight depth counter, and an EWMA of
//!   backend service time. Submission blocks (backpressure) when the
//!   ring is full.
//! * **Worker pool** — `workers` OS threads (default: one per disk)
//!   each servicing *any* queue: a worker scans for the eligible
//!   queue with the lowest expected drain time
//!   (`(in_flight + 1) × ewma_service_ns`), pops a batch, executes
//!   the backend call, and fulfils the completions. Plain
//!   condvar/atomic wakeups — no async runtime.
//! * **Coalescing pop** — at dequeue time, requests at the head of
//!   the chosen lane that are the same kind and offset-adjacent are
//!   merged into one backend call (one `read_units` span / one
//!   `write_units_gather`), up to [`MAX_COALESCE_UNITS`] units. The
//!   per-request tokens still complete individually.
//! * **Depth-aware scheduling** — a queue is eligible only while its
//!   in-flight batch count is below `target_depth`, so multiple
//!   workers can overlap calls to the *same* disk (useful for
//!   seek-free backends and kernel-level queueing) without
//!   unboundedly piling on.
//! * **Arbitration** — the client lane strictly outranks the
//!   maintenance lane (rebuild/scrub/reshape prefetch submit at
//!   [`Priority::Maintenance`]), extending the store's
//!   client-over-maintenance arbitration rules to the queue tier.
//!   Each deferral is counted in `maintenance_deferred`.
//!
//! ## Completion semantics
//!
//! [`Engine::submit_read_units`] / [`Engine::submit_write_gather`]
//! return a [`Completion`] token. `wait` blocks until the worker
//! fulfils it and yields the read bytes (empty for writes) or the
//! backend error; [`Completion::wait_all`] drains a whole batch,
//! returning the first error but never abandoning a token. Every
//! backend call runs under [`Integrity::retrying`], so transient
//! errors retry with the same backoff and per-disk health accounting
//! as the synchronous path. When a *coalesced* batch fails, the
//! first request in the batch receives the real error and the rest
//! receive a reconstructed copy ([`StoreError`] is not `Clone`).
//!
//! On [`Engine::stop`] (also invoked by `Drop`), workers drain every
//! queue before exiting and any request that slips in after the
//! drain is completed with an error by a final sweep — a token
//! handed out is **always** fulfilled; none leak on error or
//! shutdown.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::backend::Backend;
use crate::error::StoreError;
use crate::integrity::Integrity;
use crate::obs::LatencyHistogram;
use serde::{Deserialize, Serialize};

/// Ceiling on the units a coalescing pop may merge into one backend
/// call — bounds worker latency (and the memory of the merged read
/// buffer) under deep adjacent queues.
pub const MAX_COALESCE_UNITS: usize = 256;

/// Submission priority: which [`DiskQueue`] lane a request joins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Priority {
    /// Foreground client I/O — always serviced first.
    Client,
    /// Background maintenance I/O (rebuild, scrub, reshape
    /// prefetch) — serviced only when the client lane is empty.
    Maintenance,
}

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads servicing the queues. `0` means one per disk —
    /// the `AsyncFileBackend` mode where each disk's positional
    /// pread/pwrite can progress on its own thread.
    pub workers: usize,
    /// Per-disk in-flight batch ceiling: a queue stops being
    /// eligible for dispatch while this many backend calls are
    /// outstanding against its disk.
    pub target_depth: usize,
    /// Per-disk pending-request ceiling (both lanes combined);
    /// submission blocks when reached.
    pub queue_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { workers: 0, target_depth: 8, queue_capacity: 256 }
    }
}

/// What a queued request asks of the disk.
enum ReqOp {
    /// Read `units` units into a fresh buffer.
    Read,
    /// Write these bytes (length = `units × unit_size`).
    Write(Vec<u8>),
}

/// One pending request in a [`DiskQueue`] lane.
struct Request {
    /// Starting unit offset on the disk.
    offset: usize,
    /// Span length in units.
    units: usize,
    op: ReqOp,
    done: Arc<CompletionState>,
    /// Submission instant, for the queue-wait histogram.
    submitted: Instant,
}

/// Shared slot a worker fulfils and a caller waits on.
#[derive(Default)]
struct CompletionState {
    slot: Mutex<Option<Result<Vec<u8>, StoreError>>>,
    cv: Condvar,
}

impl CompletionState {
    fn fulfil(&self, r: Result<Vec<u8>, StoreError>) {
        let mut slot = self.slot.lock().unwrap();
        debug_assert!(slot.is_none(), "completion fulfilled twice");
        *slot = Some(r);
        self.cv.notify_all();
    }
}

/// A token for one submitted request. Redeem it with
/// [`Completion::wait`]; the engine guarantees it will be fulfilled
/// even on error or shutdown.
#[must_use = "a completion must be waited on, or its result is lost"]
pub struct Completion {
    state: Arc<CompletionState>,
}

impl Completion {
    /// Blocks until the request finishes; returns the bytes read
    /// (empty for writes) or the backend error.
    pub fn wait(self) -> Result<Vec<u8>, StoreError> {
        let mut slot = self.state.slot.lock().unwrap();
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            slot = self.state.cv.wait(slot).unwrap();
        }
    }

    /// Waits on every token, returning all payloads in submission
    /// order or the **first** error encountered — but always
    /// draining the rest, so no token is abandoned mid-flight.
    pub fn wait_all(
        tokens: impl IntoIterator<Item = Completion>,
    ) -> Result<Vec<Vec<u8>>, StoreError> {
        let mut out = Vec::new();
        let mut first_err = None;
        for t in tokens {
            match t.wait() {
                Ok(buf) => out.push(buf),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }
}

/// The two priority lanes of a disk's pending ring.
#[derive(Default)]
struct Lanes {
    client: VecDeque<Request>,
    maint: VecDeque<Request>,
}

impl Lanes {
    fn len(&self) -> usize {
        self.client.len() + self.maint.len()
    }
}

/// One disk's bounded submission ring plus its scheduling state.
///
/// The ring is two FIFO lanes behind one mutex; `in_flight` and the
/// EWMA service time are read lock-free by the dispatcher's
/// eligibility scan.
pub struct DiskQueue {
    lanes: Mutex<Lanes>,
    /// Signalled when a pop makes room for a blocked submitter.
    not_full: Condvar,
    /// Outstanding backend calls against this disk.
    in_flight: AtomicUsize,
    /// EWMA of backend service time, ns (α = 1/8; 0 = no sample yet).
    ewma_ns: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    /// Requests merged into a preceding request by a coalescing pop.
    coalesced: AtomicU64,
}

impl DiskQueue {
    fn new() -> Self {
        DiskQueue {
            lanes: Mutex::new(Lanes::default()),
            not_full: Condvar::new(),
            in_flight: AtomicUsize::new(0),
            ewma_ns: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Expected time to drain this queue's outstanding work if one
    /// more batch were dispatched — the dispatcher picks the minimum.
    fn score(&self) -> u64 {
        let ewma = self.ewma_ns.load(Ordering::Relaxed).max(1);
        (self.in_flight.load(Ordering::Relaxed) as u64 + 1).saturating_mul(ewma)
    }

    /// Folds a service-time sample into the EWMA (α = 1/8).
    fn note_service(&self, ns: u64) {
        let old = self.ewma_ns.load(Ordering::Relaxed);
        let new = if old == 0 { ns } else { old - old / 8 + ns / 8 };
        self.ewma_ns.store(new, Ordering::Relaxed);
    }
}

/// Shared engine state: queues, counters, and worker coordination.
struct Inner<B> {
    backend: Arc<B>,
    integrity: Arc<Integrity>,
    queues: Vec<DiskQueue>,
    cfg: EngineConfig,
    /// Total requests pending across every queue; the worker parking
    /// predicate.
    pending: AtomicUsize,
    /// Parking lot for idle workers.
    work_m: Mutex<()>,
    work_cv: Condvar,
    shutdown: AtomicBool,
    // Global tallies for StatsSnapshot.
    client_submitted: AtomicU64,
    maint_submitted: AtomicU64,
    completed: AtomicU64,
    errors: AtomicU64,
    /// Maintenance requests that waited behind a non-empty client
    /// lane — the queue-tier arbitration counter.
    maintenance_deferred: AtomicU64,
    /// Time from submission to dequeue, per request.
    queue_wait: LatencyHistogram,
}

/// The submit-and-complete I/O engine over a shared [`Backend`].
///
/// Construct with [`Engine::start`]; submit with
/// [`Engine::submit_read_units`] / [`Engine::submit_write_gather`];
/// redeem the returned [`Completion`] tokens. See the
/// [module docs](self) for the scheduling model.
pub struct Engine<B> {
    inner: Arc<Inner<B>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl<B: std::fmt::Debug> std::fmt::Debug for Engine<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("disks", &self.inner.queues.len())
            .field("cfg", &self.inner.cfg)
            .finish_non_exhaustive()
    }
}

impl<B: Backend + Send + Sync + 'static> Engine<B> {
    /// Spawns the worker pool over `backend`. `integrity` supplies
    /// the retry policy and per-disk health accounting, identical to
    /// the synchronous path.
    pub fn start(backend: Arc<B>, integrity: Arc<Integrity>, cfg: EngineConfig) -> Arc<Self> {
        let disks = backend.disks();
        let workers = if cfg.workers == 0 { disks.max(1) } else { cfg.workers };
        let cfg = EngineConfig {
            workers,
            target_depth: cfg.target_depth.max(1),
            queue_capacity: cfg.queue_capacity.max(1),
        };
        let inner = Arc::new(Inner {
            backend,
            integrity,
            queues: (0..disks).map(|_| DiskQueue::new()).collect(),
            cfg,
            pending: AtomicUsize::new(0),
            work_m: Mutex::new(()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            client_submitted: AtomicU64::new(0),
            maint_submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            maintenance_deferred: AtomicU64::new(0),
            queue_wait: LatencyHistogram::default(),
        });
        let handles = (0..workers)
            .map(|wid| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("pdl-engine-{wid}"))
                    .spawn(move || worker_loop(&inner, wid))
                    .expect("spawn engine worker")
            })
            .collect();
        Arc::new(Engine { inner, workers: Mutex::new(handles) })
    }
}

impl<B: Backend> Engine<B> {
    /// Submits a read of `units` units starting at unit `offset` on
    /// `disk`. The completion yields `units × unit_size` bytes.
    pub fn submit_read_units(
        &self,
        disk: usize,
        offset: usize,
        units: usize,
        prio: Priority,
    ) -> Result<Completion, StoreError> {
        self.submit(disk, offset, units, ReqOp::Read, prio)
    }

    /// Submits a write of `data` (a whole number of units) starting
    /// at unit `offset` on `disk`. The completion yields an empty
    /// buffer.
    pub fn submit_write_gather(
        &self,
        disk: usize,
        offset: usize,
        data: Vec<u8>,
        prio: Priority,
    ) -> Result<Completion, StoreError> {
        let us = self.inner.backend.unit_size();
        debug_assert!(us > 0 && data.len().is_multiple_of(us) && !data.is_empty());
        let units = data.len() / us;
        self.submit(disk, offset, units, ReqOp::Write(data), prio)
    }

    fn submit(
        &self,
        disk: usize,
        offset: usize,
        units: usize,
        op: ReqOp,
        prio: Priority,
    ) -> Result<Completion, StoreError> {
        let inner = &self.inner;
        let q = inner.queues.get(disk).ok_or(StoreError::OutOfRange { disk, offset })?;
        let state = Arc::new(CompletionState::default());
        let req =
            Request { offset, units, op, done: Arc::clone(&state), submitted: Instant::now() };
        let mut lanes = q.lanes.lock().unwrap();
        while lanes.len() >= inner.cfg.queue_capacity {
            if inner.shutdown.load(Ordering::Acquire) {
                return Err(engine_down());
            }
            lanes = q.not_full.wait(lanes).unwrap();
        }
        if inner.shutdown.load(Ordering::Acquire) {
            return Err(engine_down());
        }
        match prio {
            Priority::Client => {
                lanes.client.push_back(req);
                inner.client_submitted.fetch_add(1, Ordering::Relaxed);
            }
            Priority::Maintenance => {
                lanes.maint.push_back(req);
                inner.maint_submitted.fetch_add(1, Ordering::Relaxed);
            }
        }
        q.submitted.fetch_add(1, Ordering::Relaxed);
        drop(lanes);
        inner.pending.fetch_add(1, Ordering::Release);
        inner.work_cv.notify_one();
        Ok(Completion { state })
    }
}

impl<B> Engine<B> {
    /// Point-in-time engine statistics for
    /// [`crate::StatsSnapshot`].
    pub fn snapshot(&self) -> EngineStatsSnapshot {
        let inner = &self.inner;
        EngineStatsSnapshot {
            workers: inner.cfg.workers,
            target_depth: inner.cfg.target_depth,
            client_submitted: inner.client_submitted.load(Ordering::Relaxed),
            maintenance_submitted: inner.maint_submitted.load(Ordering::Relaxed),
            completed: inner.completed.load(Ordering::Relaxed),
            errors: inner.errors.load(Ordering::Relaxed),
            maintenance_deferred: inner.maintenance_deferred.load(Ordering::Relaxed),
            queue_wait_log2_ns: inner.queue_wait.snapshot(),
            disks: inner
                .queues
                .iter()
                .enumerate()
                .map(|(d, q)| EngineDiskSnapshot {
                    disk: d,
                    queued: q.lanes.lock().unwrap().len() as u64,
                    in_flight: q.in_flight.load(Ordering::Relaxed) as u64,
                    ewma_service_us: q.ewma_ns.load(Ordering::Relaxed) / 1_000,
                    submitted: q.submitted.load(Ordering::Relaxed),
                    completed: q.completed.load(Ordering::Relaxed),
                    coalesced: q.coalesced.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

impl<B> Engine<B> {
    /// Stops the engine: drains every queue, joins the workers, and
    /// fulfils (with an error) any request that slipped in during
    /// the drain. Idempotent; also called by `Drop`.
    pub fn stop(&self) {
        let inner = &self.inner;
        inner.shutdown.store(true, Ordering::Release);
        inner.work_cv.notify_all();
        for q in &inner.queues {
            q.not_full.notify_all();
        }
        let handles = std::mem::take(&mut *self.workers.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        // Post-join sweep: nothing should remain, but a racing
        // submitter that held a clone of the Arc may have pushed
        // after the drain. Never leak a token.
        for q in &inner.queues {
            let mut lanes = q.lanes.lock().unwrap();
            let leftovers: Vec<Request> = lanes
                .client
                .drain(..)
                .collect::<Vec<_>>()
                .into_iter()
                .chain(lanes.maint.drain(..))
                .collect();
            drop(lanes);
            for req in leftovers {
                inner.pending.fetch_sub(1, Ordering::Relaxed);
                req.done.fulfil(Err(engine_down()));
            }
        }
    }
}

impl<B> Drop for Engine<B> {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The error a token receives when the engine shuts down under it.
fn engine_down() -> StoreError {
    StoreError::Io(std::io::Error::other("I/O engine shut down with request pending"))
}

/// Best-effort duplicate of a [`StoreError`] for fanning one failure
/// out to every request of a coalesced batch (`StoreError` holds a
/// non-`Clone` `io::Error`). The first request gets the original;
/// the rest get this reconstruction.
fn clone_err(e: &StoreError) -> StoreError {
    match e {
        StoreError::Io(io) => StoreError::Io(std::io::Error::new(io.kind(), io.to_string())),
        StoreError::OutOfRange { disk, offset } => {
            StoreError::OutOfRange { disk: *disk, offset: *offset }
        }
        StoreError::DiskFailed(d) => StoreError::DiskFailed(*d),
        other => StoreError::Corrupt(format!("coalesced batch failed: {other}")),
    }
}

/// One dequeued, possibly-coalesced unit of backend work.
struct Batch {
    reqs: Vec<Request>,
    /// True when every request is a read (else all writes).
    is_read: bool,
}

/// Worker thread body: scan → pop (coalescing) → execute → fulfil.
fn worker_loop<B: Backend>(inner: &Inner<B>, wid: usize) {
    loop {
        match next_batch(inner, wid) {
            Some((disk, batch)) => execute(inner, disk, batch),
            None => {
                if inner.shutdown.load(Ordering::Acquire)
                    && inner.pending.load(Ordering::Acquire) == 0
                {
                    return;
                }
                // Park briefly whenever a scan comes up empty — also
                // the case where pending work exists but every
                // non-empty queue is at target depth. The timeout
                // makes shutdown and racy notify loss benign, and
                // `execute` notifies when an in-flight slot frees.
                let guard = inner.work_m.lock().unwrap();
                if !inner.shutdown.load(Ordering::Acquire) {
                    let _ = inner
                        .work_cv
                        .wait_timeout(guard, std::time::Duration::from_millis(5))
                        .unwrap();
                }
            }
        }
    }
}

/// Picks the eligible queue with the lowest expected drain time
/// (depth-aware: `in_flight` must be under `target_depth`) and pops
/// a coalesced batch from it. Scanning starts at `wid` so workers
/// spread over disks when scores tie.
fn next_batch<B: Backend>(inner: &Inner<B>, wid: usize) -> Option<(usize, Batch)> {
    let n = inner.queues.len();
    if n == 0 || inner.pending.load(Ordering::Acquire) == 0 {
        return None;
    }
    let mut best: Option<(usize, u64)> = None;
    for i in 0..n {
        let d = (wid + i) % n;
        let q = &inner.queues[d];
        if q.in_flight.load(Ordering::Relaxed) >= inner.cfg.target_depth {
            continue;
        }
        // Cheap non-emptiness probe without the lane mutex: the
        // submitted/completed delta covers queued + in-flight work.
        if q.submitted.load(Ordering::Relaxed) == q.completed.load(Ordering::Relaxed) {
            continue;
        }
        let s = q.score();
        if best.is_none_or(|(_, bs)| s < bs) {
            best = Some((d, s));
        }
    }
    let (disk, _) = best?;
    let q = &inner.queues[disk];
    let mut lanes = q.lanes.lock().unwrap();
    // Strict priority: drain the client lane first; count every
    // maintenance request it bypasses as deferred.
    let lane = if !lanes.client.is_empty() {
        if !lanes.maint.is_empty() {
            inner.maintenance_deferred.fetch_add(lanes.maint.len() as u64, Ordering::Relaxed);
        }
        &mut lanes.client
    } else if !lanes.maint.is_empty() {
        &mut lanes.maint
    } else {
        return None;
    };
    let first = lane.pop_front().expect("lane checked non-empty");
    let is_read = matches!(first.op, ReqOp::Read);
    let mut total_units = first.units;
    let mut reqs = vec![first];
    // Coalescing pop: merge offset-adjacent same-kind heads.
    while let Some(next) = lane.front() {
        let last = reqs.last().expect("batch non-empty");
        let adjacent = next.offset == last.offset + last.units;
        let same_kind = matches!(next.op, ReqOp::Read) == is_read;
        if !(adjacent && same_kind) || total_units + next.units > MAX_COALESCE_UNITS {
            break;
        }
        total_units += next.units;
        q.coalesced.fetch_add(1, Ordering::Relaxed);
        reqs.push(lane.pop_front().expect("front checked"));
    }
    // Reserve the in-flight slot before releasing the lane lock so
    // a concurrent scan sees the updated depth.
    q.in_flight.fetch_add(1, Ordering::Relaxed);
    let popped = reqs.len();
    drop(lanes);
    q.not_full.notify_all();
    inner.pending.fetch_sub(popped, Ordering::Release);
    let now = Instant::now();
    for r in &reqs {
        inner.queue_wait.record(now.duration_since(r.submitted).as_nanos() as u64);
    }
    Some((disk, Batch { reqs, is_read }))
}

/// Executes one batch against the backend (under the integrity
/// retry/health wrapper) and fulfils every token in it.
fn execute<B: Backend>(inner: &Inner<B>, disk: usize, batch: Batch) {
    let q = &inner.queues[disk];
    let us = inner.backend.unit_size();
    let offset = batch.reqs[0].offset;
    let total_units: usize = batch.reqs.iter().map(|r| r.units).sum();
    let t0 = Instant::now();
    let result: Result<Vec<u8>, StoreError> = if batch.is_read {
        let mut buf = vec![0u8; total_units * us];
        inner
            .integrity
            .retrying(disk, || inner.backend.read_units(disk, offset, &mut buf))
            .map(|()| buf)
    } else {
        let srcs: Vec<&[u8]> = batch
            .reqs
            .iter()
            .map(|r| match &r.op {
                ReqOp::Write(d) => d.as_slice(),
                ReqOp::Read => unreachable!("mixed batch"),
            })
            .collect();
        inner
            .integrity
            .retrying(disk, || inner.backend.write_units_gather(disk, offset, &srcs))
            .map(|()| Vec::new())
    };
    q.note_service(t0.elapsed().as_nanos() as u64);
    q.in_flight.fetch_sub(1, Ordering::Relaxed);
    if inner.pending.load(Ordering::Acquire) > 0 {
        // The freed in-flight slot may make a depth-capped queue
        // eligible again; wake a parked worker to rescan.
        inner.work_cv.notify_one();
    }
    let nreq = batch.reqs.len() as u64;
    q.completed.fetch_add(nreq, Ordering::Relaxed);
    inner.completed.fetch_add(nreq, Ordering::Relaxed);
    match result {
        Ok(buf) => {
            if batch.is_read {
                if batch.reqs.len() == 1 {
                    // Common single-request case: hand over the whole
                    // buffer, no copy.
                    let req = batch.reqs.into_iter().next().expect("one req");
                    req.done.fulfil(Ok(buf));
                } else {
                    let mut at = 0usize;
                    for req in batch.reqs {
                        let len = req.units * us;
                        req.done.fulfil(Ok(buf[at..at + len].to_vec()));
                        at += len;
                    }
                }
            } else {
                for req in batch.reqs {
                    req.done.fulfil(Ok(Vec::new()));
                }
            }
        }
        Err(e) => {
            inner.errors.fetch_add(nreq, Ordering::Relaxed);
            let mut reqs = batch.reqs.into_iter();
            let first = reqs.next().expect("batch non-empty");
            for req in reqs {
                req.done.fulfil(Err(clone_err(&e)));
            }
            first.done.fulfil(Err(e));
        }
    }
}

/// Per-disk queue gauges in an [`EngineStatsSnapshot`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EngineDiskSnapshot {
    /// Logical disk index.
    pub disk: usize,
    /// Requests currently queued (both lanes).
    pub queued: u64,
    /// Backend calls currently outstanding.
    pub in_flight: u64,
    /// EWMA backend service time, µs.
    pub ewma_service_us: u64,
    /// Requests ever submitted to this queue.
    pub submitted: u64,
    /// Requests ever completed.
    pub completed: u64,
    /// Requests merged into a neighbour by a coalescing pop.
    pub coalesced: u64,
}

/// Engine section of a [`crate::StatsSnapshot`] (present only while
/// an engine is running).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EngineStatsSnapshot {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Per-disk in-flight ceiling.
    pub target_depth: usize,
    /// Client-lane requests submitted.
    pub client_submitted: u64,
    /// Maintenance-lane requests submitted.
    pub maintenance_submitted: u64,
    /// Requests completed (both lanes, success or error).
    pub completed: u64,
    /// Requests completed with an error.
    pub errors: u64,
    /// Maintenance requests that waited behind client work — the
    /// queue-tier arbitration counter.
    pub maintenance_deferred: u64,
    /// Submission→dequeue wait, log2-ns buckets (see
    /// [`LatencyHistogram`]).
    pub queue_wait_log2_ns: Vec<u64>,
    /// Per-disk queue gauges.
    pub disks: Vec<EngineDiskSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::integrity::Integrity;

    fn engine(
        disks: usize,
        units: usize,
        cfg: EngineConfig,
    ) -> (Arc<Engine<MemBackend>>, Arc<MemBackend>) {
        let backend = Arc::new(MemBackend::new(disks, units, 64));
        let integrity = Arc::new(Integrity::new(disks, units));
        (Engine::start(Arc::clone(&backend), integrity, cfg), backend)
    }

    #[test]
    fn read_write_roundtrip_through_the_queues() {
        let (eng, _b) = engine(4, 32, EngineConfig::default());
        let payload: Vec<u8> = (0..128).map(|i| i as u8).collect();
        eng.submit_write_gather(2, 5, payload.clone(), Priority::Client).unwrap().wait().unwrap();
        let got = eng.submit_read_units(2, 5, 2, Priority::Client).unwrap().wait().unwrap();
        assert_eq!(got, payload);
        let snap = eng.snapshot();
        assert_eq!(snap.client_submitted, 2);
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.errors, 0);
        eng.stop();
    }

    #[test]
    fn wait_all_returns_payloads_in_submission_order() {
        let (eng, _b) = engine(4, 32, EngineConfig::default());
        for d in 0..4 {
            eng.submit_write_gather(d, 0, vec![d as u8; 64], Priority::Client)
                .unwrap()
                .wait()
                .unwrap();
        }
        let tokens: Vec<Completion> =
            (0..4).map(|d| eng.submit_read_units(d, 0, 1, Priority::Client).unwrap()).collect();
        let bufs = Completion::wait_all(tokens).unwrap();
        for (d, buf) in bufs.iter().enumerate() {
            assert_eq!(buf, &vec![d as u8; 64]);
        }
    }

    #[test]
    fn out_of_range_disk_is_rejected_at_submit() {
        let (eng, _b) = engine(2, 8, EngineConfig::default());
        assert!(matches!(
            eng.submit_read_units(9, 0, 1, Priority::Client),
            Err(StoreError::OutOfRange { disk: 9, .. })
        ));
    }

    #[test]
    fn adjacent_requests_coalesce_into_one_backend_call() {
        // One worker at depth 1 so the first dispatch can pile the
        // rest of the submissions behind it: park the worker on a
        // depth-capped queue by submitting everything before it can
        // drain (reliable enough with a burst — the assertion accepts
        // any nonzero merge count across repeats).
        let cfg = EngineConfig { workers: 1, target_depth: 1, queue_capacity: 256 };
        let mut merged = 0;
        for _ in 0..8 {
            let (eng, b) = engine(2, 512, cfg);
            let tokens: Vec<Completion> = (0..64)
                .map(|i| eng.submit_read_units(0, i, 1, Priority::Client).unwrap())
                .collect();
            let bufs = Completion::wait_all(tokens).unwrap();
            assert_eq!(bufs.len(), 64);
            merged += eng.snapshot().disks[0].coalesced;
            // Coalescing must also shrink the number of backend calls.
            assert!(b.read_calls(0) <= 64);
            eng.stop();
            if merged > 0 {
                break;
            }
        }
        assert!(merged > 0, "64 adjacent reads never coalesced across 8 bursts");
    }

    #[test]
    fn stop_fulfils_every_token_and_rejects_new_submissions() {
        let (eng, _b) = engine(2, 32, EngineConfig::default());
        let t = eng.submit_read_units(0, 0, 1, Priority::Maintenance).unwrap();
        eng.stop();
        // The pre-stop token was either served by the drain or failed
        // by the sweep — it must be fulfilled either way, promptly.
        let _ = t.wait();
        let err = eng.submit_read_units(0, 0, 1, Priority::Client);
        assert!(matches!(err, Err(StoreError::Io(_))), "submit after stop must fail");
    }

    #[test]
    fn snapshot_reports_per_disk_queues() {
        let (eng, _b) = engine(3, 32, EngineConfig { workers: 2, ..EngineConfig::default() });
        eng.submit_write_gather(1, 0, vec![7u8; 64], Priority::Maintenance)
            .unwrap()
            .wait()
            .unwrap();
        let snap = eng.snapshot();
        assert_eq!(snap.workers, 2);
        assert_eq!(snap.disks.len(), 3);
        assert_eq!(snap.maintenance_submitted, 1);
        assert_eq!(snap.disks[1].submitted, 1);
        assert_eq!(snap.disks[1].completed, 1);
        assert_eq!(snap.disks[1].in_flight, 0);
        assert!(snap.queue_wait_log2_ns.iter().sum::<u64>() >= 1);
    }
}
